//! Packet-level validation of the end-to-end delay bounds (eq. 4).
//!
//! Admits a saturating set of greedy type-0 flows, drives the real VTRS
//! data plane (edge conditioners, dynamic packet state, CsVC/VT-EDF
//! schedulers), and compares every flow's *observed* worst-case delay
//! against the bound the broker promised — with the VTRS virtual-spacing
//! and reality-check invariants verified at every hop.
//!
//! ```sh
//! cargo run --release --example delay_bound_validation
//! ```

use bbqos::broker::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
use bbqos::netsim::{Simulator, SourceModel};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::delay::e2e_delay_bound;
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;

fn main() {
    // The Figure-8 S1→D1 mixed path.
    let mut b = TopologyBuilder::new();
    let names = ["I1", "R2", "R3", "R4", "R5", "E1"];
    let nodes: Vec<_> = names.iter().map(|n| b.node(*n)).collect();
    let cap = Rate::from_bps(1_500_000);
    let lmax = Bits::from_bytes(1500);
    let specs = [
        SchedulerSpec::CsVc,
        SchedulerSpec::CsVc,
        SchedulerSpec::VtEdf,
        SchedulerSpec::VtEdf,
        SchedulerSpec::CsVc,
    ];
    let route: Vec<_> = (0..5)
        .map(|i| b.link(nodes[i], nodes[i + 1], cap, Nanos::ZERO, specs[i], lmax))
        .collect();
    let topo = b.build();

    let profile = TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        lmax,
    )
    .unwrap();
    let d_req = Nanos::from_millis(2_190);

    // Control plane: admit until the path is full.
    let mut broker = Broker::new(topo.clone(), BrokerConfig::default());
    let pid = broker.register_route(&route);
    let mut reservations = Vec::new();
    loop {
        let flow = FlowId(reservations.len() as u64);
        match broker.request(
            Time::ZERO,
            &FlowRequest {
                flow,
                profile,
                d_req,
                service: ServiceKind::PerFlow,
                path: pid,
            },
        ) {
            Ok(res) => reservations.push(res),
            Err(_) => break,
        }
    }
    println!(
        "admitted {} flows at D = 2.19 s on the mixed path",
        reservations.len()
    );

    // Data plane: every flow greedy (worst-case senders), invariants on,
    // with packet tracing for the journey printout at the end.
    let mut sim = Simulator::new(topo.clone());
    sim.enable_validation();
    sim.enable_trace(4_000);
    let path_spec = topo.path_spec(&route);
    for res in &reservations {
        sim.add_flow(res.flow, res.rate, res.delay, route.clone());
        sim.add_source(
            res.flow,
            SourceModel::Greedy {
                profile,
                packet: lmax,
            },
            Time::ZERO,
            None,
            Some(60),
        );
    }
    sim.run_to_completion();

    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>14} {:>8}",
        "flow", "rate(b/s)", "d(ms)", "bound(s)", "observed(s)", "ok"
    );
    let mut worst_slack = Nanos::MAX;
    let mut violations = 0u64;
    for res in &reservations {
        let bound = e2e_delay_bound(&profile, &path_spec, profile.l_max, res.rate, res.delay)
            .expect("granted pair is valid");
        let st = sim.flow_stats(res.flow);
        // `e2e_delay_bound` rounds each term up (never optimistic), so it
        // may exceed the requirement by a few nanoseconds even though the
        // broker verified the exact rational inequality at admission.
        let rounding = Nanos::from_nanos(8);
        let ok = st.max_e2e <= bound && bound <= d_req + rounding;
        if !ok {
            violations += 1;
        }
        worst_slack = worst_slack.min(bound.saturating_sub(st.max_e2e));
        println!(
            "{:>4} {:>12} {:>14.3} {:>14.6} {:>14.6} {:>8}",
            res.flow.0,
            res.rate.as_bps(),
            res.delay.as_secs_f64() * 1e3,
            bound.as_secs_f64(),
            st.max_e2e.as_secs_f64(),
            if ok { "yes" } else { "VIOLATED" }
        );
        assert_eq!(st.spacing_violations, 0, "VTRS spacing violated");
        assert_eq!(st.reality_violations, 0, "VTRS reality check violated");
    }
    println!(
        "\n{} flows, {} bound violations, tightest slack {:.6}s, zero VTRS invariant \
         violations across {} hops × all packets",
        reservations.len(),
        violations,
        worst_slack.as_secs_f64(),
        path_spec.h(),
    );
    assert_eq!(violations, 0);

    // One packet's journey through the core, from the trace.
    if let Some(trace) = sim.trace() {
        println!("\njourney of flow 0, packet 3:");
        print!(
            "{}",
            trace.render_journey(bbqos::vtrs::packet::FlowId(0), 3)
        );
    }
}
