//! The dynamic-flow-aggregation transient (§4.1 / Figure 7), live in the
//! packet plane.
//!
//! A macroflow of greedy microflows is re-rated when a new microflow
//! joins. Without contingency bandwidth, the backlog that accumulated in
//! the edge conditioner pushes post-join packets past the new edge-delay
//! bound; with the Theorem-2 grant, the bound of eq. 13 holds.
//!
//! ```sh
//! cargo run --release --example aggregation_transient
//! ```

use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
use bbqos::netsim::{Simulator, SourceModel};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::delay::edge_delay_bound;
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;

fn macro_profile() -> TrafficProfile {
    // Two aggregated type-0 microflows.
    let t0 = TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap();
    t0.aggregate(&t0)
}

fn joining_profile() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(24_000),
        Rate::from_bps(20_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn run(with_contingency: bool) -> Nanos {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = ["I", "R2", "R3", "R4", "R5", "E"]
        .iter()
        .map(|n| b.node(*n))
        .collect();
    let route: Vec<_> = (0..5)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();

    let alpha = macro_profile();
    let nu = joining_profile();
    let (r_old, r_new) = (Rate::from_bps(100_000), Rate::from_bps(180_000));
    let t_star = Time::ZERO + alpha.t_on() - nu.t_on(); // the worst case of §4.1

    let mut sim = Simulator::new(topo);
    sim.enable_validation();
    let macroflow = FlowId(1);
    sim.add_flow(macroflow, r_old, Nanos::ZERO, route);
    sim.set_flow_threshold(macroflow, t_star);
    // The existing microflows, greedy from t = 0 …
    let t0 = TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap();
    for _ in 0..2 {
        sim.add_source(
            macroflow,
            SourceModel::Greedy {
                profile: t0,
                packet: t0.l_max,
            },
            Time::ZERO,
            Some(Time::from_secs_f64(12.0)),
            None,
        );
    }
    // … and the joining microflow, greedy from t*.
    sim.add_source(
        macroflow,
        SourceModel::Greedy {
            profile: nu,
            packet: nu.l_max,
        },
        t_star,
        Some(Time::from_secs_f64(12.0)),
        None,
    );

    sim.run_until(t_star);
    sim.set_flow_rate(macroflow, r_new); // BB → edge: new reserved rate
    if with_contingency {
        let delta = nu.peak - (r_new - r_old); // Theorem 2
        sim.set_flow_contingency(macroflow, delta);
        // Feedback: poll the edge backlog; reset once it drains.
        let mut t = t_star;
        loop {
            t += Nanos::from_millis(10);
            sim.run_until(t);
            if sim.flow_backlog(macroflow) == Bits::ZERO {
                sim.set_flow_contingency(macroflow, Rate::ZERO);
                break;
            }
        }
    }
    sim.run_to_completion();
    let st = sim.flow_stats(macroflow);
    assert_eq!(st.spacing_violations + st.reality_violations, 0);
    st.max_edge_post
}

fn main() {
    let alpha = macro_profile();
    let alpha_new = alpha.aggregate(&joining_profile());
    let bound_old = edge_delay_bound(&alpha, Rate::from_bps(100_000)).unwrap();
    let bound_new = edge_delay_bound(&alpha_new, Rate::from_bps(180_000)).unwrap();

    println!("edge-delay bound before the join (old profile @ 100 kb/s): {bound_old}");
    println!("edge-delay bound after the join (new profile @ 180 kb/s):  {bound_new}");
    println!();

    let naive = run(false);
    println!(
        "naive rate change: worst post-join edge delay = {naive}  → {}",
        if naive > bound_new {
            "VIOLATES the new bound (the §4.1 hazard)"
        } else {
            "within the new bound"
        }
    );

    let fixed = run(true);
    println!(
        "with contingency:  worst post-join edge delay = {fixed}  → {}",
        if fixed <= bound_old.max(bound_new) {
            "within max(old, new), as Theorem 2 guarantees"
        } else {
            "UNEXPECTED violation"
        }
    );
}
