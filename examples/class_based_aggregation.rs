//! Class-based guaranteed services with dynamic flow aggregation (§4).
//!
//! Microflows join and leave a delay service class; the broker
//! re-provisions the macroflow and grants contingency bandwidth per
//! Theorems 2/3, under both termination policies (timer bounding vs.
//! edge feedback).
//!
//! ```sh
//! cargo run --example class_based_aggregation
//! ```

use bbqos::broker::admission::aggregate::ClassSpec;
use bbqos::broker::contingency::ContingencyPolicy;
use bbqos::broker::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn domain() -> (
    bbqos::netsim::topology::Topology,
    Vec<bbqos::netsim::topology::LinkId>,
) {
    let mut b = TopologyBuilder::new();
    let names = ["I", "R2", "R3", "R4", "R5", "E"];
    let nodes: Vec<_> = names.iter().map(|n| b.node(*n)).collect();
    let links = (0..5)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    (b.build(), links)
}

fn show(broker: &Broker, pid: bbqos::broker::mib::PathId, label: &str) {
    match broker.macroflow(0, pid) {
        Some(m) => println!(
            "{label:<34} members={} reserved={} contingency={} (allocated {})",
            m.members,
            m.reserved,
            m.contingency.total(),
            m.allocated()
        ),
        None => println!("{label:<34} macroflow dissolved"),
    }
}

fn main() {
    let (topo, route) = domain();
    let class = ClassSpec {
        id: 0,
        d_req: Nanos::from_millis(2_440),
        cd: Nanos::from_millis(240),
    };
    let mut broker = Broker::new(
        topo,
        BrokerConfig {
            contingency: ContingencyPolicy::Bounding,
            classes: vec![class],
            ..BrokerConfig::default()
        },
    );
    let pid = broker.register_route(&route);
    let profile = type0();
    let mut now = Time::ZERO;

    println!("delay service class 0: D = 2.44 s, cd = 0.24 s, bounding policy\n");

    // Three microflows join, ten seconds apart.
    for k in 0..3u64 {
        let res = broker
            .request(
                now,
                &FlowRequest {
                    flow: FlowId(k),
                    profile,
                    d_req: class.d_req,
                    service: ServiceKind::Class(0),
                    path: pid,
                },
            )
            .expect("admissible");
        println!(
            "t={:>6.2}s join flow {k}: macroflow rate → {}, contingency grant {} {}",
            now.as_secs_f64(),
            res.rate,
            res.contingency,
            res.contingency_expires
                .map(|e| format!("(expires t={:.2}s)", e.as_secs_f64()))
                .unwrap_or_default(),
        );
        show(&broker, pid, "  state:");
        now += Nanos::from_secs(10);
        let expired = broker.tick(now);
        for (_, amount) in expired {
            println!(
                "t={:>6.2}s contingency timer: released {amount}",
                now.as_secs_f64()
            );
        }
    }

    // One microflow leaves: the rate reduction is deferred for the
    // contingency period (Theorem 3).
    let res = broker
        .release(now, FlowId(1))
        .expect("known flow")
        .expect("class member");
    println!(
        "\nt={:>6.2}s leave flow 1: new rate {} takes effect after the {} contingency",
        now.as_secs_f64(),
        res.rate,
        res.contingency
    );
    show(&broker, pid, "  during leave transient:");
    now = res.contingency_expires.unwrap() + Nanos::from_nanos(1);
    broker.tick(now);
    show(&broker, pid, "  after contingency expiry:");

    // The remaining flows leave; the macroflow dissolves.
    for k in [0u64, 2] {
        let res = broker.release(now, FlowId(k)).unwrap().unwrap();
        if let Some(e) = res.contingency_expires {
            now = e + Nanos::from_nanos(1);
            broker.tick(now);
        }
    }
    show(&broker, pid, "\nafter all microflows left:");
    println!(
        "path residual back to {}, broker stats: {:?}",
        broker.path_residual(pid),
        broker.stats()
    );
}
