//! BB/VTRS vs. IntServ/GS: same admissions, very different control
//! planes.
//!
//! Fills the Figure-8 S1→D1 path under both architectures and compares
//! what each one had to *do* and *store*: the broker touches only its own
//! MIBs; the hop-by-hop baseline exchanges per-hop signaling messages,
//! installs per-flow state at every router, and keeps refreshing it.
//!
//! ```sh
//! cargo run --example intserv_comparison
//! ```

use bbqos::broker::intserv::IntServ;
use bbqos::broker::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;

fn main() {
    // Figure-8 S1→D1 path, mixed setting.
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = ["I1", "R2", "R3", "R4", "R5", "E1"]
        .iter()
        .map(|n| b.node(*n))
        .collect();
    let cap = Rate::from_bps(1_500_000);
    let lmax = Bits::from_bytes(1500);
    let specs = [
        SchedulerSpec::CsVc,
        SchedulerSpec::CsVc,
        SchedulerSpec::VtEdf,
        SchedulerSpec::VtEdf,
        SchedulerSpec::CsVc,
    ];
    let route: Vec<_> = (0..5)
        .map(|i| b.link(nodes[i], nodes[i + 1], cap, Nanos::ZERO, specs[i], lmax))
        .collect();
    let topo = b.build();

    let profile = TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        lmax,
    )
    .unwrap();
    let d_req = Nanos::from_millis(2_190);

    // --- BB/VTRS ---------------------------------------------------
    let mut broker = Broker::new(topo.clone(), BrokerConfig::default());
    let pid = broker.register_route(&route);
    let mut bb_rates = Vec::new();
    loop {
        let flow = FlowId(bb_rates.len() as u64);
        match broker.request(
            Time::ZERO,
            &FlowRequest {
                flow,
                profile,
                d_req,
                service: ServiceKind::PerFlow,
                path: pid,
            },
        ) {
            Ok(res) => bb_rates.push(res.rate.as_bps()),
            Err(_) => break,
        }
    }

    // --- IntServ/GS --------------------------------------------------
    let mut intserv = IntServ::new(&topo);
    let hop_route: Vec<usize> = route.iter().map(|l| l.0).collect();
    let mut gs_rates = Vec::new();
    loop {
        let flow = FlowId(gs_rates.len() as u64);
        match intserv.request(Time::ZERO, flow, &profile, d_req, &hop_route) {
            Ok(rate) => gs_rates.push(rate.as_bps()),
            Err(_) => break,
        }
    }
    // 10 minutes of soft-state refreshes (RSVP default 30 s period).
    for k in 1..=20u64 {
        intserv.refresh(Time::ZERO + Nanos::from_secs(30 * k));
    }

    // --- Comparison --------------------------------------------------
    let avg = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len().max(1) as f64;
    println!("admissions on the mixed S1→D1 path at D = 2.19 s:");
    println!(
        "  BB/VTRS     : {} flows, mean reserved rate {:.0} b/s",
        bb_rates.len(),
        avg(&bb_rates)
    );
    println!(
        "  IntServ/GS  : {} flows, mean reserved rate {:.0} b/s",
        gs_rates.len(),
        avg(&gs_rates)
    );
    println!();
    println!("control-plane footprint after filling the path (+10 min of operation):");
    println!(
        "  BB/VTRS     : QoS state at core routers: 0 entries; signaling: 1 request\n\
         \u{20}               + 1 reply per flow, no refreshes; path-wide test at the broker",
    );
    let st = intserv.stats();
    println!(
        "  IntServ/GS  : per-router state entries: {} (= flows × hops); signaling\n\
         \u{20}               messages so far: {} (incl. {} soft-state refreshes)",
        st.installed_entries, st.messages, st.refreshes
    );
    println!();
    println!(
        "same guarantees, same (or better) utilization — with every router on the\n\
         path relieved of QoS control. That asymmetry is the paper's thesis."
    );
}
