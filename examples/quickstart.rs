//! Quickstart: stand up a domain, admit a flow end to end, and watch the
//! reservation go back to the edge.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bbqos::broker::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;

fn main() {
    // 1. A small domain: ingress → two core routers → egress, with a
    //    mixed data plane (CsVC rate-based + VT-EDF delay-based). Core
    //    routers will hold *no* QoS state — that is the whole point.
    let mut b = TopologyBuilder::new();
    let (i, r1, r2, e) = (b.node("I"), b.node("R1"), b.node("R2"), b.node("E"));
    let cap = Rate::from_mbps(10);
    let lmax = Bits::from_bytes(1500);
    b.link(i, r1, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(r1, r2, cap, Nanos::ZERO, SchedulerSpec::VtEdf, lmax);
    b.link(r2, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    let topo = b.build();

    // 2. The bandwidth broker imports the topology into its node MIB and
    //    answers path queries from its routing module.
    let mut broker = Broker::new(topo, BrokerConfig::default());
    let path = broker.path_between(i, e).expect("egress reachable");
    let spec = &broker.paths().path(path).spec;
    println!(
        "path I→E: {} hops ({} rate-based, {} delay-based), D_tot = {}",
        spec.h(),
        spec.q(),
        spec.delay_hops(),
        spec.d_tot()
    );

    // 3. An application flow declares its dual-token-bucket profile and
    //    asks for a 600 ms end-to-end delay guarantee.
    let profile = TrafficProfile::new(
        Bits::from_bits(60_000), // burst σ
        Rate::from_bps(50_000),  // sustained rate ρ
        Rate::from_bps(100_000), // peak rate P
        lmax,
    )
    .expect("valid profile");
    let request = FlowRequest {
        flow: FlowId(1),
        profile,
        d_req: Nanos::from_millis(600),
        service: ServiceKind::PerFlow,
        path,
    };

    // 4. One message to the broker: policy check, path-wide admissibility
    //    test against the MIBs (no router involved), bookkeeping, and the
    //    ⟨r, d⟩ reservation comes back for the edge conditioner.
    match broker.request(Time::ZERO, &request) {
        Ok(res) => {
            println!(
                "admitted: reserve r = {} and stamp d = {} at the edge",
                res.rate, res.delay
            );
            println!(
                "residual path bandwidth afterwards: {}",
                broker.path_residual(path)
            );
        }
        Err(why) => println!("rejected: {why}"),
    }

    // 5. Releasing the flow returns every reserved resource.
    broker.release(Time::ZERO, FlowId(1)).expect("flow exists");
    println!(
        "after release: residual = {}, flows in MIB = {}",
        broker.path_residual(path),
        broker.flows().len()
    );
}
