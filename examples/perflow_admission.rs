//! Path-oriented admission control for per-flow guaranteed services (§3).
//!
//! Rebuilds the paper's Figure-8 S1→D1 path in both scheduler settings
//! and walks the two §3 algorithms: the O(1) test on the rate-based-only
//! path, and the Figure-4 interval scan on the mixed path — printing each
//! grant so the Figure-9 dynamics (delay parameters sliding right, rates
//! climbing off the mean) are visible flow by flow.
//!
//! ```sh
//! cargo run --example perflow_admission
//! ```

use bbqos::broker::admission::{mixed, rate_based};
use bbqos::broker::mib::{LinkQos, NodeMib, PathMib};
use bbqos::units::{Bits, Nanos, Rate};
use bbqos::vtrs::profile::TrafficProfile;
use bbqos::vtrs::reference::HopKind;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn build_path(kinds: &[HopKind]) -> (NodeMib, PathMib, bbqos::broker::mib::PathId) {
    let mut nodes = NodeMib::new();
    let refs: Vec<_> = kinds
        .iter()
        .map(|k| {
            nodes.add_link(LinkQos::new(
                Rate::from_bps(1_500_000),
                *k,
                Nanos::from_millis(8),
                Nanos::ZERO,
                Bits::from_bytes(1500),
            ))
        })
        .collect();
    let mut paths = PathMib::new();
    let pid = paths.register(&nodes, refs);
    (nodes, paths, pid)
}

fn main() {
    let profile = type0();
    let d_req = Nanos::from_millis(2_190);

    // ---- §3.1: rate-based-only path, O(1) test --------------------
    println!("== rate-based-only path (5 × CsVC), D = 2.19 s ==");
    let (mut nodes, paths, pid) = build_path(&[HopKind::RateBased; 5]);
    let mut n = 0;
    loop {
        match rate_based::admit(&profile, d_req, paths.path(pid), &nodes) {
            Ok(range) => {
                n += 1;
                if n <= 3 || range.low != range.high {
                    println!(
                        "flow {n:>2}: feasible rate range [{}, {}] → grant {}",
                        range.low, range.high, range.low
                    );
                }
                let links = paths.path(pid).links.clone();
                for l in links {
                    nodes.link_mut(l).reserve(range.low);
                }
            }
            Err(why) => {
                println!("flow {:>2}: rejected ({why})", n + 1);
                break;
            }
        }
    }
    println!("admitted {n} flows (the paper's Table 2 says 27)\n");

    // ---- §3.2: mixed path, Figure-4 scan --------------------------
    println!("== mixed path (CsVC, CsVC, VT-EDF, VT-EDF, CsVC), D = 2.19 s ==");
    let (mut nodes, paths, pid) = build_path(&[
        HopKind::RateBased,
        HopKind::RateBased,
        HopKind::DelayBased,
        HopKind::DelayBased,
        HopKind::RateBased,
    ]);
    let mut n = 0;
    loop {
        match mixed::admit(&profile, d_req, paths.path(pid), &nodes) {
            Ok(pair) => {
                n += 1;
                println!(
                    "flow {n:>2}: grant ⟨r = {}, d = {}⟩   (distinct delay classes on path: {})",
                    pair.rate,
                    pair.delay,
                    paths.path(pid).distinct_delays(&nodes).len()
                );
                let links = paths.path(pid).links.clone();
                for l in links {
                    nodes.link_mut(l).reserve(pair.rate);
                    if nodes.link(l).kind == HopKind::DelayBased {
                        nodes
                            .link_mut(l)
                            .add_edf(pair.rate, pair.delay, profile.l_max);
                    }
                }
            }
            Err(why) => {
                println!("flow {:>2}: rejected ({why})", n + 1);
                break;
            }
        }
    }
    println!("admitted {n} flows (the paper's Table 2 says 27)");
    println!(
        "\nnote how early flows share one delay value at the mean rate, then the\n\
         feasible delay parameter grows and the reserved rate climbs — the\n\
         Figure-9 dynamic."
    );
}
