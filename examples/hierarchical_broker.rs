//! A two-level bandwidth-broker hierarchy (the paper's future-work
//! direction, prototyped in `bbqos::broker::hierarchy`).
//!
//! The Figure-8 S1→D1 path is split into two segments owned by child
//! brokers; the parent admits end-to-end from O(1) per-segment summaries
//! and instructs the children — no broker holds the whole domain's flow
//! table, and core routers still hold nothing at all.
//!
//! ```sh
//! cargo run --example hierarchical_broker
//! ```

use bbqos::broker::hierarchy::HierarchicalBroker;
use bbqos::netsim::topology::{LinkId, SchedulerSpec, Topology, TopologyBuilder};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;

fn segment(hops: usize, label: &str) -> (Topology, Vec<LinkId>) {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..=hops).map(|i| b.node(format!("{label}{i}"))).collect();
    let route = (0..hops)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    (b.build(), route)
}

fn main() {
    // Segment A: I1 → R2 → R3 → R4 (3 hops); segment B: R4 → R5 → E1.
    let mut hb = HierarchicalBroker::new(vec![segment(3, "a"), segment(2, "b")]);
    println!("two-level broker over the 5-hop S1→D1 path (segments of 3 + 2 hops)\n");
    println!("parent's knowledge of the domain (per-segment summaries):");
    for (i, s) in hb.summaries().iter().enumerate() {
        println!(
            "  segment {i}: h = {}, D_tot = {}, C_res = {}",
            s.h, s.d_tot, s.c_res
        );
    }

    let profile = TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap();

    let mut n = 0u64;
    while let Ok(rate) = hb.request(Time::ZERO, FlowId(n), &profile, Nanos::from_millis(2_440)) {
        if n == 0 {
            println!("\nfirst admission: parent computed r = {rate} from the summaries alone");
        }
        n += 1;
    }
    println!(
        "admitted {n} type-0 flows at D = 2.44 s — identical to the flat broker\n\
         (Table 2's 30), with the parent sending {} child messages total",
        hb.stats().child_messages
    );
    println!(
        "state placement: parent flow records = 0; child A = {}, child B = {}",
        hb.child_flow_count(0),
        hb.child_flow_count(1)
    );

    // Tear a few down and show the capacity returning end to end.
    for f in 0..5 {
        hb.release(Time::ZERO, FlowId(f)).expect("admitted");
    }
    println!(
        "\nafter releasing 5 flows, summaries show C_res = {} on both segments",
        hb.summaries()[0].c_res
    );
}
