//! Randomized whole-stack stress: random domains, random flow mixes,
//! alternate-path admission — and every admitted flow still meets its
//! bound in the packet plane with VTRS validation on.
//!
//! This is the "does the system hold together off the paper's happy
//! path" test: topologies the authors never drew, heterogeneous
//! profiles, partial rejections, and multi-path placement.

use bbqos::broker::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bbqos::netsim::topology::{LinkId, NodeId, SchedulerSpec, Topology, TopologyBuilder};
use bbqos::netsim::{Simulator, SourceModel};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::delay::e2e_delay_bound;
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;
use proptest::prelude::*;

/// A random layered topology: `width` parallel relays between ingress
/// and egress, plus a chain behind them, with randomized scheduler kinds.
fn build_domain(width: usize, chain: usize, seed_bits: u64) -> (Topology, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let ingress = b.node("in");
    let cap = Rate::from_bps(3_000_000);
    let lmax = Bits::from_bytes(1500);
    let pick = |i: usize| {
        if (seed_bits >> (i % 60)) & 1 == 1 {
            SchedulerSpec::VtEdf
        } else {
            SchedulerSpec::CsVc
        }
    };
    // Parallel relays.
    let merge = b.node("merge");
    for w in 0..width {
        let relay = b.node(format!("relay{w}"));
        b.link(ingress, relay, cap, Nanos::ZERO, pick(w), lmax);
        b.link(relay, merge, cap, Nanos::ZERO, pick(w + 7), lmax);
    }
    // Chain to the egress.
    let mut prev = merge;
    for c in 0..chain {
        let next = b.node(format!("chain{c}"));
        b.link(prev, next, cap, Nanos::ZERO, pick(c + 13), lmax);
        prev = next;
    }
    (b.build(), ingress, prev)
}

#[derive(Debug, Clone)]
struct GenFlow {
    profile: TrafficProfile,
    d_req: Nanos,
}

fn gen_flow() -> impl Strategy<Value = GenFlow> {
    (
        20_000u64..60_000,
        1u64..4,
        20_000u64..120_000,
        1_000u64..8_000,
    )
        .prop_map(|(rho, pk, sigma_extra, d_ms)| GenFlow {
            profile: TrafficProfile::new(
                Bits::from_bits(12_000 + sigma_extra),
                Rate::from_bps(rho),
                Rate::from_bps(rho * (1 + pk)),
                Bits::from_bytes(1500),
            )
            .unwrap(),
            d_req: Nanos::from_millis(d_ms),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn admitted_flows_meet_bounds_on_random_domains(
        width in 2usize..4,
        chain in 1usize..4,
        kinds in any::<u64>(),
        flows in prop::collection::vec(gen_flow(), 4..14),
    ) {
        let (topo, ingress, egress) = build_domain(width, chain, kinds);
        let mut broker = Broker::new(topo.clone(), BrokerConfig::default());
        let mut admitted: Vec<(FlowId, GenFlow, Vec<LinkId>, Rate, Nanos)> = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            let req = FlowRequest {
                flow: FlowId(i as u64),
                profile: f.profile,
                d_req: f.d_req,
                service: ServiceKind::PerFlow,
                path: bbqos::broker::mib::PathId(0),
            };
            if let Ok((res, pid)) =
                broker.request_with_alternates(Time::ZERO, &req, ingress, egress, 4)
            {
                // Recover the concrete route for the simulator from the
                // path MIB's link refs (indices coincide with topology
                // link ids under full import).
                let route: Vec<LinkId> = broker
                    .paths()
                    .path(pid)
                    .links
                    .iter()
                    .map(|r| LinkId(r.0))
                    .collect();
                admitted.push((res.flow, f.clone(), route, res.rate, res.delay));
            }
        }
        // With a 3 Mb/s core and sustained rates ≤ 60 kb/s, most requests
        // must admit — vacuous passes would hide a broken harness.
        prop_assert!(
            admitted.len() * 2 >= flows.len(),
            "only {}/{} admitted — harness suspicious",
            admitted.len(),
            flows.len()
        );

        let mut sim = Simulator::new(topo.clone());
        sim.enable_validation();
        for (id, f, route, rate, delay) in &admitted {
            sim.add_flow(*id, *rate, *delay, route.clone());
            sim.add_source(
                *id,
                SourceModel::Greedy {
                    profile: f.profile,
                    packet: f.profile.l_max,
                },
                Time::ZERO,
                None,
                Some(12),
            );
        }
        sim.run_to_completion();

        for (id, f, route, rate, delay) in &admitted {
            let spec = topo.path_spec(route);
            let bound =
                e2e_delay_bound(&f.profile, &spec, f.profile.l_max, *rate, *delay).unwrap();
            let st = sim.flow_stats(*id);
            prop_assert_eq!(st.delivered, 12, "flow {} lost packets", id.0);
            prop_assert!(
                st.max_e2e <= bound,
                "flow {}: observed {} > bound {} (r={}, d={}, path h={})",
                id.0, st.max_e2e, bound, rate, delay, spec.h()
            );
            prop_assert_eq!(st.spacing_violations, 0);
            prop_assert_eq!(st.reality_violations, 0);
        }
    }
}
