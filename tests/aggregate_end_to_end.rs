//! Class-based service across the control/data-plane boundary: the
//! broker plans a mid-simulation microflow join, the simulator applies
//! the resulting edge re-configuration (rate + contingency), and the
//! class delay bound holds in the packet plane — while skipping the
//! contingency (the naive treatment) breaks it.

use bbqos::broker::admission::aggregate::{plan_join, ClassSpec};
use bbqos::broker::mib::{LinkQos, NodeMib, PathMib};
use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
use bbqos::netsim::{Simulator, SourceModel};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::delay::{core_delay_bound, edge_delay_bound};
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;
use bbqos::vtrs::reference::HopKind;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn nu() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(24_000),
        Rate::from_bps(20_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

#[test]
fn planned_join_with_contingency_meets_class_bound_in_packet_plane() {
    // Control plane: plan the join with the broker's §4.3 planner.
    let mut nodes = NodeMib::new();
    let refs: Vec<_> = (0..5)
        .map(|_| {
            nodes.add_link(LinkQos::new(
                Rate::from_bps(1_500_000),
                HopKind::RateBased,
                Nanos::from_millis(8),
                Nanos::ZERO,
                Bits::from_bytes(1500),
            ))
        })
        .collect();
    let mut paths = PathMib::new();
    let pid = paths.register(&nodes, refs);
    let class = ClassSpec {
        id: 0,
        d_req: Nanos::from_millis(3_000),
        cd: Nanos::ZERO,
    };
    let alpha = type0().aggregate(&type0());
    let r_alpha = Rate::from_bps(100_000);
    let plan = plan_join(
        &class,
        paths.path(pid),
        &nodes,
        Some((&alpha, r_alpha)),
        &nu(),
    )
    .expect("join admissible");
    assert!(plan.new_rate >= r_alpha);
    assert_eq!(
        plan.increment.saturating_add(plan.contingency),
        nu().peak,
        "Theorem 2: increment + Δr = Pν"
    );

    // Data plane: two greedy type-0 microflows, the ν joins at the §4.1
    // worst-case instant; the broker's plan is applied verbatim.
    let mut b = TopologyBuilder::new();
    let ns: Vec<_> = (0..6).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<_> = (0..5)
        .map(|i| {
            b.link(
                ns[i],
                ns[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let spec = topo.path_spec(&route);
    let t_star = Time::ZERO + alpha.t_on() - nu().t_on();

    let mut sim = Simulator::new(topo);
    sim.enable_validation();
    let m = FlowId(1);
    sim.add_flow(m, r_alpha, Nanos::ZERO, route);
    sim.set_flow_threshold(m, t_star);
    for _ in 0..2 {
        sim.add_source(
            m,
            SourceModel::Greedy {
                profile: type0(),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            Some(Time::from_secs_f64(10.0)),
            None,
        );
    }
    sim.add_source(
        m,
        SourceModel::Greedy {
            profile: nu(),
            packet: Bits::from_bytes(1500),
        },
        t_star,
        Some(Time::from_secs_f64(10.0)),
        None,
    );
    sim.run_until(t_star);
    sim.set_flow_rate(m, plan.new_rate);
    sim.set_flow_contingency(m, plan.contingency);
    // Feedback release once the backlog drains.
    let mut t = t_star;
    loop {
        t += Nanos::from_millis(10);
        sim.run_until(t);
        if sim.flow_backlog(m) == Bits::ZERO {
            sim.set_flow_contingency(m, Rate::ZERO);
            break;
        }
    }
    sim.run_to_completion();

    let st = sim.flow_stats(m);
    assert_eq!(st.spacing_violations + st.reality_violations, 0);

    // Theorem 2 (eq. 13): post-join edge delay within max(old, new).
    let d_edge_old = edge_delay_bound(&alpha, r_alpha).unwrap();
    let d_edge_new = edge_delay_bound(&plan.new_profile, plan.new_rate).unwrap();
    assert!(
        st.max_edge_post <= d_edge_old.max(d_edge_new),
        "edge transient bound violated: {} > max({}, {})",
        st.max_edge_post,
        d_edge_old,
        d_edge_new
    );

    // Theorem 4: core delay within the modified (slower-rate) bound.
    let core_bound = bbqos::vtrs::delay::modified_core_delay_bound(
        &spec,
        Bits::from_bytes(1500),
        r_alpha,
        plan.new_rate,
        Nanos::ZERO,
    )
    .unwrap();
    assert!(
        st.max_core <= core_bound,
        "core bound violated: {} > {}",
        st.max_core,
        core_bound
    );

    // And the class's end-to-end requirement held for every packet.
    assert!(
        st.max_e2e <= class.d_req,
        "class bound violated: {} > {}",
        st.max_e2e,
        class.d_req
    );
    let _ = core_delay_bound(&spec, Bits::from_bytes(1500), plan.new_rate, Nanos::ZERO);
}

#[test]
fn fluid_edge_model_tracks_the_real_conditioner_drain() {
    // The Figure-10 harness trusts the fluid model's drain prediction;
    // cross-check it against the packet-level conditioner for a bursty
    // join: the fluid prediction must not be earlier than ~one packet
    // time before the real drain, and the real drain must happen.
    use bbqos::broker::edge_model::FluidEdge;

    let mut b = TopologyBuilder::new();
    let ns: Vec<_> = (0..3).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<_> = (0..2)
        .map(|i| {
            b.link(
                ns[i],
                ns[i + 1],
                Rate::from_mbps(10),
                Nanos::ZERO,
                SchedulerSpec::CsVc,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let mut sim = Simulator::new(topo);
    let f = FlowId(1);
    let service = Rate::from_bps(100_000);
    sim.add_flow(f, service, Nanos::ZERO, route);
    // A burst of 10 packets at t = 0, then silence.
    sim.add_source(
        f,
        SourceModel::Greedy {
            profile: TrafficProfile::new(
                Bits::from_bits(120_000),
                Rate::from_bps(1),
                Rate::from_mbps(100),
                Bits::from_bytes(1500),
            )
            .unwrap(),
            packet: Bits::from_bytes(1500),
        },
        Time::ZERO,
        None,
        Some(10),
    );

    let mut fluid = FluidEdge::new(Time::ZERO);
    fluid.set_service(Time::ZERO, service);
    fluid.add_burst(Time::ZERO, Bits::from_bits(120_000));
    let predicted = fluid.empty_at().expect("drains");

    // Find the real drain instant by stepping the simulator.
    let mut t = Time::ZERO;
    let real = loop {
        t += Nanos::from_millis(10);
        sim.run_until(t);
        if sim.flow_backlog(f) == Bits::ZERO {
            break t;
        }
        assert!(t < Time::from_secs_f64(10.0), "never drained");
    };
    // 120 kb at 100 kb/s ≈ 1.2 s. The conditioner *releases* the last
    // packet one packet-time early (release-at-start semantics), and we
    // poll at 10 ms, so allow that window.
    let lo = predicted
        .saturating_since(Time::ZERO)
        .saturating_sub(Nanos::from_millis(130));
    let hi = predicted.saturating_since(Time::ZERO) + Nanos::from_millis(20);
    let real_d = real.saturating_since(Time::ZERO);
    assert!(
        real_d >= lo && real_d <= hi,
        "real drain {real_d} outside fluid prediction window [{lo}, {hi}]"
    );
}
