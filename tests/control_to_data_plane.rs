//! The whole story, end to end: the broker admits flows using nothing
//! but its MIBs, the reservations configure edge conditioners in the
//! packet-level simulator, worst-case (greedy) sources transmit — and
//! every admitted flow's observed delay stays within its promised bound,
//! with the VTRS invariants checked at every hop.

use bbqos::broker::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use bbqos::netsim::topology::{LinkId, SchedulerSpec, Topology, TopologyBuilder};
use bbqos::netsim::{Simulator, SourceModel};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::delay::e2e_delay_bound;
use bbqos::vtrs::packet::FlowId;
use bbqos::vtrs::profile::TrafficProfile;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn path(mixed: bool) -> (Topology, Vec<LinkId>) {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = ["I1", "R2", "R3", "R4", "R5", "E1"]
        .iter()
        .map(|n| b.node(*n))
        .collect();
    let cap = Rate::from_bps(1_500_000);
    let lmax = Bits::from_bytes(1500);
    let specs = if mixed {
        [
            SchedulerSpec::CsVc,
            SchedulerSpec::CsVc,
            SchedulerSpec::VtEdf,
            SchedulerSpec::VtEdf,
            SchedulerSpec::CsVc,
        ]
    } else {
        [SchedulerSpec::CsVc; 5]
    };
    let route = (0..5)
        .map(|i| b.link(nodes[i], nodes[i + 1], cap, Nanos::ZERO, specs[i], lmax))
        .collect();
    (b.build(), route)
}

/// Admits until full, then validates every flow in the packet plane.
fn admit_and_validate(mixed: bool, d_req_ms: u64, expected_flows: u64) {
    let (topo, route) = path(mixed);
    let d_req = Nanos::from_millis(d_req_ms);
    let profile = type0();

    let mut broker = Broker::new(topo.clone(), BrokerConfig::default());
    let pid = broker.register_route(&route);
    let mut reservations = Vec::new();
    loop {
        let flow = FlowId(reservations.len() as u64);
        match broker.request(
            Time::ZERO,
            &FlowRequest {
                flow,
                profile,
                d_req,
                service: ServiceKind::PerFlow,
                path: pid,
            },
        ) {
            Ok(res) => reservations.push(res),
            Err(_) => break,
        }
    }
    assert_eq!(reservations.len() as u64, expected_flows);

    let mut sim = Simulator::new(topo.clone());
    sim.enable_validation();
    let spec = topo.path_spec(&route);
    for res in &reservations {
        sim.add_flow(res.flow, res.rate, res.delay, route.clone());
        sim.add_source(
            res.flow,
            SourceModel::Greedy {
                profile,
                packet: profile.l_max,
            },
            Time::ZERO,
            None,
            Some(30),
        );
    }
    sim.run_to_completion();

    for res in &reservations {
        let bound = e2e_delay_bound(&profile, &spec, profile.l_max, res.rate, res.delay).unwrap();
        let st = sim.flow_stats(res.flow);
        assert_eq!(st.delivered, 30, "flow {} lost packets", res.flow.0);
        assert!(
            st.max_e2e <= bound,
            "flow {}: observed {} exceeds bound {} (granted r={}, d={})",
            res.flow.0,
            st.max_e2e,
            bound,
            res.rate,
            res.delay
        );
        // The conservative bound may round a handful of ns past D; the
        // observation must respect D itself outright.
        assert!(
            st.max_e2e <= d_req,
            "flow {}: observed {} exceeds the requirement {}",
            res.flow.0,
            st.max_e2e,
            d_req
        );
        assert_eq!(st.spacing_violations, 0);
        assert_eq!(st.reality_violations, 0);
    }
}

#[test]
fn rate_only_path_at_244s_all_30_flows_meet_bounds() {
    admit_and_validate(false, 2_440, 30);
}

#[test]
fn rate_only_path_at_219s_all_27_flows_meet_bounds() {
    admit_and_validate(false, 2_190, 27);
}

#[test]
fn mixed_path_at_244s_all_30_flows_meet_bounds() {
    admit_and_validate(true, 2_440, 30);
}

#[test]
fn mixed_path_at_219s_all_27_flows_meet_bounds() {
    admit_and_validate(true, 2_190, 27);
}
