//! Reproducibility: the entire stack — workload generation, simulation,
//! admission control, experiments — is deterministic given its seeds.

use bbqos::netsim::topology::{SchedulerSpec, TopologyBuilder};
use bbqos::netsim::{Simulator, SourceModel};
use bbqos::units::{Bits, Nanos, Rate, Time};
use bbqos::vtrs::packet::FlowId;

fn run_scenario() -> (u64, Nanos, Nanos) {
    let mut b = TopologyBuilder::new();
    let ns: Vec<_> = (0..4).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<_> = (0..3)
        .map(|i| {
            b.link(
                ns[i],
                ns[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::from_micros(50),
                if i == 1 {
                    SchedulerSpec::VtEdf
                } else {
                    SchedulerSpec::CsVc
                },
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let mut sim = Simulator::new(topo);
    for i in 0..5u64 {
        let f = FlowId(i);
        sim.add_flow(
            f,
            Rate::from_bps(100_000),
            Nanos::from_millis(100),
            route.clone(),
        );
        sim.add_source(
            f,
            SourceModel::Poisson {
                mean_rate: Rate::from_bps(80_000),
                packet: Bits::from_bytes(1500),
                seed: 1_000 + i,
            },
            Time::ZERO,
            Some(Time::from_secs_f64(30.0)),
            None,
        );
    }
    sim.run_to_completion();
    let mut delivered = 0;
    let mut max_e2e = Nanos::ZERO;
    let mut sum = Nanos::ZERO;
    for i in 0..5u64 {
        let st = sim.flow_stats(FlowId(i));
        delivered += st.delivered;
        max_e2e = max_e2e.max(st.max_e2e);
        sum += st.mean_e2e();
    }
    (delivered, max_e2e, sum)
}

#[test]
fn packet_simulation_replays_exactly() {
    let a = run_scenario();
    let b = run_scenario();
    assert_eq!(a, b);
    assert!(a.0 > 100, "simulation should deliver packets, got {}", a.0);
}

#[test]
fn table2_is_stable() {
    let a = bb_bench::table2::run();
    let b = bb_bench::table2::run();
    for ((s1, c1), (s2, c2)) in a.rows.iter().zip(&b.rows) {
        assert_eq!(s1, s2);
        assert_eq!(c1, c2);
    }
}

#[test]
fn blocking_experiment_replays_exactly() {
    let cfg = bb_bench::fig10::Config {
        arrival_rates: vec![0.2],
        horizon: Time::from_secs_f64(800.0),
        seeds: vec![11],
        ..bb_bench::fig10::Config::default()
    };
    let a = bb_bench::fig10::run(&cfg);
    let b = bb_bench::fig10::run(&cfg);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.points, y.points);
    }
}
