//! Minimal in-tree stand-in for the `bytes` crate.
//!
//! Implements the subset of the upstream API this workspace uses:
//! [`Bytes`] (cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] cursor
//! traits with big-endian integer accessors. Semantics match upstream
//! for that subset: `get_*`/`advance` panic on underflow, `slice` panics
//! out of range, and `Bytes` slices share the underlying allocation.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copies it; this stand-in keeps one code path).
    #[must_use]
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build frames.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }

    /// Extends with a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.vec.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { vec: v.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        Bytes::from(self.vec.clone()).fmt(f)
    }
}

/// Read cursor over a byte buffer; integer reads are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor; integer writes are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice_share() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0xBEEF);
        b.put_u64(7);
        b.put_u8(3);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 11);
        let mut cursor = frozen.slice(0..10);
        assert_eq!(cursor.get_u16(), 0xBEEF);
        assert_eq!(cursor.get_u64(), 7);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn advance_moves_window() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(b.to_vec(), vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
