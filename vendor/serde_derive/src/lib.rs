//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde`.
//!
//! Without `syn`/`quote` available, the input item is parsed directly
//! from its `proc_macro::TokenStream`: attributes are skipped as
//! `#`+bracket-group pairs, field lists are split on top-level commas
//! (tracking `<`/`>` depth so generic argument lists inside field types
//! do not split), and the generated impls are emitted as source text.
//!
//! Supported shapes — the full set this workspace derives on — are
//! non-generic structs (named, tuple/newtype, unit) and enums with
//! unit, tuple, and struct variants, encoded exactly as upstream serde
//! defaults: objects for named structs, transparent newtypes, arrays
//! for tuples, externally tagged enums. Generic items produce a
//! `compile_error!` naming the limitation.
//!
//! One field attribute is honored: `#[serde(default)]` on a named
//! struct field makes deserialization substitute `Default::default()`
//! when the field is absent from the input object — the lenient-decode
//! escape hatch that lets new snapshot fields read old baseline files.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The item shapes we can encode.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// One named field and whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

/// Generates the `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Generates the `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

// ---- parsing -----------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let _ = skip_attrs_and_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive (vendored) does not support generic item `{name}`"
        ));
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skips leading outer attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`), reporting whether a `#[serde(default)]`
/// attribute was among those skipped.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: `#` then a bracket group.
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    has_default |= is_serde_default(g);
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return has_default,
        }
    }
}

/// Recognizes the bracket group of a `#[serde(default)]` attribute:
/// the ident `serde` followed by a parenthesized `default`.
fn is_serde_default(group: &proc_macro::Group) -> bool {
    if group.delimiter() != Delimiter::Bracket {
        return false;
    }
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(
                (inner.first(), inner.len()),
                (Some(TokenTree::Ident(arg)), 1) if arg.to_string() == "default"
            )
        }
        _ => false,
    }
}

/// Splits a token run on top-level commas, treating `<`/`>` puncts as
/// nesting (generic argument lists in field types).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                segments.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for seg in split_top_level_commas(stream) {
        let mut i = 0;
        let default = skip_attrs_and_vis(&seg, &mut i);
        match seg.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(Field {
                name: id.to_string(),
                default,
            }),
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for seg in split_top_level_commas(stream) {
        let mut i = 0;
        let _ = skip_attrs_and_vis(&seg, &mut i);
        let name = match seg.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match seg.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            None => VariantKind::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "explicit discriminant on variant `{name}` is not supported"
                ));
            }
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- code generation ---------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("({f:?}.to_owned(), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::json::Value::Obj(vec![{}])", pairs.join(", ")),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::json::Value::Arr(vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct { name } => impl_serialize(name, "::serde::json::Value::Null"),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::json::Value::Str({vn:?}.to_owned())"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::json::Value::Obj(vec![({vn:?}.to_owned(), ::serde::Serialize::to_value(f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::json::Value::Obj(vec![({vn:?}.to_owned(), ::serde::json::Value::Arr(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let binds = binds.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "({f:?}.to_owned(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::json::Value::Obj(vec![({vn:?}.to_owned(), ::serde::json::Value::Obj(vec![{}]))])",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(", ")))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "v")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Item::TupleStruct { name, arity: 1 } => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(v.element({i})?)?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Item::UnitStruct { name } => format!("Ok({name})"),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!("{vn:?} => Ok({name}::{vn})"),
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?))"
                        ),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(payload.element({i})?)?"
                                    )
                                })
                                .collect();
                            format!("{vn:?} => Ok({name}::{vn}({}))", inits.join(", "))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_init(f, "payload")).collect();
                            format!("{vn:?} => Ok({name}::{vn} {{ {} }})", inits.join(", "))
                        }
                    }
                })
                .collect();
            format!(
                "let (tag, payload) = v.enum_variant()?;\n\
                 let _ = &payload;\n\
                 match tag {{ {}, other => Err(::serde::json::Error::new(format!(\
                     \"unknown variant `{{other}}` for {name}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {} {{\n\
             fn from_value(v: &::serde::json::Value) -> Result<Self, ::serde::json::Error> {{\n\
                 {body}\n\
             }}\n\
         }}",
        item_name(item)
    )
}

/// The initializer expression for one named field read from `src`: a
/// plain lookup, or — under `#[serde(default)]` — `Default::default()`
/// when the field is absent (a lookup on a non-object still errs).
fn field_init(f: &Field, src: &str) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match {src}.field({name:?}) {{ \
                 Ok(fv) => ::serde::Deserialize::from_value(fv)?, \
                 Err(_) => ::core::default::Default::default() \
             }}"
        )
    } else {
        format!("{name}: ::serde::Deserialize::from_value({src}.field({name:?})?)?")
    }
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    }
}
