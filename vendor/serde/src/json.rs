//! The JSON value tree, compact printer, and recursive-descent parser
//! behind this workspace's `Serialize`/`Deserialize`.

use std::fmt;

use crate::{Deserialize, Serialize};

/// A parsed or to-be-printed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (kept exact — QoS unit types use
    /// `u64::MAX` sentinels that an f64 detour would corrupt).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A float (anything written with `.`, `e`, or out of i64 range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered, first match wins on lookup.
    Obj(Vec<(String, Value)>),
}

/// Shape or range mismatch while deserializing, or a parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Wraps a message.
    #[must_use]
    pub fn new(msg: String) -> Self {
        Error(msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// The value as `u64`.
    ///
    /// # Errors
    ///
    /// Errs on non-integers and negatives.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match self {
            Value::UInt(n) => Ok(*n),
            Value::Int(n) if *n >= 0 => Ok(*n as u64),
            other => Err(Error::new(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }

    /// The value as `i64`.
    ///
    /// # Errors
    ///
    /// Errs on non-integers and out-of-range magnitudes.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match self {
            Value::Int(n) => Ok(*n),
            Value::UInt(n) => {
                i64::try_from(*n).map_err(|_| Error::new(format!("{n} out of range for i64")))
            }
            other => Err(Error::new(format!("expected integer, got {other:?}"))),
        }
    }

    /// The value as `f64` (integers convert).
    ///
    /// # Errors
    ///
    /// Errs on non-numbers.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match self {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(Error::new(format!("expected number, got {other:?}"))),
        }
    }

    /// Looks up an object field.
    ///
    /// # Errors
    ///
    /// Errs if this is not an object or the field is absent.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!("expected object, got {other:?}"))),
        }
    }

    /// Looks up an array element.
    ///
    /// # Errors
    ///
    /// Errs if this is not an array or the index is out of range.
    pub fn element(&self, idx: usize) -> Result<&Value, Error> {
        match self {
            Value::Arr(items) => items
                .get(idx)
                .ok_or_else(|| Error::new(format!("missing element {idx}"))),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }

    /// For an externally tagged enum: the `(variant-name, payload)`
    /// pair. A bare string is a unit variant (payload `Null`).
    ///
    /// # Errors
    ///
    /// Errs on shapes that cannot encode an enum.
    pub fn enum_variant(&self) -> Result<(&str, &Value), Error> {
        match self {
            Value::Str(s) => Ok((s.as_str(), &Value::Null)),
            Value::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
            other => Err(Error::new(format!(
                "expected enum (string or single-key object), got {other:?}"
            ))),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a decimal point so the token re-parses as float.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|n| n + 1));
                write_value(out, item, indent.map(|n| n + 1));
            }
            if !items.is_empty() {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|n| n + 1));
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|n| n + 1));
            }
            if !pairs.is_empty() {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    }
}

/// Prints a value compactly.
#[must_use]
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None);
    out
}

/// Prints a value with two-space indentation.
#[must_use]
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(0));
    out
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Errs on malformed JSON or a shape mismatch for `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&parse(s)?)
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Errs on malformed JSON or trailing garbage.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string".to_owned())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape".to_owned()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape".to_owned()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u escape".to_owned()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the maximal run of plain characters in one
                    // validation pass (re-validating the whole remaining
                    // input per character is quadratic in document size).
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid UTF-8".to_owned()))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number".to_owned()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error::new(format!("expected `,` or `]`, got {other:?}")));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                other => {
                    return Err(Error::new(format!("expected `,` or `}}`, got {other:?}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_shapes() {
        let cases = [
            "null",
            "true",
            "18446744073709551615",
            "-42",
            "1.5",
            "\"hi \\\"there\\\"\"",
            "[1,2,[3]]",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
        ];
        for c in cases {
            let v = parse(c).unwrap();
            let printed = {
                let mut out = String::new();
                super::write_value(&mut out, &v, None);
                out
            };
            assert_eq!(parse(&printed).unwrap(), v, "case {c}");
        }
    }

    #[test]
    fn u64_max_survives() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn derived_reports_serialize() {
        // Exercised end-to-end by dependent crates; here check the
        // manual impls compose.
        let v = vec![(1u64, "x".to_owned()), (2, "y".to_owned())];
        let s = to_string(&v);
        assert_eq!(s, "[[1,\"x\"],[2,\"y\"]]");
        let back: Vec<(u64, String)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").unwrap_err().to_string().contains("trailing"));
        assert!(Value::Null.field("x").is_err());
    }
}
