//! Minimal in-tree stand-in for `serde`.
//!
//! Upstream serde's data-model indirection (Serializer/Deserializer
//! visitors) is overkill for this workspace, which only ever needs JSON
//! for benchmark reports and decision traces. This crate keeps serde's
//! *surface* — `Serialize`/`Deserialize` traits and working
//! `#[derive(Serialize, Deserialize)]` macros — but routes both through
//! an explicit [`json::Value`] tree:
//!
//! * `Serialize` renders a value tree ([`Serialize::to_value`]), which
//!   [`json::to_string`] prints as compact JSON;
//! * `Deserialize` rebuilds a type from a parsed tree
//!   ([`json::from_str`]).
//!
//! The derive macros (in `serde_derive`) generate the upstream default
//! encodings: structs as objects, newtypes transparently, tuple structs
//! as arrays, enums externally tagged (`"Variant"` /
//! `{"Variant": ...}`), so the emitted JSON matches what real serde +
//! serde_json would produce for the same types. Integer precision is
//! preserved end-to-end (no f64 round-trip) because the QoS unit types
//! use `u64::MAX` sentinels.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Types that can render themselves as a JSON value tree.
pub trait Serialize {
    /// The value tree for this instance.
    fn to_value(&self) -> json::Value;
}

/// Types that can be rebuilt from a JSON value tree.
pub trait Deserialize: Sized {
    /// Rebuilds an instance, reporting a descriptive error on shape or
    /// range mismatches.
    ///
    /// # Errors
    ///
    /// Returns [`json::Error`] when the value tree does not match the
    /// type's encoding.
    fn from_value(v: &json::Value) -> Result<Self, json::Error>;
}

// ---- implementations for primitives and std containers ----------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_u64()?;
                <$t>::try_from(n).map_err(|_| json::Error::new(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> json::Value {
        json::Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let n = v.as_u64()?;
        usize::try_from(n).map_err(|_| json::Error::new(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let n = v.as_i64()?;
                <$t>::try_from(n).map_err(|_| json::Error::new(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_f64()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(json::Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            other => Err(json::Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(json::Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> json::Value {
                json::Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                match v {
                    json::Value::Arr(items) => Ok(($($t::from_value(
                        items.get($n).ok_or_else(|| json::Error::new(
                            "tuple array too short".to_owned()
                        ))?
                    )?,)+)),
                    other => Err(json::Error::new(
                        format!("expected array for tuple, got {other:?}"),
                    )),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
