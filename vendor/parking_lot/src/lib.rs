//! Minimal in-tree stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()`, `read()` and `write()` return guards directly. A
//! panicked holder does not poison the lock for later users (matching
//! `parking_lot` semantics), because poisoning is simply cleared.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }
}
