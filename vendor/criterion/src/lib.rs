//! Minimal in-tree stand-in for `criterion`.
//!
//! Implements the surface this workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_with_input`/`bench_function`,
//! [`BenchmarkId`], `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — timing with `std::time::Instant` and
//! printing a median-of-samples estimate per benchmark. No statistical
//! analysis, plotting, or result persistence.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` also works.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    /// Samples (timed batches) per benchmark.
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 15 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_count, |b| f(b));
        self
    }
}

/// A named set of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against one parameterised input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.criterion.sample_count, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens per-benchmark already).
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrates an iteration count, then reports the median sample.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: u32, mut f: F) {
    // Calibrate: grow iters until one sample takes >= ~2ms (capped).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
