//! Minimal in-tree stand-in for `crossbeam`, providing the
//! multi-producer **multi-consumer** channels of `crossbeam::channel`.
//!
//! The decisive difference from `std::sync::mpsc` — and the reason the
//! server's worker pool wants crossbeam semantics — is that
//! [`channel::Receiver`] is `Clone`, so several workers can drain one
//! queue, and [`channel::Sender::try_send`] gives callers an explicit
//! full/disconnected signal for backpressure instead of unbounded
//! buffering. Implemented as a `Mutex<VecDeque>` plus two condvars;
//! throughput is far below the real crate's lock-free queues but the
//! API and blocking semantics match.

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    fn chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// A bounded channel: `send` blocks and `try_send` fails once `cap`
    /// messages are queued.
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        chan(Some(cap))
    }

    /// An unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        chan(None)
    }

    /// Error: all receivers disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error for [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    /// Error: channel empty and all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel empty and all senders disconnected.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        inner: Arc<Chan<T>>,
    }

    /// The receiving half; clone freely — clones share one queue, so a
    /// message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until the message is queued; errs if every receiver is
        /// gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                match st.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.not_full.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Queues without blocking, failing on a full channel — the
        /// backpressure primitive.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = st.cap {
                if st.queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errs once the channel is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Messages currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.inner.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError, TrySendError};
    use std::time::Duration;

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_fan_in_fan_out() {
        let (tx, rx) = unbounded::<u64>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for v in 1..=100u64 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }
}
