//! Strategies: deterministic value generators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates via an intermediate value that picks a second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values; draws are retried (bounded) until one
    /// passes.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 draws in a row", self.whence);
    }
}

/// A type-erased strategy (what [`crate::prop_oneof!`] stores).
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<V>>,
}

impl<V> BoxedStrategy<V> {
    /// Erases a concrete strategy.
    #[must_use]
    pub fn new<S: Strategy<Value = V> + 'static>(s: S) -> Self {
        BoxedStrategy { inner: Box::new(s) }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Object-safe core of [`Strategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between erased strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Wraps the candidate strategies.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Whole-domain strategy behind `any::<T>()`.
pub struct FullRange<T>(pub(crate) PhantomData<T>);

macro_rules! full_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

full_range_int!(u8, u16, u32, u64, usize);

impl Strategy for FullRange<i64> {
    type Value = i64;

    #[allow(clippy::cast_possible_wrap)]
    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for FullRange<f64> {
    type Value = f64;

    /// Finite floats across a wide dynamic range (no NaN/inf — matching
    /// how this workspace uses `any::<f64>()`, when it does at all).
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let mantissa = rng.next_u64() >> 11;
        let scale = (rng.next_u64() % 64) as i32 - 32;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * (mantissa as f64) * 2f64.powi(scale)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                let off = (rng.next_u64() as u128) % span;
                self.start + off as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let off = (rng.next_u64() as u128) % span;
                self.start() + off as $t
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;

    #[allow(clippy::cast_possible_wrap)]
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end as i128) - (self.start as i128);
        let off = (rng.next_u64() as i128).rem_euclid(span);
        (self.start as i128 + off) as i64
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}
