//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length distribution for collection strategies. Only `Range<usize>`
/// converts, which also pins untyped integer literals (`1..14`) to
/// `usize` the way upstream's `SizeRange` does.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
