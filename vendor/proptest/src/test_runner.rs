//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic RNG cases are drawn from.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable, when set to a positive integer, overrides any in-test
    /// configuration — CI's stress knob for running the same properties
    /// at a multiple of their everyday budget.
    #[must_use]
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition unmet — skip this case.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// SplitMix64 — deterministic per (test name, case index), so failures
/// reproduce run over run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over a test name — the per-test base seed.
#[must_use]
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
