//! Minimal in-tree stand-in for `proptest`.
//!
//! Supports the API surface this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and
//! tuple strategies, `any::<T>()`, [`strategy::Just`], `prop_oneof!`,
//! [`collection::vec`], `.prop_map`/`.prop_flat_map`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberate for a hermetic build:
//!
//! * **No shrinking** — a failing case reports its exact inputs
//!   (`Debug`) and the deterministic seed, which is enough to
//!   reproduce: cases are generated from a fixed per-test seed, so
//!   every run explores the same inputs.
//! * Rejections from `prop_assume!` skip the case rather than
//!   resampling toward a target count.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{FullRange, Strategy};

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type for the whole domain.
        type Strategy: Strategy<Value = Self>;

        /// The whole-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, usize, i64, bool, f64);
}

/// The `proptest::prelude::prop` namespace.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test module imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts inside a property test, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::BoxedStrategy::new($strategy)),+
        ])
    };
}

/// Declares property tests. Each function runs `cases` deterministic
/// random cases; a failure reports the case's inputs and stops.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            // Bind strategies once; generation only needs `&self`.
            $(let $arg = $strategy;)+
            let seed0 = $crate::test_runner::fnv1a(stringify!($name));
            for case in 0..config.resolved_cases() {
                let mut rng =
                    $crate::test_runner::TestRng::new(seed0 ^ (0x9E37_79B9_7F4A_7C15u64
                        .wrapping_mul(u64::from(case) + 1)));
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                // Render inputs up front: the body may consume them.
                let inputs_desc: String =
                    [$(format!("\n  {} = {:?}", stringify!($arg), $arg)),+].concat();
                let outcome: Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case}/{} failed: {msg}\ninputs:{inputs_desc}",
                            config.cases,
                        );
                    }
                }
            }
        }
    )*};
}
