//! Minimal in-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256** seeded via SplitMix64,
//! matching upstream's choice of a small, fast, non-cryptographic
//! generator), the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, and
//! uniform range sampling for the integer and float ranges this
//! workspace draws from. Streams are deterministic per seed but are not
//! bit-compatible with upstream `rand` — all in-repo consumers only
//! rely on seeded determinism, not on specific streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// `u64` bits → uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a generator can sample uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Modulo bias is negligible for the spans used here
                // (all far below 2^64) and irrelevant to correctness.
                let off = (rng.next_u64() as u128) % span;
                self.start + off as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard the half-open invariant against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut a2 = SmallRng::seed_from_u64(7);
        let other: Vec<u64> = (0..8).map(|_| a2.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
