//! Platform backends behind [`crate::Poller`].
//!
//! Linux gets edge-triggered `epoll` through raw FFI (std already links
//! libc, so declaring the three syscall wrappers `extern "C"` costs
//! nothing); every other Unix gets a level-triggered `poll(2)` loop
//! over a mutex-guarded interest table. Both present the same
//! `Selector` surface, and the drain-until-`WouldBlock` discipline
//! documented on [`crate::Poller`] makes their semantics match.

use std::io;
use std::time::Duration;

use crate::{Event, Interest, Token};

#[cfg(target_os = "linux")]
pub(crate) use epoll::Selector;

#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) use pollfd::Selector;

/// Clamps a wait timeout to epoll/poll's millisecond `int`, rounding up
/// so a 100µs deadline never busy-loops as a zero-timeout wait.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            if d.subsec_nanos() % 1_000_000 != 0 {
                (ms + 1).min(i32::MAX as u128) as i32
            } else {
                ms.min(i32::MAX as u128) as i32
            }
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;
    use std::os::fd::RawFd;

    const EPOLL_CLOEXEC: i32 = 0x8_0000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    // The kernel ABI packs epoll_event on x86-64 (12 bytes); other
    // architectures use natural alignment (16 bytes).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub(crate) struct Selector {
        epfd: RawFd,
    }

    // The epfd is used only through the syscalls above; the kernel
    // serializes concurrent epoll_ctl/epoll_wait on one instance.
    unsafe impl Send for Selector {}
    unsafe impl Sync for Selector {}

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector { epfd })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = EPOLLET | EPOLLRDHUP;
            if interest.read {
                m |= EPOLLIN;
            }
            if interest.write {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: token.0 as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            const CAPACITY: usize = 1024;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAPACITY];
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        buf.as_mut_ptr(),
                        CAPACITY as i32,
                        timeout_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                let hangup = events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                out.push(Event {
                    token: Token(data as usize),
                    readable: events & EPOLLIN != 0 || hangup,
                    writable: events & EPOLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod pollfd {
    use super::*;
    use std::os::fd::RawFd;
    use std::sync::Mutex;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    pub(crate) struct Selector {
        interests: Mutex<Vec<(RawFd, Token, Interest)>>,
    }

    impl Selector {
        pub(crate) fn new() -> io::Result<Selector> {
            Ok(Selector {
                interests: Mutex::new(Vec::new()),
            })
        }

        pub(crate) fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut table = self.interests.lock().unwrap();
            if table.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::from_raw_os_error(17)); // EEXIST
            }
            table.push((fd, token, interest));
            Ok(())
        }

        pub(crate) fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut table = self.interests.lock().unwrap();
            match table.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(entry) => {
                    entry.1 = token;
                    entry.2 = interest;
                    Ok(())
                }
                None => Err(io::Error::from_raw_os_error(2)), // ENOENT
            }
        }

        pub(crate) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.interests.lock().unwrap();
            let before = table.len();
            table.retain(|(f, _, _)| *f != fd);
            if table.len() == before {
                return Err(io::Error::from_raw_os_error(2)); // ENOENT
            }
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let snapshot: Vec<(RawFd, Token, Interest)> = self.interests.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|(fd, _, interest)| PollFd {
                    fd: *fd,
                    events: {
                        let mut e = 0i16;
                        if interest.read {
                            e |= POLLIN;
                        }
                        if interest.write {
                            e |= POLLOUT;
                        }
                        e
                    },
                    revents: 0,
                })
                .collect();
            loop {
                let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
                if rc >= 0 {
                    break;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
            for (pfd, (_, token, _)) in fds.iter().zip(snapshot.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                let hangup = pfd.revents & (POLLERR | POLLHUP) != 0;
                out.push(Event {
                    token: *token,
                    readable: pfd.revents & POLLIN != 0 || hangup,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }
}
