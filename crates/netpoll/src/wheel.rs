//! A coarse timing wheel for idle-connection deadlines.
//!
//! The daemon arms a deadline whenever a connection has a partial COPS
//! frame buffered and disarms it when the frame completes; with tens of
//! thousands of connections both operations must be O(1). The wheel
//! buckets deadlines at tick granularity and cancels lazily: each
//! connection carries a generation counter, bumped on every re-arm or
//! disarm, and an expired entry whose recorded generation no longer
//! matches is simply dropped on pop. Stale entries therefore cost one
//! bucket slot until their tick passes — bounded by arm rate, not by
//! connection count.

/// A deadline entry: which connection, and the generation it was armed
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Armed {
    /// The caller's connection identifier.
    pub token: usize,
    /// Generation at arm time; compare against the connection's current
    /// generation to detect a stale (cancelled or re-armed) entry.
    pub generation: u64,
}

/// Bucketed deadline wheel; see the module docs for the cancellation
/// protocol.
pub struct DeadlineWheel {
    buckets: Vec<Vec<Armed>>,
    tick_ms: u64,
    /// The tick `buckets[cursor]` covers; deadlines at or before this
    /// tick are due.
    current_tick: u64,
    cursor: usize,
}

impl DeadlineWheel {
    /// Creates a wheel of `slots` buckets, each `tick_ms` wide. The
    /// horizon (`(slots - 1) * tick_ms`) caps how far ahead a deadline
    /// may be armed; farther delays clamp to the horizon. Size the
    /// wheel so the caller's one configured timeout fits:
    /// `slots >= timeout / tick + 2`.
    #[must_use]
    pub fn new(slots: usize, tick_ms: u64) -> DeadlineWheel {
        assert!(slots >= 2, "wheel needs at least 2 slots");
        assert!(tick_ms > 0, "tick must be positive");
        DeadlineWheel {
            buckets: (0..slots).map(|_| Vec::new()).collect(),
            tick_ms,
            current_tick: 0,
            cursor: 0,
        }
    }

    /// The wheel's horizon in milliseconds: the farthest future a
    /// deadline can be armed without clamping.
    #[must_use]
    pub fn horizon_ms(&self) -> u64 {
        (self.buckets.len() as u64 - 1) * self.tick_ms
    }

    /// Arms a deadline `delay_ms` from `now_ms`. Delays beyond the
    /// horizon clamp to it (the caller sized the wheel so its one
    /// configured timeout fits; see [`DeadlineWheel::new`]).
    pub fn arm(&mut self, now_ms: u64, delay_ms: u64, token: usize, generation: u64) {
        let delay = delay_ms.min(self.horizon_ms());
        let due_tick = (now_ms + delay)
            .div_ceil(self.tick_ms)
            .max(self.current_tick);
        let ahead = ((due_tick - self.current_tick) as usize).min(self.buckets.len() - 1);
        let slot = (self.cursor + ahead) % self.buckets.len();
        self.buckets[slot].push(Armed { token, generation });
    }

    /// Advances to `now_ms` and appends every entry whose tick has
    /// passed to `expired`. The caller filters stale generations.
    pub fn advance(&mut self, now_ms: u64, expired: &mut Vec<Armed>) {
        let target_tick = now_ms / self.tick_ms;
        while self.current_tick < target_tick {
            self.current_tick += 1;
            self.cursor = (self.cursor + 1) % self.buckets.len();
            expired.append(&mut self.buckets[self.cursor]);
        }
    }

    /// Total entries currently parked (including stale ones awaiting
    /// lazy drop).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// True when no entries are parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expires_at_the_right_tick_not_before() {
        let mut wheel = DeadlineWheel::new(64, 10);
        wheel.arm(0, 50, 1, 0);
        let mut expired = Vec::new();
        wheel.advance(40, &mut expired);
        assert!(expired.is_empty(), "deadline must not fire early");
        wheel.advance(60, &mut expired);
        assert_eq!(
            expired,
            vec![Armed {
                token: 1,
                generation: 0
            }]
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn generation_bump_marks_entry_stale() {
        let mut wheel = DeadlineWheel::new(64, 10);
        wheel.arm(0, 30, 5, 1);
        // The connection completed its frame: the caller bumps its
        // generation to 2 and (on the next partial frame) re-arms.
        wheel.arm(0, 80, 5, 2);
        let mut expired = Vec::new();
        wheel.advance(50, &mut expired);
        // The stale gen-1 entry pops but the caller's gen check (==2)
        // drops it.
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].generation, 1);
        expired.clear();
        wheel.advance(100, &mut expired);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].generation, 2);
    }

    #[test]
    fn same_tick_dereg_rereg_is_not_reaped_by_the_stale_deadline() {
        // The slot-reuse race the generation protocol exists for: a
        // connection with an armed deadline closes, and within the
        // same tick its slab slot is taken by a *new* connection that
        // arms its own deadline. Two entries for token 7 now sit in
        // the wheel; the stale one expires first and must not reap the
        // new connection.
        let mut wheel = DeadlineWheel::new(64, 10);
        // Old connection in slot 7, gen 1, deadline at ~10ms.
        wheel.arm(0, 10, 7, 1);
        // Same tick: the old conn closes (caller bumps the slot's gen)
        // and a new conn in the same slot arms at gen 2, deadline ~20ms.
        let slot_gen = 2u64;
        wheel.arm(0, 20, 7, slot_gen);

        let mut expired = Vec::new();
        wheel.advance(16, &mut expired);
        // Only the stale gen-1 entry has expired; the caller's
        // generation check refuses it, so the new connection survives.
        assert_eq!(
            expired,
            vec![Armed {
                token: 7,
                generation: 1
            }]
        );
        assert!(
            expired.iter().all(|a| a.generation != slot_gen),
            "the live connection's entry must not expire at the stale deadline"
        );
        expired.clear();

        // The new connection's own deadline still fires on schedule.
        wheel.advance(32, &mut expired);
        assert_eq!(
            expired,
            vec![Armed {
                token: 7,
                generation: slot_gen
            }]
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn delays_beyond_horizon_clamp_to_horizon() {
        let mut wheel = DeadlineWheel::new(4, 10); // horizon 30ms
        wheel.arm(0, 1_000_000, 9, 0);
        let mut expired = Vec::new();
        wheel.advance(30, &mut expired);
        assert_eq!(expired.len(), 1, "clamped to the horizon tick");
    }

    #[test]
    fn arm_after_advance_uses_current_cursor() {
        let mut wheel = DeadlineWheel::new(8, 10);
        let mut expired = Vec::new();
        wheel.advance(1000, &mut expired);
        assert!(expired.is_empty());
        wheel.arm(1000, 20, 3, 7);
        wheel.advance(1010, &mut expired);
        assert!(expired.is_empty());
        wheel.advance(1020, &mut expired);
        assert_eq!(
            expired,
            vec![Armed {
                token: 3,
                generation: 7
            }]
        );
    }

    #[test]
    fn many_entries_in_one_bucket_all_pop() {
        let mut wheel = DeadlineWheel::new(16, 5);
        for t in 0..100 {
            wheel.arm(0, 25, t, 0);
        }
        assert_eq!(wheel.len(), 100);
        let mut expired = Vec::new();
        wheel.advance(25, &mut expired);
        assert_eq!(expired.len(), 100);
        assert!(wheel.is_empty());
    }
}
