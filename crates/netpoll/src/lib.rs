//! `netpoll`: a minimal readiness layer for the broker daemon.
//!
//! Like the crates under `vendor/`, this is a deliberately small
//! in-tree stand-in — here for `mio`/`epoll` bindings — exposing
//! exactly the surface the daemon needs and nothing more:
//!
//! * [`Poller`] — fd registration and readiness waits. On Linux this is
//!   `epoll` in edge-triggered mode (one `epoll_wait` syscall returns
//!   every ready connection, so a pass over thousands of idle edges
//!   costs nothing); on other Unixes it falls back to level-triggered
//!   `poll(2)`. Consumers must drain reads until `WouldBlock` and flush
//!   writes until `WouldBlock` or empty — the discipline that makes
//!   edge- and level-triggered backends behave identically.
//! * [`Waker`] — a self-pipe (`UnixStream` pair) another thread can
//!   write to, waking a blocked [`Poller::wait`]. The daemon's shard
//!   workers use it to tell an event loop "this connection has replies
//!   queued".
//! * [`wheel::DeadlineWheel`] — a coarse timing wheel for
//!   idle-connection deadlines: O(1) arm/advance, lazy cancellation by
//!   generation counter.
//!
//! The crate speaks raw file descriptors ([`std::os::fd::RawFd`]); the
//! caller keeps ownership of its sockets and must deregister before
//! closing them (the epoll backend would otherwise keep a stale
//! interest entry until the kernel reaps the description).

#![warn(missing_docs)]
#![cfg(unix)]

pub mod wheel;

mod sys;

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Identifies a registered fd in readiness events; the caller picks the
/// value (typically an index into its connection table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// What readiness to watch a registration for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both read and write readiness.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: Token,
    /// The fd is readable (data, EOF, or a hangup to observe via read).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer closed or the fd errored; treat as readable (the read
    /// will surface the EOF/error) but never wait on it again.
    pub hangup: bool,
}

/// A readiness selector over registered fds.
///
/// Thread-safety: registration and waiting may happen from different
/// threads on the epoll backend (the kernel serializes), but the daemon
/// uses one owning loop thread per poller; the `poll(2)` fallback
/// requires `&mut self` for waits and keeps its interest table behind a
/// mutex so registration from other threads stays safe.
pub struct Poller {
    inner: sys::Selector,
}

impl Poller {
    /// Creates an empty selector.
    ///
    /// # Errors
    ///
    /// The underlying `epoll_create1` (or allocation) failure.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Selector::new()?,
        })
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    ///
    /// `EEXIST` when the fd is already registered, or any kernel
    /// failure.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Changes an existing registration's token or interest.
    ///
    /// # Errors
    ///
    /// `ENOENT` when the fd is not registered, or any kernel failure.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.inner.reregister(fd, token, interest)
    }

    /// Stops watching `fd`. Must happen before the fd is closed.
    ///
    /// # Errors
    ///
    /// `ENOENT` when the fd is not registered, or any kernel failure.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// lapses, or a [`Waker`] fires; clears `out` and fills it with the
    /// ready set. A `None` timeout blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Kernel failures other than `EINTR` (interrupts retry
    /// internally).
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        self.inner.wait(out, timeout)?;
        Ok(out.len())
    }
}

/// Wakes a [`Poller::wait`] from another thread: a nonblocking
/// self-pipe whose read half the owning loop registers like any other
/// fd.
pub struct Waker {
    read: UnixStream,
    write: UnixStream,
}

impl Waker {
    /// Creates the pipe pair, both halves nonblocking.
    ///
    /// # Errors
    ///
    /// Socketpair creation failure.
    pub fn new() -> io::Result<Waker> {
        let (read, write) = UnixStream::pair()?;
        read.set_nonblocking(true)?;
        write.set_nonblocking(true)?;
        Ok(Waker { read, write })
    }

    /// The fd to register (readable when the waker has fired).
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Wakes the loop. Cheap and idempotent: a full pipe already means
    /// a wake is pending, so `WouldBlock` is success.
    pub fn wake(&self) {
        let _ = (&self.write).write(&[1u8]);
    }

    /// Drains pending wake bytes; call on every wake event before
    /// processing, so coalesced wakes cannot be lost.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.read).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// A clonable handle other threads keep to fire this waker.
    ///
    /// # Errors
    ///
    /// fd duplication failure.
    pub fn handle(&self) -> io::Result<WakerHandle> {
        Ok(WakerHandle {
            write: self.write.try_clone()?,
        })
    }
}

/// A cheap clonable handle to a [`Waker`].
pub struct WakerHandle {
    write: UnixStream,
}

impl WakerHandle {
    /// Wakes the owning loop (see [`Waker::wake`]).
    pub fn wake(&self) {
        let _ = (&self.write).write(&[1u8]);
    }
}

impl Clone for WakerHandle {
    fn clone(&self) -> Self {
        WakerHandle {
            write: self.write.try_clone().expect("dup waker fd"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn readable_event_fires_for_pending_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), Token(7), Interest::READ)
            .unwrap();

        // Nothing pending yet: the wait must time out empty.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_unblocks_a_wait_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller
            .register(waker.fd(), Token(0), Interest::READ)
            .unwrap();
        let handle = waker.handle().unwrap();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            handle.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == Token(0) && e.readable));
        waker.drain();
        t.join().unwrap();

        // Drained: the next wait times out instead of spinning on the
        // stale wake byte.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn write_interest_reports_writable_and_reregister_narrows() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (_server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(client.as_raw_fd(), Token(3), Interest::BOTH)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == Token(3) && e.writable));

        // Narrow to read-only: an idle socket stops reporting writable.
        poller
            .reregister(client.as_raw_fd(), Token(3), Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        poller.deregister(client.as_raw_fd()).unwrap();
    }
}
