//! Journal records and their on-disk framing.
//!
//! The journal is a **command log of inputs**: every record captures a
//! state-mutating operation at the broker's serialized commit point,
//! with the explicit timestamp the live broker applied it at. Recovery
//! replays the same inputs in the same order through the same monolithic
//! `Broker::request`/`release`/`edge_buffer_empty`/`tick` entry points —
//! the two-phase pipeline's serial-equivalence property (a commit is
//! equivalent to a monolithic request at commit time) is precisely what
//! makes replaying the request, rather than the decided plan, correct.
//!
//! ## Frame format
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len B)  │
//! └────────────┴────────────┴──────────────────┘
//! ```
//!
//! `crc` is the CRC-32 of the payload (a [`crate::binfmt`]-serialized
//! record; legacy epochs carry JSON payloads, which the decoder detects
//! by the format byte and still reads). A frame
//! cut short by a crash mid-write is a **torn** frame: tolerated (and
//! discarded, with its byte count reported) at the very end of the last
//! journal of a recovery chain, a hard error anywhere else. A frame
//! whose payload is fully present but fails its checksum is corruption
//! and always a hard error — append-only writes tear by truncation, so
//! a bad checksum on a complete frame cannot be explained by a crash.

use serde::{Deserialize, Serialize};

use bb_core::FlowRequest;
use qos_units::Time;
use vtrs::packet::FlowId;

use crate::binfmt::Payload;
use crate::crc::crc32;

/// Frame header size: `len` + `crc`, both little-endian `u32`.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame's payload (sanity guard against
/// reading a corrupt length as an allocation size). Snapshot images of
/// very large MIBs are the biggest frames; 256 MiB is far beyond any of
/// them.
pub const MAX_FRAME_PAYLOAD: usize = 256 << 20;

/// One journaled state mutation, with the timestamp the live broker
/// applied it at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// An admission decided and committed (admits **and** rejects are
    /// journaled: rejections advance the broker's counters, and replay
    /// must reproduce those too). The request carries the shard-local
    /// path id, the form a committed plan records.
    Admit {
        /// Commit-time clock.
        now: Time,
        /// The admitted (or rejected) request.
        request: FlowRequest,
    },
    /// A successful flow release.
    Release {
        /// Commit-time clock.
        now: Time,
        /// The released flow's wire id.
        flow: FlowId,
    },
    /// An edge buffer-empty report for a macroflow.
    Report {
        /// Report-time clock.
        now: Time,
        /// The macroflow's wire id.
        macroflow: FlowId,
    },
    /// A contingency-timer sweep that was due (ticks with no pending
    /// expiry are state no-ops and are not journaled).
    Tick {
        /// Sweep-time clock.
        now: Time,
    },
}

impl WalRecord {
    /// The clock value the record was applied at.
    #[must_use]
    pub fn now(&self) -> Time {
        match self {
            WalRecord::Admit { now, .. }
            | WalRecord::Release { now, .. }
            | WalRecord::Report { now, .. }
            | WalRecord::Tick { now } => *now,
        }
    }
}

/// Appends one length-prefixed, checksummed frame to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    let len = u32::try_from(payload.len()).expect("frame payload fits u32");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serializes a record into one framed byte string, in the binary
/// format ([`crate::binfmt`]) — the write-path default since PR 6.
#[must_use]
pub fn encode_record<T: Payload>(record: &T) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    crate::binfmt::encode_payload(record, &mut payload);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    encode_frame(&payload, &mut out);
    out
}

/// Serializes a record into one framed byte string with a legacy JSON
/// payload — the format every epoch before PR 6 was written in. Kept so
/// mixed-epoch recovery (JSON snapshot or journal prefix + binary tail)
/// stays testable.
#[must_use]
pub fn encode_record_json<T: Serialize>(record: &T) -> Vec<u8> {
    let payload = serde::json::to_string(record);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    encode_frame(payload.as_bytes(), &mut out);
    out
}

/// Why a frame stream stopped short of a clean end-of-buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The final frame is incomplete — a crash tore the tail. Carries
    /// the byte offset the valid prefix ends at and how many trailing
    /// bytes the torn frame occupies.
    Torn {
        /// Offset of the first byte of the torn frame.
        offset: usize,
        /// Bytes from `offset` to the end of the buffer.
        trailing: usize,
    },
    /// A structurally invalid frame: checksum mismatch on a complete
    /// payload, an absurd length, or an undecodable record.
    Corrupt {
        /// Offset of the corrupt frame.
        offset: usize,
        /// What failed.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn { offset, trailing } => {
                write!(f, "torn frame at byte {offset} ({trailing} trailing bytes)")
            }
            FrameError::Corrupt { offset, detail } => {
                write!(f, "corrupt frame at byte {offset}: {detail}")
            }
        }
    }
}

/// Iterates frames of a buffer, yielding payload slices.
pub struct FrameCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameCursor<'a> {
    /// A cursor at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        FrameCursor { buf, pos: 0 }
    }

    /// Offset of the next unread byte — after a clean or torn stop,
    /// the length of the valid prefix.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// The next frame's payload: `Ok(None)` at a clean end of buffer.
    ///
    /// # Errors
    ///
    /// [`FrameError::Torn`] when the remaining bytes cannot hold the
    /// frame they start (crash-truncated tail); [`FrameError::Corrupt`]
    /// on a checksum mismatch or an implausible length.
    pub fn next_frame(&mut self) -> Result<Option<&'a [u8]>, FrameError> {
        let remaining = &self.buf[self.pos..];
        if remaining.is_empty() {
            return Ok(None);
        }
        if remaining.len() < FRAME_HEADER {
            return Err(FrameError::Torn {
                offset: self.pos,
                trailing: remaining.len(),
            });
        }
        let len = u32::from_le_bytes(remaining[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(remaining[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::Corrupt {
                offset: self.pos,
                detail: format!("frame length {len} exceeds the {MAX_FRAME_PAYLOAD}-byte bound"),
            });
        }
        if remaining.len() < FRAME_HEADER + len {
            return Err(FrameError::Torn {
                offset: self.pos,
                trailing: remaining.len(),
            });
        }
        let payload = &remaining[FRAME_HEADER..FRAME_HEADER + len];
        let actual = crc32(payload);
        if actual != crc {
            return Err(FrameError::Corrupt {
                offset: self.pos,
                detail: format!("checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"),
            });
        }
        self.pos += FRAME_HEADER + len;
        Ok(Some(payload))
    }
}

/// Decodes a frame payload into a record, dispatching on the format
/// byte: [`crate::binfmt::MAGIC`] (0xB1) selects the binary decoder,
/// anything else is treated as a legacy JSON epoch (JSON payloads start
/// with `{`, 0x7B).
///
/// # Errors
///
/// [`FrameError::Corrupt`] when the payload matches neither format
/// (`offset` is supplied by the caller for the error report).
pub fn decode_payload<T: Payload>(payload: &[u8], offset: usize) -> Result<T, FrameError> {
    if payload.first() == Some(&crate::binfmt::MAGIC) {
        return crate::binfmt::decode_payload(payload).map_err(|e| FrameError::Corrupt {
            offset,
            detail: e.to_string(),
        });
    }
    let text = std::str::from_utf8(payload).map_err(|e| FrameError::Corrupt {
        offset,
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    serde::json::from_str(text).map_err(|e| FrameError::Corrupt {
        offset,
        detail: format!("payload does not decode: {e:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(ns: u64) -> WalRecord {
        WalRecord::Tick {
            now: Time::from_nanos(ns),
        }
    }

    #[test]
    fn records_roundtrip_through_frames() {
        let records = vec![
            tick(1),
            WalRecord::Release {
                now: Time::from_nanos(2),
                flow: FlowId(77),
            },
            WalRecord::Report {
                now: Time::from_nanos(3),
                macroflow: FlowId(1 << 63),
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            buf.extend_from_slice(&encode_record(r));
        }
        let mut cursor = FrameCursor::new(&buf);
        let mut back = Vec::new();
        while let Some(payload) = cursor.next_frame().unwrap() {
            back.push(decode_payload::<WalRecord>(payload, 0).unwrap());
        }
        assert_eq!(back, records);
        assert_eq!(cursor.offset(), buf.len());
    }

    #[test]
    fn truncation_is_torn_not_corrupt() {
        let mut buf = encode_record(&tick(9));
        buf.extend_from_slice(&encode_record(&tick(10)));
        let first_len = encode_record(&tick(9)).len();
        // A cut exactly at the boundary is a clean EOF; every cut
        // strictly inside the second frame must read as torn.
        for cut in first_len + 1..buf.len() {
            let mut cursor = FrameCursor::new(&buf[..cut]);
            assert!(cursor.next_frame().unwrap().is_some());
            match cursor.next_frame() {
                Err(FrameError::Torn { offset, .. }) => assert_eq!(offset, first_len),
                other => panic!("cut at {cut}: expected torn tail, got {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let mut buf = encode_record(&tick(9));
        let payload_byte = FRAME_HEADER + 2;
        buf[payload_byte] ^= 0x40;
        let mut cursor = FrameCursor::new(&buf);
        assert!(matches!(
            cursor.next_frame(),
            Err(FrameError::Corrupt { offset: 0, .. })
        ));
    }
}
