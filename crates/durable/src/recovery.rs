//! Recovery: what a journal chain yields, and how it is replayed.

use bb_core::persist::BrokerImage;
use bb_core::BrokerShard;
use qos_units::Time;

use crate::record::WalRecord;

/// Everything [`crate::ShardStore::open`] recovered from a data
/// directory: the latest valid snapshot (if any) and the complete
/// journal records that follow it, in append order.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The latest valid snapshot image, `None` on a fresh directory.
    pub image: Option<BrokerImage>,
    /// Epoch of that snapshot.
    pub snapshot_epoch: Option<u64>,
    /// Journal records after the snapshot, in order.
    pub records: Vec<WalRecord>,
    /// Bytes of a torn final record discarded from the last journal.
    pub discarded_tail_bytes: u64,
    /// The latest clock value the recovered state observed (snapshot
    /// capture time or last record, whichever is later) — restart the
    /// server clock at or past this so replayed timers stay monotone.
    pub max_now: Option<Time>,
    /// Human-readable notes (torn-tail discards and the like) for the
    /// recovering process to log.
    pub notes: Vec<String>,
}

impl RecoveryOutcome {
    /// Number of journal records to replay.
    #[must_use]
    pub fn replayed_records(&self) -> u64 {
        self.records.len() as u64
    }

    /// Whether the directory held any prior state at all.
    #[must_use]
    pub fn is_fresh(&self) -> bool {
        self.image.is_none() && self.records.is_empty()
    }
}

/// What [`replay`] applied to a shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Admission records replayed (admits and journaled rejects).
    pub admissions: u64,
    /// Release records replayed.
    pub releases: u64,
    /// Edge buffer-empty reports replayed.
    pub reports: u64,
    /// Contingency-timer sweeps replayed.
    pub ticks: u64,
}

impl ReplaySummary {
    /// Total records replayed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.admissions + self.releases + self.reports + self.ticks
    }
}

/// Rebuilds a freshly constructed shard to the recovered state:
/// restores the snapshot image (when present), then replays the journal
/// tail through the shard's monolithic entry points. The shard must
/// have been built over the same topology, routes, and configuration as
/// the one that wrote the journal.
///
/// Replayed outcomes are not surfaced: a journaled rejection replays as
/// the same rejection, and a journaled release of a flow the snapshot
/// already forgot replays as a no-op — both by the serial-equivalence
/// argument that makes command-log replay sound.
pub fn replay(shard: &mut BrokerShard, outcome: &RecoveryOutcome) -> ReplaySummary {
    if let Some(image) = &outcome.image {
        shard.restore_image(image);
    }
    let mut summary = ReplaySummary::default();
    for rec in &outcome.records {
        apply_record(shard, rec, &mut summary);
    }
    summary
}

/// Applies one journal record to a shard through its monolithic entry
/// points — the unit step of [`replay`], also driven record-at-a-time
/// by a warm standby tailing a primary's shipped journal stream. The
/// same serial-equivalence argument covers both: the record carries the
/// clock value the primary committed under, so the standby's image
/// tracks the primary's exactly.
pub fn apply_record(shard: &mut BrokerShard, rec: &WalRecord, summary: &mut ReplaySummary) {
    match rec {
        WalRecord::Admit { now, request } => {
            let _ = shard.replay_request(*now, request);
            summary.admissions += 1;
        }
        WalRecord::Release { now, flow } => {
            let _ = shard.release(*now, *flow);
            summary.releases += 1;
        }
        WalRecord::Report { now, macroflow } => {
            let _ = shard.edge_buffer_empty(*now, *macroflow);
            summary.reports += 1;
        }
        WalRecord::Tick { now } => {
            let _ = shard.tick(*now);
            summary.ticks += 1;
        }
    }
}
