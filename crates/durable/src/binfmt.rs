//! Compact binary payload codec for journal records and snapshots.
//!
//! PR 5 made JSON recovery linear-time; this module removes JSON from
//! the durable write path altogether. Payloads are length-delimited by
//! the frame layer ([`crate::record`]) — inside a frame, the binary
//! form is:
//!
//! ```text
//! ┌──────┬──────┬───────────────────────────────┐
//! │ 0xB1 │ tag  │ body (type-specific fields)   │
//! └──────┴──────┴───────────────────────────────┘
//! ```
//!
//! `0xB1` is the format magic: JSON payloads begin with `{` (0x7B), so
//! the first byte alone tells recovery which decoder a legacy or
//! current epoch needs. `tag` names the payload type
//! ([`WalRecord`] = 1, [`SnapMeta`] = 2, [`BrokerImage`] = 3), catching
//! a snapshot frame fed to the journal decoder (or vice versa) as
//! corruption rather than misinterpretation.
//!
//! Bodies use two primitive encodings:
//!
//! * **LEB128 varints** for ids, counts, rates, and timestamps — the
//!   values that dominate journal traffic and compress well (a small
//!   flow id costs one byte instead of JSON's quoted decimal).
//! * **Fixed little-endian `u64`** for high-entropy words where a
//!   varint would pessimize: the `(hi, lo)` halves of 128-bit EDF
//!   aggregates and `Handle::to_bits` images (generation ‖ index).
//!
//! Dense-store rows (arena slots, free lists, the macro registry)
//! serialize as contiguous length-prefixed arrays in slot order, so a
//! snapshot body mirrors the arena layout it captures.
//!
//! Decoding is strict: truncated bodies, unknown tags, and trailing
//! bytes are all [`BinError`]s, surfaced by the frame layer as
//! [`crate::record::FrameError::Corrupt`] — the checksum already
//! passed, so a malformed body is real corruption, never a torn write.

use serde::{Deserialize, Serialize};

use bb_core::broker::BrokerStats;
use bb_core::contingency::Grant;
use bb_core::persist::{
    BrokerImage, EdfEntryImage, FlowRecordImage, FlowServiceImage, FlowSlotImage, LinkImage,
    MacroImage, MacroSlotImage,
};
use bb_core::{FlowRequest, PathId, ServiceKind};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use crate::record::WalRecord;
use crate::store::SnapMeta;

/// First byte of every binary payload. JSON payloads start with `{`
/// (0x7B), so this byte alone discriminates the two formats.
pub const MAGIC: u8 = 0xB1;

/// A binary-payload decode failure; converted to
/// [`crate::record::FrameError::Corrupt`] at the frame layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The body ended before a field completed.
    Truncated {
        /// Byte offset within the payload where input ran out.
        at: usize,
    },
    /// A tag byte (payload type, enum variant, option) had no meaning.
    BadTag {
        /// Byte offset of the tag.
        at: usize,
        /// The unrecognized value.
        tag: u8,
    },
    /// The payload-type tag named a different type than the decoder.
    WrongType {
        /// The decoder's expected tag.
        expected: u8,
        /// The tag found.
        found: u8,
    },
    /// A varint ran past 10 bytes (no `u64` does).
    VarintOverflow {
        /// Byte offset where the varint began.
        at: usize,
    },
    /// The body decoded completely but bytes remain.
    Trailing {
        /// Offset of the first unconsumed byte.
        at: usize,
        /// How many bytes remain.
        remaining: usize,
    },
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Truncated { at } => write!(f, "binary payload truncated at byte {at}"),
            BinError::BadTag { at, tag } => {
                write!(f, "binary payload has unknown tag {tag:#04x} at byte {at}")
            }
            BinError::WrongType { expected, found } => write!(
                f,
                "binary payload type tag {found:#04x} where {expected:#04x} was expected"
            ),
            BinError::VarintOverflow { at } => {
                write!(f, "binary payload varint overflows u64 at byte {at}")
            }
            BinError::Trailing { at, remaining } => write!(
                f,
                "binary payload has {remaining} trailing bytes at offset {at}"
            ),
        }
    }
}

/// A type the durable layer can frame: binary on the write path, with
/// serde JSON (the supertraits) kept for reading legacy epochs.
pub trait Payload: Serialize + Deserialize {
    /// The payload-type tag written after [`MAGIC`].
    const TAG: u8;
    /// Appends the body (everything after magic + tag) to `out`.
    fn encode_body(&self, out: &mut Vec<u8>);
    /// Decodes the body; the caller checks for trailing bytes.
    ///
    /// # Errors
    ///
    /// Any [`BinError`] the body surfaces.
    fn decode_body(r: &mut Reader<'_>) -> Result<Self, BinError>;
}

/// Encodes `v` as a complete binary payload (magic, tag, body).
pub fn encode_payload<T: Payload>(v: &T, out: &mut Vec<u8>) {
    out.push(MAGIC);
    out.push(T::TAG);
    v.encode_body(out);
}

/// Decodes a complete binary payload, enforcing magic, type tag, and
/// full consumption.
///
/// # Errors
///
/// [`BinError`] on any structural mismatch.
pub fn decode_payload<T: Payload>(payload: &[u8]) -> Result<T, BinError> {
    let mut r = Reader::new(payload);
    let magic = r.u8()?;
    if magic != MAGIC {
        return Err(BinError::BadTag { at: 0, tag: magic });
    }
    let tag = r.u8()?;
    if tag != T::TAG {
        return Err(BinError::WrongType {
            expected: T::TAG,
            found: tag,
        });
    }
    let v = T::decode_body(&mut r)?;
    r.finish()?;
    Ok(v)
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// Appends a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a fixed little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Sequential reader over a binary payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// One byte.
    ///
    /// # Errors
    ///
    /// [`BinError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(BinError::Truncated { at: self.pos })?;
        self.pos += 1;
        Ok(b)
    }

    /// A LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`BinError::Truncated`] or [`BinError::VarintOverflow`].
    pub fn varint(&mut self) -> Result<u64, BinError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(BinError::VarintOverflow { at: start });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(BinError::VarintOverflow { at: start });
            }
        }
    }

    /// A fixed little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`BinError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, BinError> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(BinError::Truncated { at: self.pos })?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Asserts the payload is fully consumed.
    ///
    /// # Errors
    ///
    /// [`BinError::Trailing`] when bytes remain.
    pub fn finish(&self) -> Result<(), BinError> {
        let remaining = self.buf.len() - self.pos;
        if remaining != 0 {
            return Err(BinError::Trailing {
                at: self.pos,
                remaining,
            });
        }
        Ok(())
    }

    /// A length-prefixed count, sanity-bounded against the bytes that
    /// remain (each element costs at least `min_bytes`), so a corrupt
    /// count cannot become a huge allocation.
    ///
    /// # Errors
    ///
    /// [`BinError::Truncated`] when the count cannot fit the input.
    pub fn count(&mut self, min_bytes: usize) -> Result<usize, BinError> {
        let at = self.pos;
        let n = self.varint()? as usize;
        if n.saturating_mul(min_bytes.max(1)) > self.buf.len() - self.pos {
            return Err(BinError::Truncated { at });
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Composite field helpers
// ---------------------------------------------------------------------

fn put_profile(out: &mut Vec<u8>, p: &TrafficProfile) {
    put_varint(out, p.sigma.as_bits());
    put_varint(out, p.rho.as_bps());
    put_varint(out, p.peak.as_bps());
    put_varint(out, p.l_max.as_bits());
}

fn get_profile(r: &mut Reader<'_>) -> Result<TrafficProfile, BinError> {
    Ok(TrafficProfile {
        sigma: Bits::from_bits(r.varint()?),
        rho: Rate::from_bps(r.varint()?),
        peak: Rate::from_bps(r.varint()?),
        l_max: Bits::from_bits(r.varint()?),
    })
}

fn put_request(out: &mut Vec<u8>, req: &FlowRequest) {
    put_varint(out, req.flow.0);
    put_profile(out, &req.profile);
    put_varint(out, req.d_req.as_nanos());
    match req.service {
        ServiceKind::PerFlow => out.push(0),
        ServiceKind::Class(c) => {
            out.push(1);
            put_varint(out, u64::from(c));
        }
    }
    put_varint(out, req.path.0);
}

fn get_request(r: &mut Reader<'_>) -> Result<FlowRequest, BinError> {
    let flow = FlowId(r.varint()?);
    let profile = get_profile(r)?;
    let d_req = Nanos::from_nanos(r.varint()?);
    let at = r.pos;
    let service = match r.u8()? {
        0 => ServiceKind::PerFlow,
        1 => ServiceKind::Class(r.varint()? as u32),
        tag => return Err(BinError::BadTag { at, tag }),
    };
    let path = PathId(r.varint()?);
    Ok(FlowRequest {
        flow,
        profile,
        d_req,
        service,
        path,
    })
}

fn put_grant(out: &mut Vec<u8>, g: &Grant) {
    put_varint(out, g.amount.as_bps());
    put_varint(out, g.granted_at.as_nanos());
    match g.expires {
        None => out.push(0),
        Some(t) => {
            out.push(1);
            put_varint(out, t.as_nanos());
        }
    }
}

fn get_grant(r: &mut Reader<'_>) -> Result<Grant, BinError> {
    let amount = Rate::from_bps(r.varint()?);
    let granted_at = Time::from_nanos(r.varint()?);
    let at = r.pos;
    let expires = match r.u8()? {
        0 => None,
        1 => Some(Time::from_nanos(r.varint()?)),
        tag => return Err(BinError::BadTag { at, tag }),
    };
    Ok(Grant {
        amount,
        granted_at,
        expires,
    })
}

fn put_flow_record(out: &mut Vec<u8>, rec: &FlowRecordImage) {
    put_profile(out, &rec.profile);
    put_varint(out, rec.d_req.as_nanos());
    put_varint(out, rec.path.0);
    match rec.service {
        FlowServiceImage::PerFlow { rate, delay } => {
            out.push(0);
            put_varint(out, rate.as_bps());
            put_varint(out, delay.as_nanos());
        }
        FlowServiceImage::ClassMember { macroflow } => {
            out.push(1);
            put_u64(out, macroflow);
        }
    }
}

fn get_flow_record(r: &mut Reader<'_>) -> Result<FlowRecordImage, BinError> {
    let profile = get_profile(r)?;
    let d_req = Nanos::from_nanos(r.varint()?);
    let path = PathId(r.varint()?);
    let at = r.pos;
    let service = match r.u8()? {
        0 => FlowServiceImage::PerFlow {
            rate: Rate::from_bps(r.varint()?),
            delay: Nanos::from_nanos(r.varint()?),
        },
        1 => FlowServiceImage::ClassMember {
            macroflow: r.u64()?,
        },
        tag => return Err(BinError::BadTag { at, tag }),
    };
    Ok(FlowRecordImage {
        profile,
        d_req,
        path,
        service,
    })
}

fn put_free_list(out: &mut Vec<u8>, free: &[u32]) {
    put_varint(out, free.len() as u64);
    for &idx in free {
        put_varint(out, u64::from(idx));
    }
}

fn get_free_list(r: &mut Reader<'_>) -> Result<Vec<u32>, BinError> {
    let n = r.count(1)?;
    let mut free = Vec::with_capacity(n);
    for _ in 0..n {
        free.push(r.varint()? as u32);
    }
    Ok(free)
}

// ---------------------------------------------------------------------
// Payload impls
// ---------------------------------------------------------------------

impl Payload for WalRecord {
    const TAG: u8 = 1;

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Admit { now, request } => {
                out.push(0);
                put_varint(out, now.as_nanos());
                put_request(out, request);
            }
            WalRecord::Release { now, flow } => {
                out.push(1);
                put_varint(out, now.as_nanos());
                put_varint(out, flow.0);
            }
            WalRecord::Report { now, macroflow } => {
                out.push(2);
                put_varint(out, now.as_nanos());
                put_varint(out, macroflow.0);
            }
            WalRecord::Tick { now } => {
                out.push(3);
                put_varint(out, now.as_nanos());
            }
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, BinError> {
        let at = r.pos;
        let variant = r.u8()?;
        let now = Time::from_nanos(r.varint()?);
        Ok(match variant {
            0 => WalRecord::Admit {
                now,
                request: get_request(r)?,
            },
            1 => WalRecord::Release {
                now,
                flow: FlowId(r.varint()?),
            },
            2 => WalRecord::Report {
                now,
                macroflow: FlowId(r.varint()?),
            },
            3 => WalRecord::Tick { now },
            tag => return Err(BinError::BadTag { at, tag }),
        })
    }
}

impl Payload for SnapMeta {
    const TAG: u8 = 2;

    fn encode_body(&self, out: &mut Vec<u8>) {
        put_varint(out, self.epoch);
        put_varint(out, self.as_of.as_nanos());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, BinError> {
        Ok(SnapMeta {
            epoch: r.varint()?,
            as_of: Time::from_nanos(r.varint()?),
        })
    }
}

impl Payload for BrokerImage {
    const TAG: u8 = 3;

    fn encode_body(&self, out: &mut Vec<u8>) {
        put_varint(out, self.links.len() as u64);
        for link in &self.links {
            put_varint(out, link.reserved.as_bps());
            put_varint(out, link.edf.len() as u64);
            for e in &link.edf {
                put_varint(out, e.delay.as_nanos());
                put_varint(out, e.rate.as_bps());
                put_u64(out, e.rate_delay_hi);
                put_u64(out, e.rate_delay_lo);
                put_u64(out, e.lmax_hi);
                put_u64(out, e.lmax_lo);
                put_varint(out, e.count);
            }
        }
        put_varint(out, self.flow_slots.len() as u64);
        for slot in &self.flow_slots {
            match slot {
                FlowSlotImage::Vacant { next_generation } => {
                    out.push(0);
                    put_varint(out, u64::from(*next_generation));
                }
                FlowSlotImage::Occupied {
                    generation,
                    flow,
                    record,
                } => {
                    out.push(1);
                    put_varint(out, u64::from(*generation));
                    put_varint(out, *flow);
                    put_flow_record(out, record);
                }
            }
        }
        put_free_list(out, &self.flow_free);
        put_varint(out, self.macro_slots.len() as u64);
        for slot in &self.macro_slots {
            match slot {
                MacroSlotImage::Vacant { next_generation } => {
                    out.push(0);
                    put_varint(out, u64::from(*next_generation));
                }
                MacroSlotImage::Occupied { generation, state } => {
                    out.push(1);
                    put_varint(out, u64::from(*generation));
                    put_varint(out, state.id);
                    put_varint(out, u64::from(state.class));
                    put_varint(out, state.path.0);
                    put_profile(out, &state.profile);
                    put_varint(out, state.reserved.as_bps());
                    put_varint(out, state.members);
                    put_varint(out, state.grants.len() as u64);
                    for g in &state.grants {
                        put_grant(out, g);
                    }
                    out.push(u8::from(state.dissolving));
                }
            }
        }
        put_free_list(out, &self.macro_free);
        put_varint(out, self.macro_registry.len() as u64);
        for entry in &self.macro_registry {
            match entry {
                None => out.push(0),
                Some(bits) => {
                    out.push(1);
                    put_u64(out, *bits);
                }
            }
        }
        put_varint(out, self.next_macro);
        let s = &self.stats;
        for field in [
            s.requested,
            s.admitted,
            s.rejected_policy,
            s.rejected_delay,
            s.rejected_bandwidth,
            s.rejected_sched,
            s.rejected_unknown_class,
            s.rejected_duplicate,
            s.released,
            s.grants,
            s.grant_expiries,
            s.grant_resets,
            s.plan_retries,
            s.plan_aborts,
        ] {
            put_varint(out, field);
        }
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, BinError> {
        let n_links = r.count(2)?;
        let mut links = Vec::with_capacity(n_links);
        for _ in 0..n_links {
            let reserved = Rate::from_bps(r.varint()?);
            let n_edf = r.count(35)?;
            let mut edf = Vec::with_capacity(n_edf);
            for _ in 0..n_edf {
                edf.push(EdfEntryImage {
                    delay: Nanos::from_nanos(r.varint()?),
                    rate: Rate::from_bps(r.varint()?),
                    rate_delay_hi: r.u64()?,
                    rate_delay_lo: r.u64()?,
                    lmax_hi: r.u64()?,
                    lmax_lo: r.u64()?,
                    count: r.varint()?,
                });
            }
            links.push(LinkImage { reserved, edf });
        }
        let n_flows = r.count(2)?;
        let mut flow_slots = Vec::with_capacity(n_flows);
        for _ in 0..n_flows {
            let at = r.pos;
            flow_slots.push(match r.u8()? {
                0 => FlowSlotImage::Vacant {
                    next_generation: r.varint()? as u32,
                },
                1 => FlowSlotImage::Occupied {
                    generation: r.varint()? as u32,
                    flow: r.varint()?,
                    record: get_flow_record(r)?,
                },
                tag => return Err(BinError::BadTag { at, tag }),
            });
        }
        let flow_free = get_free_list(r)?;
        let n_macros = r.count(2)?;
        let mut macro_slots = Vec::with_capacity(n_macros);
        for _ in 0..n_macros {
            let at = r.pos;
            macro_slots.push(match r.u8()? {
                0 => MacroSlotImage::Vacant {
                    next_generation: r.varint()? as u32,
                },
                1 => {
                    let generation = r.varint()? as u32;
                    let id = r.varint()?;
                    let class = r.varint()? as u32;
                    let path = PathId(r.varint()?);
                    let profile = get_profile(r)?;
                    let reserved = Rate::from_bps(r.varint()?);
                    let members = r.varint()?;
                    let n_grants = r.count(3)?;
                    let mut grants = Vec::with_capacity(n_grants);
                    for _ in 0..n_grants {
                        grants.push(get_grant(r)?);
                    }
                    let dissolving = match r.u8()? {
                        0 => false,
                        1 => true,
                        tag => return Err(BinError::BadTag { at: r.pos - 1, tag }),
                    };
                    MacroSlotImage::Occupied {
                        generation,
                        state: MacroImage {
                            id,
                            class,
                            path,
                            profile,
                            reserved,
                            members,
                            grants,
                            dissolving,
                        },
                    }
                }
                tag => return Err(BinError::BadTag { at, tag }),
            });
        }
        let macro_free = get_free_list(r)?;
        let n_registry = r.count(1)?;
        let mut macro_registry = Vec::with_capacity(n_registry);
        for _ in 0..n_registry {
            let at = r.pos;
            macro_registry.push(match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                tag => return Err(BinError::BadTag { at, tag }),
            });
        }
        let next_macro = r.varint()?;
        let stats = BrokerStats {
            requested: r.varint()?,
            admitted: r.varint()?,
            rejected_policy: r.varint()?,
            rejected_delay: r.varint()?,
            rejected_bandwidth: r.varint()?,
            rejected_sched: r.varint()?,
            rejected_unknown_class: r.varint()?,
            rejected_duplicate: r.varint()?,
            released: r.varint()?,
            grants: r.varint()?,
            grant_expiries: r.varint()?,
            grant_resets: r.varint()?,
            plan_retries: r.varint()?,
            plan_aborts: r.varint()?,
        };
        Ok(BrokerImage {
            links,
            flow_slots,
            flow_free,
            macro_slots,
            macro_free,
            macro_registry,
            next_macro,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn varint_overflow_is_an_error_not_a_wrap() {
        // 11 continuation bytes can't encode any u64.
        let buf = [0xff; 11];
        let mut r = Reader::new(&buf);
        assert!(matches!(r.varint(), Err(BinError::VarintOverflow { .. })));
    }

    #[test]
    fn wal_record_binary_is_smaller_than_json() {
        let rec = WalRecord::Admit {
            now: Time::from_nanos(1_234_567),
            request: FlowRequest {
                flow: FlowId(42),
                profile: TrafficProfile {
                    sigma: Bits::from_bits(25_600),
                    rho: Rate::from_bps(64_000),
                    peak: Rate::from_bps(256_000),
                    l_max: Bits::from_bits(12_800),
                },
                d_req: Nanos::from_millis(2_440),
                service: ServiceKind::Class(0),
                path: PathId(7),
            },
        };
        let mut bin = Vec::new();
        encode_payload(&rec, &mut bin);
        let json = serde::json::to_string(&rec);
        assert!(
            bin.len() * 3 < json.len(),
            "binary {}B should be well under a third of JSON {}B",
            bin.len(),
            json.len()
        );
        assert_eq!(decode_payload::<WalRecord>(&bin).unwrap(), rec);
    }

    #[test]
    fn type_tag_mismatch_is_detected() {
        let meta = SnapMeta {
            epoch: 3,
            as_of: Time::from_nanos(99),
        };
        let mut buf = Vec::new();
        encode_payload(&meta, &mut buf);
        assert!(matches!(
            decode_payload::<WalRecord>(&buf),
            Err(BinError::WrongType {
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut buf = Vec::new();
        encode_payload(
            &WalRecord::Tick {
                now: Time::from_nanos(5),
            },
            &mut buf,
        );
        buf.push(0);
        assert!(matches!(
            decode_payload::<WalRecord>(&buf),
            Err(BinError::Trailing { .. })
        ));
    }

    #[test]
    fn every_truncation_of_a_snapshot_body_errors() {
        let image = BrokerImage {
            links: vec![LinkImage {
                reserved: Rate::from_bps(1_500_000),
                edf: vec![EdfEntryImage {
                    delay: Nanos::from_millis(100),
                    rate: Rate::from_bps(64_000),
                    rate_delay_hi: 1,
                    rate_delay_lo: u64::MAX,
                    lmax_hi: 0,
                    lmax_lo: 12_800_000_000_000,
                    count: 2,
                }],
            }],
            flow_slots: vec![
                FlowSlotImage::Occupied {
                    generation: 1,
                    flow: 9,
                    record: FlowRecordImage {
                        profile: TrafficProfile {
                            sigma: Bits::from_bits(25_600),
                            rho: Rate::from_bps(64_000),
                            peak: Rate::from_bps(256_000),
                            l_max: Bits::from_bits(12_800),
                        },
                        d_req: Nanos::from_millis(2_440),
                        path: PathId(0),
                        service: FlowServiceImage::ClassMember {
                            macroflow: (3u64 << 32) | 1,
                        },
                    },
                },
                FlowSlotImage::Vacant { next_generation: 4 },
            ],
            flow_free: vec![1],
            macro_slots: vec![MacroSlotImage::Occupied {
                generation: 3,
                state: MacroImage {
                    id: 1 << 33,
                    class: 0,
                    path: PathId(0),
                    profile: TrafficProfile {
                        sigma: Bits::from_bits(25_600),
                        rho: Rate::from_bps(64_000),
                        peak: Rate::from_bps(256_000),
                        l_max: Bits::from_bits(12_800),
                    },
                    reserved: Rate::from_bps(128_000),
                    members: 2,
                    grants: vec![Grant {
                        amount: Rate::from_bps(192_000),
                        granted_at: Time::from_nanos(50),
                        expires: Some(Time::from_nanos(1_000_050)),
                    }],
                    dissolving: false,
                },
            }],
            macro_free: vec![],
            macro_registry: vec![Some(3u64 << 32), None],
            next_macro: (1 << 33) + 2,
            stats: BrokerStats {
                requested: 10,
                admitted: 8,
                ..BrokerStats::default()
            },
        };
        let mut buf = Vec::new();
        encode_payload(&image, &mut buf);
        assert_eq!(decode_payload::<BrokerImage>(&buf).unwrap(), image);
        for cut in 0..buf.len() {
            assert!(
                decode_payload::<BrokerImage>(&buf[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }
}
