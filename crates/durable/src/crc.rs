//! CRC-32 (IEEE 802.3 polynomial) for journal and snapshot framing.
//!
//! Hand-rolled table-driven implementation — the workspace is fully
//! self-contained (no crates-registry access), and a 256-entry table is
//! all a record-integrity check needs. This is the reflected CRC-32
//! every `cksum`-family tool speaks (polynomial `0xEDB88320`, initial
//! value and final XOR `0xFFFF_FFFF`), so journal frames can be
//! cross-checked with standard tooling.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data`.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the ASCII digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"journal record payload");
        let mut flipped = b"journal record payload".to_vec();
        flipped[5] ^= 0x01;
        assert_ne!(crc32(&flipped), base);
    }
}
