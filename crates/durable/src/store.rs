//! The per-shard durable store: epoch-numbered journals + snapshots.
//!
//! ## Directory layout
//!
//! One directory per broker shard, holding files of two kinds:
//!
//! ```text
//! snap-<E>.img   state image at the *start* of epoch E
//! wal-<E>.log    commit journal of epoch E (records after snap-<E>)
//! ```
//!
//! The invariant recovery relies on: `snap-<E>` plus the journals
//! `wal-<E>, wal-<E+1>, …` replayed in order reconstruct the live
//! state. Rotation (a periodic snapshot) seals the current journal,
//! advances the epoch, writes the new snapshot **atomically**
//! (temp-file + fsync + rename + directory fsync), creates the new
//! journal, and only then garbage-collects everything older — so a
//! crash at any point leaves at least one complete snapshot-plus-chain
//! on disk.
//!
//! ## Group commit
//!
//! [`ShardStore::append`] buffers into the journal's `BufWriter` and
//! returns without syncing — the commit hot path pays a memcpy, not an
//! fsync. A flusher (the daemon runs one thread for all shards) calls
//! [`ShardStore::flush`] every `--wal-flush-ms`, paying one fsync for
//! the whole batch. The durability contract is therefore
//! *bounded-loss*: a crash can drop at most the last flush interval's
//! records, which land on disk as a torn tail the next recovery
//! discards (and reports).
//!
//! ## Recovery
//!
//! [`ShardStore::open`] never appends to an old journal: it reads the
//! latest snapshot and its journal chain into a
//! [`RecoveryOutcome`], then positions the store at a **new** epoch.
//! The caller replays the outcome into its broker and calls
//! [`ShardStore::commit_recovery`] with the recovered image, which
//! writes the new epoch's snapshot and retires the old chain. Until
//! that call, nothing on disk is modified (stray `*.tmp` files from an
//! interrupted snapshot aside) — a crash loop cannot eat state.

use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use bb_core::persist::BrokerImage;
use qos_units::Time;

use crate::record::{decode_payload, encode_record, FrameCursor, FrameError, WalRecord};
use crate::recovery::RecoveryOutcome;

/// Journal file name for an epoch.
#[must_use]
pub fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

/// Snapshot file name for an epoch.
#[must_use]
pub fn snap_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("snap-{epoch}.img"))
}

/// Snapshot header frame: identifies the epoch and the clock value the
/// image was captured at (so a restarted server can resume its clock
/// past every timer the image carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapMeta {
    /// Epoch this snapshot starts.
    pub epoch: u64,
    /// Clock value at capture.
    pub as_of: Time,
}

/// A durable-store failure.
#[derive(Debug)]
pub enum DurableError {
    /// An I/O operation failed.
    Io {
        /// File or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A journal or snapshot frame is structurally invalid — checksum
    /// mismatch, undecodable payload, or a torn record somewhere torn
    /// records cannot legitimately occur (mid-chain).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// The frame-level failure.
        error: FrameError,
    },
    /// The journal chain has a gap: an epoch between the snapshot and
    /// the newest journal has no file.
    MissingJournal {
        /// The absent file.
        path: PathBuf,
    },
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            DurableError::Corrupt { path, error } => write!(f, "{}: {error}", path.display()),
            DurableError::MissingJournal { path } => {
                write!(f, "{}: journal missing from recovery chain", path.display())
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl DurableError {
    fn io(path: &Path, source: std::io::Error) -> Self {
        DurableError::Io {
            path: path.to_path_buf(),
            source,
        }
    }
}

/// Where in the journal an append landed: the epoch it belongs to and
/// the journal's byte length once the record was written. A replication
/// ack naming `(epoch, end_offset)` covers this record iff its epoch is
/// later, or equal with an offset at or past `end_offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WalPosition {
    /// Journal epoch the record was appended to.
    pub epoch: u64,
    /// Journal bytes up to and including this record.
    pub end_offset: u64,
}

/// The fan-out seam on the committed-record path: every frame appended
/// to the local journal is also offered, byte-identical and in append
/// order, to an attached sink — the hook an outbound replication stream
/// hangs off. Callbacks run under the store's internal mutex, so a sink
/// observes a total order consistent with the journal; implementations
/// must therefore only do cheap, non-blocking work (queue bytes and
/// return).
pub trait LogSink: Send + Sync {
    /// One record appended: the encoded WAL `frame` now ends at `pos`.
    fn record(&self, pos: WalPosition, frame: &[u8]);
    /// The journal rotated into `epoch`; offsets restart at zero. The
    /// rotation snapshot is *not* shipped: a sink attached since
    /// bootstrap has already applied every record the snapshot folds in.
    fn rotate(&self, epoch: u64);
}

/// What [`ShardStore::attach_sink`] hands the bootstrap closure: the
/// bytes a cold replica needs to reach the exact journal position the
/// sink will stream from. Borrowed, because the closure runs inside the
/// store's critical section — ship (enqueue) and return.
pub struct SinkBootstrap<'a> {
    /// The current journal epoch.
    pub epoch: u64,
    /// Raw contents of this epoch's snapshot file (`snap-<E>.img`):
    /// a [`SnapMeta`] frame followed by a [`BrokerImage`] frame —
    /// decode with [`decode_snapshot`].
    pub snapshot: &'a [u8],
    /// This epoch's journal prefix: every record appended so far, as
    /// raw WAL frames.
    pub journal: &'a [u8],
}

/// One fsync's worth of group-commit accounting, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsyncSample {
    /// Wall time the fsync took, nanoseconds.
    pub fsync_ns: u64,
    /// Journal bytes appended so far this epoch (all now durable).
    pub wal_bytes: u64,
}

/// What a rotation wrote, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotateStats {
    /// The new epoch.
    pub epoch: u64,
    /// Size of the snapshot written, bytes.
    pub snapshot_bytes: u64,
    /// Wall time of the journal-sealing fsync, nanoseconds.
    pub seal_fsync_ns: u64,
}

struct Inner {
    epoch: u64,
    /// `None` between [`ShardStore::open`] and
    /// [`ShardStore::commit_recovery`] — appends are a contract
    /// violation in that window.
    wal: Option<BufWriter<File>>,
    wal_bytes: u64,
    dirty: bool,
    records_since_snapshot: u64,
    snapshot_bytes: u64,
    /// Attached replication sink; committed frames fan out here in
    /// append order, under this same mutex.
    sink: Option<Arc<dyn LogSink>>,
}

/// The durable store of one broker shard. Sync: appends, flushes, and
/// rotations serialize on an internal mutex (appends come from the
/// shard's worker thread, flushes from the daemon's flusher thread).
pub struct ShardStore {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl ShardStore {
    /// Opens (creating if needed) a shard's durable directory and reads
    /// whatever state it holds: the latest snapshot plus its journal
    /// chain, tolerating a torn final record in the newest journal.
    /// Leftover `*.tmp` files from an interrupted snapshot write are
    /// deleted; nothing else on disk is touched.
    ///
    /// The store comes back positioned at a fresh epoch with **no
    /// journal open**: replay the outcome into a broker, then call
    /// [`ShardStore::commit_recovery`] with the recovered image before
    /// appending.
    ///
    /// # Errors
    ///
    /// I/O failures; corruption anywhere it cannot be explained by a
    /// crash-torn tail (checksum mismatch on a complete record, torn
    /// record in a non-final journal, gap in the journal chain).
    pub fn open(dir: &Path) -> Result<(Self, RecoveryOutcome), DurableError> {
        fs::create_dir_all(dir).map_err(|e| DurableError::io(dir, e))?;
        let mut snap_epochs: Vec<u64> = Vec::new();
        let mut wal_epochs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| DurableError::io(dir, e))? {
            let entry = entry.map_err(|e| DurableError::io(dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            } else if let Some(epoch) = parse_epoch(name, "snap-", ".img") {
                snap_epochs.push(epoch);
            } else if let Some(epoch) = parse_epoch(name, "wal-", ".log") {
                wal_epochs.push(epoch);
            }
        }
        snap_epochs.sort_unstable();
        wal_epochs.sort_unstable();

        let snapshot_epoch = snap_epochs.last().copied();
        let mut outcome = RecoveryOutcome {
            image: None,
            snapshot_epoch,
            records: Vec::new(),
            discarded_tail_bytes: 0,
            max_now: None,
            notes: Vec::new(),
        };
        if let Some(epoch) = snapshot_epoch {
            let (meta, image) = read_snapshot(&snap_path(dir, epoch))?;
            outcome.max_now = Some(meta.as_of);
            outcome.image = Some(image);
        }

        // The journal chain: every epoch from the snapshot (or the
        // oldest journal on a snapshot-less directory) to the newest
        // journal, contiguous. Journals older than the snapshot are
        // retired state awaiting garbage collection — ignored.
        let chain_start =
            snapshot_epoch.unwrap_or_else(|| wal_epochs.first().copied().unwrap_or(0));
        let chain: Vec<u64> = wal_epochs
            .iter()
            .copied()
            .filter(|&e| e >= chain_start)
            .collect();
        if let (Some(&first), Some(&last)) = (chain.first(), chain.last()) {
            for epoch in first..=last {
                if !chain.contains(&epoch) {
                    return Err(DurableError::MissingJournal {
                        path: wal_path(dir, epoch),
                    });
                }
            }
        }
        let newest = chain.last().copied();
        for &epoch in &chain {
            let path = wal_path(dir, epoch);
            let bytes = read_file(&path)?;
            let mut cursor = FrameCursor::new(&bytes);
            loop {
                match cursor.next_frame() {
                    Ok(Some(payload)) => {
                        let rec: WalRecord =
                            decode_payload(payload, cursor.offset()).map_err(|error| {
                                DurableError::Corrupt {
                                    path: path.clone(),
                                    error,
                                }
                            })?;
                        outcome.max_now = outcome.max_now.max(Some(rec.now()));
                        outcome.records.push(rec);
                    }
                    Ok(None) => break,
                    Err(FrameError::Torn { offset, trailing }) if Some(epoch) == newest => {
                        outcome.discarded_tail_bytes = trailing as u64;
                        outcome.notes.push(format!(
                            "{}: discarded {trailing}-byte torn tail at offset {offset} \
                             (crash mid-append; records past the last group commit)",
                            path.display()
                        ));
                        break;
                    }
                    Err(error) => {
                        return Err(DurableError::Corrupt { path, error });
                    }
                }
            }
        }

        let epoch = match (snapshot_epoch, newest) {
            (None, None) => 0,
            (a, b) => a.max(b).expect("at least one epoch present") + 1,
        };
        let store = ShardStore {
            dir: dir.to_path_buf(),
            inner: Mutex::new(Inner {
                epoch,
                wal: None,
                wal_bytes: 0,
                dirty: false,
                records_since_snapshot: 0,
                snapshot_bytes: 0,
                sink: None,
            }),
        };
        Ok((store, outcome))
    }

    /// Seals recovery: writes the recovered image as this epoch's
    /// snapshot (atomically), opens this epoch's journal, and retires
    /// every older snapshot and journal. Must be called exactly once,
    /// before the first [`ShardStore::append`].
    ///
    /// # Errors
    ///
    /// I/O failures writing the snapshot or journal.
    ///
    /// # Panics
    ///
    /// Panics when called twice (the journal is already open).
    pub fn commit_recovery(&self, image: &BrokerImage, as_of: Time) -> Result<(), DurableError> {
        let mut inner = self.inner.lock();
        assert!(inner.wal.is_none(), "commit_recovery called twice");
        let epoch = inner.epoch;
        inner.snapshot_bytes = write_snapshot(&self.dir, epoch, image, as_of)?;
        let path = wal_path(&self.dir, epoch);
        let file = File::create(&path).map_err(|e| DurableError::io(&path, e))?;
        inner.wal = Some(BufWriter::new(file));
        inner.wal_bytes = 0;
        inner.dirty = false;
        inner.records_since_snapshot = 0;
        drop(inner);
        self.gc(epoch);
        sync_dir(&self.dir)?;
        Ok(())
    }

    /// Appends one record to the journal buffer and fans it out to the
    /// attached [`LogSink`], if any. No fsync — durability arrives with
    /// the next [`ShardStore::flush`] (group commit). Returns where the
    /// record landed, so a caller gating on replication acks knows which
    /// `(epoch, offset)` watermark must cover it.
    ///
    /// # Errors
    ///
    /// I/O failure writing to the journal's buffer.
    ///
    /// # Panics
    ///
    /// Panics when called before [`ShardStore::commit_recovery`].
    pub fn append(&self, record: &WalRecord) -> Result<WalPosition, DurableError> {
        let bytes = encode_record(record);
        let mut inner = self.inner.lock();
        let path = wal_path(&self.dir, inner.epoch);
        let wal = inner.wal.as_mut().expect("append before commit_recovery");
        wal.write_all(&bytes)
            .map_err(|e| DurableError::io(&path, e))?;
        inner.wal_bytes += bytes.len() as u64;
        inner.records_since_snapshot += 1;
        inner.dirty = true;
        let pos = WalPosition {
            epoch: inner.epoch,
            end_offset: inner.wal_bytes,
        };
        if let Some(sink) = &inner.sink {
            sink.record(pos, &bytes);
        }
        Ok(pos)
    }

    /// Attaches the replication sink, handing `bootstrap` the snapshot
    /// and journal-prefix bytes that bring a cold replica to the exact
    /// position the sink will stream from. Everything happens in one
    /// critical section against [`ShardStore::append`]: no record can
    /// land between the prefix read and the sink install, so the stream
    /// the sink sees is gapless. Replaces any previously attached sink.
    ///
    /// # Errors
    ///
    /// I/O failure flushing the journal buffer or reading the snapshot
    /// or journal files back.
    ///
    /// # Panics
    ///
    /// Panics when called before [`ShardStore::commit_recovery`].
    pub fn attach_sink(
        &self,
        sink: Arc<dyn LogSink>,
        bootstrap: impl FnOnce(SinkBootstrap<'_>),
    ) -> Result<(), DurableError> {
        let mut inner = self.inner.lock();
        let epoch = inner.epoch;
        let path = wal_path(&self.dir, epoch);
        let wal = inner
            .wal
            .as_mut()
            .expect("attach_sink before commit_recovery");
        // Write buffered appends through to the OS (no fsync needed —
        // we are about to read the file back, not survive a crash).
        wal.flush().map_err(|e| DurableError::io(&path, e))?;
        let snapshot = read_file(&snap_path(&self.dir, epoch))?;
        let journal = read_file(&path)?;
        bootstrap(SinkBootstrap {
            epoch,
            snapshot: &snapshot,
            journal: &journal,
        });
        inner.sink = Some(sink);
        Ok(())
    }

    /// Detaches the replication sink (replica died or was replaced);
    /// subsequent appends stay local-only. Idempotent.
    pub fn detach_sink(&self) {
        self.inner.lock().sink = None;
    }

    /// Group commit: flushes buffered records and fsyncs the journal.
    /// Returns `None` when nothing was pending.
    ///
    /// # Errors
    ///
    /// I/O failure flushing or syncing.
    pub fn flush(&self) -> Result<Option<FsyncSample>, DurableError> {
        let mut inner = self.inner.lock();
        if !inner.dirty {
            return Ok(None);
        }
        let epoch = inner.epoch;
        let wal_bytes = inner.wal_bytes;
        let path = wal_path(&self.dir, epoch);
        let wal = inner.wal.as_mut().expect("flush before commit_recovery");
        wal.flush().map_err(|e| DurableError::io(&path, e))?;
        let started = Instant::now();
        wal.get_ref()
            .sync_data()
            .map_err(|e| DurableError::io(&path, e))?;
        let fsync_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        inner.dirty = false;
        Ok(Some(FsyncSample {
            fsync_ns,
            wal_bytes,
        }))
    }

    /// Rotation: seals the current journal (flush + fsync), advances
    /// the epoch, writes `image` as the new epoch's snapshot, opens the
    /// new journal, and retires the old chain. Call with the state
    /// image captured at the current journal position (the daemon's
    /// worker does this under its shard write lock, so no append can
    /// slip between capture and seal).
    ///
    /// # Errors
    ///
    /// I/O failures at any step.
    ///
    /// # Panics
    ///
    /// Panics when called before [`ShardStore::commit_recovery`].
    pub fn rotate(&self, image: &BrokerImage, as_of: Time) -> Result<RotateStats, DurableError> {
        let mut inner = self.inner.lock();
        let old_path = wal_path(&self.dir, inner.epoch);
        let wal = inner.wal.as_mut().expect("rotate before commit_recovery");
        wal.flush().map_err(|e| DurableError::io(&old_path, e))?;
        let started = Instant::now();
        wal.get_ref()
            .sync_data()
            .map_err(|e| DurableError::io(&old_path, e))?;
        let seal_fsync_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);

        let epoch = inner.epoch + 1;
        let snapshot_bytes = write_snapshot(&self.dir, epoch, image, as_of)?;
        let path = wal_path(&self.dir, epoch);
        let file = File::create(&path).map_err(|e| DurableError::io(&path, e))?;
        inner.epoch = epoch;
        inner.wal = Some(BufWriter::new(file));
        inner.wal_bytes = 0;
        inner.dirty = false;
        inner.records_since_snapshot = 0;
        inner.snapshot_bytes = snapshot_bytes;
        if let Some(sink) = &inner.sink {
            sink.rotate(epoch);
        }
        drop(inner);
        self.gc(epoch);
        sync_dir(&self.dir)?;
        Ok(RotateStats {
            epoch,
            snapshot_bytes,
            seal_fsync_ns,
        })
    }

    /// Records appended since the last snapshot — the daemon's
    /// `--snapshot-every` trigger reads this.
    #[must_use]
    pub fn records_since_snapshot(&self) -> u64 {
        self.inner.lock().records_since_snapshot
    }

    /// Bytes appended to the current journal (including not-yet-synced
    /// ones).
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.inner.lock().wal_bytes
    }

    /// Size of the last snapshot written by this store, bytes.
    #[must_use]
    pub fn snapshot_bytes(&self) -> u64 {
        self.inner.lock().snapshot_bytes
    }

    /// The current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Removes snapshots and journals of epochs before `keep`. Failures
    /// are ignored: stale files are re-collected on the next rotation,
    /// and recovery ignores everything older than the newest snapshot.
    fn gc(&self, keep: u64) {
        for epoch in 0..keep {
            let _ = fs::remove_file(snap_path(&self.dir, epoch));
            let _ = fs::remove_file(wal_path(&self.dir, epoch));
        }
    }
}

fn parse_epoch(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn read_file(path: &Path) -> Result<Vec<u8>, DurableError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| DurableError::io(path, e))?;
    Ok(bytes)
}

fn sync_dir(dir: &Path) -> Result<(), DurableError> {
    // Directory fsync publishes renames and creations; platforms that
    // refuse to open directories for writing just sync on open.
    match File::open(dir) {
        Ok(f) => f.sync_all().map_err(|e| DurableError::io(dir, e)),
        Err(e) => Err(DurableError::io(dir, e)),
    }
}

/// Writes a snapshot atomically: temp file, flush, fsync, rename into
/// place, directory fsync. Returns the snapshot's size in bytes.
///
/// # Errors
///
/// I/O failures at any step.
pub fn write_snapshot(
    dir: &Path,
    epoch: u64,
    image: &BrokerImage,
    as_of: Time,
) -> Result<u64, DurableError> {
    let mut bytes = encode_record(&SnapMeta { epoch, as_of });
    bytes.extend_from_slice(&encode_record(image));
    let len = bytes.len() as u64;
    let tmp = dir.join(format!("snap-{epoch}.img.tmp"));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| DurableError::io(&tmp, e))?;
        f.write_all(&bytes).map_err(|e| DurableError::io(&tmp, e))?;
        f.sync_all().map_err(|e| DurableError::io(&tmp, e))?;
    }
    let path = snap_path(dir, epoch);
    fs::rename(&tmp, &path).map_err(|e| DurableError::io(&path, e))?;
    sync_dir(dir)?;
    Ok(len)
}

/// Reads and validates a snapshot file.
///
/// # Errors
///
/// I/O failures, or corruption of either frame — snapshots are written
/// atomically, so unlike a journal tail, a short or invalid snapshot is
/// never a tolerable crash artifact.
pub fn read_snapshot(path: &Path) -> Result<(SnapMeta, BrokerImage), DurableError> {
    let bytes = read_file(path)?;
    decode_snapshot(&bytes).map_err(|error| DurableError::Corrupt {
        path: path.to_path_buf(),
        error,
    })
}

/// Decodes a snapshot image from its raw bytes (the contents of a
/// `snap-<E>.img` file, or the same bytes shipped over a replication
/// bootstrap): a [`SnapMeta`] frame followed by a [`BrokerImage`] frame.
///
/// # Errors
///
/// [`FrameError`] when either frame is torn, truncated, or corrupt.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(SnapMeta, BrokerImage), FrameError> {
    let mut cursor = FrameCursor::new(bytes);
    let meta_frame = cursor.next_frame()?.ok_or(FrameError::Torn {
        offset: 0,
        trailing: 0,
    })?;
    let meta: SnapMeta = decode_payload(meta_frame, 0)?;
    let offset = cursor.offset();
    let image_frame = cursor.next_frame()?.ok_or(FrameError::Torn {
        offset,
        trailing: 0,
    })?;
    let image: BrokerImage = decode_payload(image_frame, offset)?;
    Ok((meta, image))
}
