//! `bb-durable` — write-ahead commit journal, MIB snapshots, and crash
//! recovery for the bandwidth broker.
//!
//! The paper's architecture (§2) concentrates **all** of a domain's QoS
//! reservation state in the bandwidth broker's MIBs; core routers keep
//! none. The flip side of that core-stateless bet is that a broker
//! crash would silently void every admitted flow's guarantee — so the
//! broker's state must be recoverable. This crate makes it so, without
//! touching the admission hot path's asymptotics:
//!
//! * **Write-ahead commit journal** ([`record`], [`store`]) — the
//!   two-phase pipeline serializes every state mutation through a
//!   single commit point per shard, which is the natural WAL hook: the
//!   worker appends one [`WalRecord`] per applied mutation (admission,
//!   release, edge report, due timer sweep), length-prefixed and
//!   CRC-32-checksummed ([`crc`]).
//! * **Group commit** — appends buffer in memory; a flusher thread
//!   fsyncs on a configurable interval, so the commit path pays a
//!   memcpy and the fsync amortizes over the whole batch. Crash loss is
//!   bounded by the flush interval and surfaces as a torn journal tail,
//!   which recovery discards and reports.
//! * **Snapshots** — periodic images of the dense MIB stores
//!   ([`bb_core::persist::BrokerImage`]: flow/macroflow arenas with
//!   generation counters intact, link EDF tables, counters), written
//!   atomically via temp-file + fsync + rename, with the journal
//!   rotating to a new epoch at each snapshot.
//! * **Replication seam** ([`store::LogSink`]) — every committed frame
//!   also fans out, byte-identical and in append order, to an attached
//!   sink; [`ShardStore::attach_sink`] hands the attacher a consistent
//!   snapshot + journal-prefix bootstrap in the same critical section,
//!   which is all a warm standby needs to tail the journal gaplessly.
//! * **Recovery** ([`recovery`]) — load the latest valid snapshot,
//!   replay the journal chain through the broker's monolithic entry
//!   points (sound by the two-phase pipeline's serial-equivalence
//!   property), tolerate exactly one torn record at the very tail, and
//!   treat any other inconsistency as the hard error it is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binfmt;
pub mod crc;
pub mod record;
pub mod recovery;
pub mod store;

pub use binfmt::Payload;
pub use record::{
    encode_record, encode_record_json, FrameCursor, FrameError, WalRecord, FRAME_HEADER,
};
pub use recovery::{apply_record, replay, RecoveryOutcome, ReplaySummary};
pub use store::{
    decode_snapshot, read_snapshot, snap_path, wal_path, write_snapshot, DurableError, FsyncSample,
    LogSink, RotateStats, ShardStore, SinkBootstrap, SnapMeta, WalPosition,
};
