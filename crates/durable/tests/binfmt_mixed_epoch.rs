//! Binary-codec round-trip properties and mixed-epoch recovery.
//!
//! Two families of checks:
//!
//! * **Round-trip identity** — structurally arbitrary [`WalRecord`]s
//!   and [`BrokerImage`]s (vacant and occupied arena slots, free lists,
//!   wide EDF aggregates, grants with and without expiries) must
//!   survive `encode → decode` bit-for-bit, and the binary payload must
//!   be smaller than the JSON it replaced.
//! * **Mixed-epoch recovery** — a data dir whose snapshot (and possibly
//!   a journal prefix) is legacy JSON while the journal tail is binary
//!   must recover to exactly the state of a shard that executed the
//!   same operations live. That is the upgrade path: a broker restarted
//!   onto the PR 6 binary writes lands on JSON state from its previous
//!   life and must read it transparently.

use std::fs::{self, File};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bb_core::admission::aggregate::ClassSpec;
use bb_core::broker::BrokerStats;
use bb_core::contingency::Grant;
use bb_core::persist::{
    BrokerImage, EdfEntryImage, FlowRecordImage, FlowServiceImage, FlowSlotImage, LinkImage,
    MacroImage, MacroSlotImage,
};
use bb_core::{BrokerConfig, BrokerShard, FlowRequest, PathId, ServiceKind};
use bb_durable::store::{snap_path, wal_path, SnapMeta};
use bb_durable::{encode_record, encode_record_json, replay, ShardStore, WalRecord};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn profile_strategy() -> impl Strategy<Value = TrafficProfile> {
    (1u64..1 << 40, 1u64..1 << 40, 0u64..1 << 40, 1u64..1 << 20).prop_map(
        |(l_max, rho, peak_extra, sigma_extra)| TrafficProfile {
            sigma: Bits::from_bits(l_max + sigma_extra),
            rho: Rate::from_bps(rho),
            peak: Rate::from_bps(rho + peak_extra),
            l_max: Bits::from_bits(l_max),
        },
    )
}

fn request_strategy() -> impl Strategy<Value = FlowRequest> {
    (
        any::<u64>(),
        profile_strategy(),
        any::<u64>(),
        prop_oneof![
            Just(ServiceKind::PerFlow),
            (0u32..1 << 16).prop_map(ServiceKind::Class),
        ],
        any::<u64>(),
    )
        .prop_map(|(flow, profile, d_req, service, path)| FlowRequest {
            flow: FlowId(flow),
            profile,
            d_req: Nanos::from_nanos(d_req),
            service,
            path: PathId(path),
        })
}

fn record_strategy() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        (any::<u64>(), request_strategy()).prop_map(|(now, request)| WalRecord::Admit {
            now: Time::from_nanos(now),
            request,
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(now, flow)| WalRecord::Release {
            now: Time::from_nanos(now),
            flow: FlowId(flow),
        }),
        (any::<u64>(), any::<u64>()).prop_map(|(now, mf)| WalRecord::Report {
            now: Time::from_nanos(now),
            macroflow: FlowId(mf),
        }),
        any::<u64>().prop_map(|now| WalRecord::Tick {
            now: Time::from_nanos(now),
        }),
    ]
}

fn link_strategy() -> impl Strategy<Value = LinkImage> {
    (
        any::<u64>(),
        prop::collection::vec(
            (
                any::<u64>(),
                any::<u64>(),
                (any::<u64>(), any::<u64>()),
                (any::<u64>(), any::<u64>()),
                any::<u64>(),
            )
                .prop_map(|(delay, rate, rd, lm, count)| EdfEntryImage {
                    delay: Nanos::from_nanos(delay),
                    rate: Rate::from_bps(rate),
                    rate_delay_hi: rd.0,
                    rate_delay_lo: rd.1,
                    lmax_hi: lm.0,
                    lmax_lo: lm.1,
                    count,
                }),
            0..4,
        ),
    )
        .prop_map(|(reserved, edf)| LinkImage {
            reserved: Rate::from_bps(reserved),
            edf,
        })
}

fn flow_slot_strategy() -> impl Strategy<Value = FlowSlotImage> {
    prop_oneof![
        any::<u32>().prop_map(|next_generation| FlowSlotImage::Vacant { next_generation }),
        (
            any::<u32>(),
            any::<u64>(),
            profile_strategy(),
            any::<u64>(),
            any::<u64>(),
            prop_oneof![
                (any::<u64>(), any::<u64>()).prop_map(|(rate, delay)| {
                    FlowServiceImage::PerFlow {
                        rate: Rate::from_bps(rate),
                        delay: Nanos::from_nanos(delay),
                    }
                }),
                any::<u64>().prop_map(|macroflow| FlowServiceImage::ClassMember { macroflow }),
            ],
        )
            .prop_map(|(generation, flow, profile, d_req, path, service)| {
                FlowSlotImage::Occupied {
                    generation,
                    flow,
                    record: FlowRecordImage {
                        profile,
                        d_req: Nanos::from_nanos(d_req),
                        path: PathId(path),
                        service,
                    },
                }
            }),
    ]
}

fn macro_slot_strategy() -> impl Strategy<Value = MacroSlotImage> {
    prop_oneof![
        any::<u32>().prop_map(|next_generation| MacroSlotImage::Vacant { next_generation }),
        (
            any::<u32>(),
            (any::<u64>(), 0u32..1 << 16, any::<u64>()),
            profile_strategy(),
            (any::<u64>(), any::<u64>()),
            prop::collection::vec(
                (
                    any::<u64>(),
                    any::<u64>(),
                    prop_oneof![
                        Just(None),
                        any::<u64>().prop_map(|t| Some(Time::from_nanos(t))),
                    ]
                )
                    .prop_map(|(amount, at, expires)| Grant {
                        amount: Rate::from_bps(amount),
                        granted_at: Time::from_nanos(at),
                        expires,
                    }),
                0..3,
            ),
            any::<bool>(),
        )
            .prop_map(
                |(
                    generation,
                    (id, class, path),
                    profile,
                    (reserved, members),
                    grants,
                    dissolving,
                )| {
                    MacroSlotImage::Occupied {
                        generation,
                        state: MacroImage {
                            id,
                            class,
                            path: PathId(path),
                            profile,
                            reserved: Rate::from_bps(reserved),
                            members,
                            grants,
                            dissolving,
                        },
                    }
                }
            ),
    ]
}

fn image_strategy() -> impl Strategy<Value = BrokerImage> {
    (
        prop::collection::vec(link_strategy(), 0..3),
        prop::collection::vec(flow_slot_strategy(), 0..6),
        prop::collection::vec(any::<u32>(), 0..4),
        prop::collection::vec(macro_slot_strategy(), 0..4),
        prop::collection::vec(any::<u32>(), 0..4),
        prop::collection::vec(prop_oneof![Just(None), any::<u64>().prop_map(Some)], 0..4),
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 14..15),
    )
        .prop_map(
            |(links, flow_slots, flow_free, macro_slots, macro_free, registry, next_macro, s)| {
                BrokerImage {
                    links,
                    flow_slots,
                    flow_free,
                    macro_slots,
                    macro_free,
                    macro_registry: registry,
                    next_macro,
                    stats: BrokerStats {
                        requested: s[0],
                        admitted: s[1],
                        rejected_policy: s[2],
                        rejected_delay: s[3],
                        rejected_bandwidth: s[4],
                        rejected_sched: s[5],
                        rejected_unknown_class: s[6],
                        rejected_duplicate: s[7],
                        released: s[8],
                        grants: s[9],
                        grant_expiries: s[10],
                        grant_resets: s[11],
                        plan_retries: s[12],
                        plan_aborts: s[13],
                    },
                }
            },
        )
}

/// Strips the frame header, leaving the payload a frame carries.
fn payload(framed: &[u8]) -> &[u8] {
    &framed[bb_durable::FRAME_HEADER..]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `WalRecord` encode→decode is the identity, and the binary
    /// payload beats JSON on size.
    #[test]
    fn wal_record_roundtrips(rec in record_strategy()) {
        let framed = encode_record(&rec);
        let back: WalRecord =
            bb_durable::record::decode_payload(payload(&framed), 0).expect("decode");
        prop_assert_eq!(&back, &rec);
        let json = encode_record_json(&rec);
        prop_assert!(
            framed.len() < json.len(),
            "binary frame {}B not smaller than JSON {}B",
            framed.len(),
            json.len()
        );
    }

    /// `BrokerImage` encode→decode is the identity over structurally
    /// arbitrary images (vacancies, free lists, wide aggregates).
    #[test]
    fn broker_image_roundtrips(image in image_strategy()) {
        let framed = encode_record(&image);
        let back: BrokerImage =
            bb_durable::record::decode_payload(payload(&framed), 0).expect("decode");
        prop_assert_eq!(back, image);
    }

    /// The dispatcher reads the same record from either format: a
    /// JSON-encoded frame and a binary-encoded frame of one record
    /// decode to equal values.
    #[test]
    fn json_and_binary_frames_decode_identically(rec in record_strategy()) {
        let bin: WalRecord =
            bb_durable::record::decode_payload(payload(&encode_record(&rec)), 0).expect("binary");
        let json: WalRecord = bb_durable::record::decode_payload(
            payload(&encode_record_json(&rec)),
            0,
        )
        .expect("json");
        prop_assert_eq!(bin, json);
    }
}

/// The two-phase harness topology (five-hop chain, one shard), same as
/// the recovery-equivalence test.
fn make_shard() -> BrokerShard {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..6).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<LinkId> = (0..5)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                if i == 2 || i == 3 {
                    SchedulerSpec::VtEdf
                } else {
                    SchedulerSpec::CsVc
                },
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let config = BrokerConfig {
        classes: vec![ClassSpec {
            id: 0,
            d_req: Nanos::from_millis(2_440),
            cd: Nanos::from_millis(240),
        }],
        ..BrokerConfig::default()
    };
    BrokerShard::new(0, 1, &topo, &config, &[(PathId(0), route)])
}

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn scratch_dir(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bb-binfmt-{tag}-{}-{case}", std::process::id()))
}

/// Runs `n` admissions (a mix of per-flow and class service) against
/// `shard` starting at flow id `base`, returning the journal records a
/// live daemon would have appended.
fn run_ops(shard: &mut BrokerShard, base: u64, n: u64) -> Vec<WalRecord> {
    let mut records = Vec::new();
    for k in 0..n {
        let now = Time::from_nanos((base + k + 1) * 50_000_000);
        let req = FlowRequest {
            flow: FlowId(base + k),
            profile: type0(),
            d_req: Nanos::from_millis(2_440),
            service: if k % 2 == 0 {
                ServiceKind::PerFlow
            } else {
                ServiceKind::Class(0)
            },
            path: PathId(0),
        };
        let plan = shard.decide(&req);
        let _ = shard.commit(now, &plan);
        records.push(WalRecord::Admit {
            now,
            request: plan.request.clone(),
        });
    }
    records
}

/// The upgrade path: a JSON snapshot from a pre-PR 6 broker plus a
/// journal whose prefix is JSON and whose tail is binary (the restarted
/// broker kept appending to state it inherited) must recover to the
/// live shard's exact state.
#[test]
fn mixed_epoch_recovery_json_snapshot_binary_tail() {
    let dir = scratch_dir("mixed");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    let mut live = make_shard();
    // Pre-snapshot history lands in the image; its records are retired.
    run_ops(&mut live, 0, 12);
    let as_of = Time::from_nanos(12 * 50_000_000);

    // Legacy JSON snapshot at epoch 3, exactly as a pre-PR 6 broker
    // wrote it: a SnapMeta frame then a BrokerImage frame.
    let mut snap = encode_record_json(&SnapMeta { epoch: 3, as_of });
    snap.extend_from_slice(&encode_record_json(&live.export_image()));
    File::create(snap_path(&dir, 3))
        .unwrap()
        .write_all(&snap)
        .unwrap();

    // Epoch 3's journal: a JSON prefix (written before the upgrade)
    // followed by a binary tail (after), formats mixed mid-file.
    let tail_a = run_ops(&mut live, 100, 6);
    let tail_b = run_ops(&mut live, 200, 6);
    let mut wal = Vec::new();
    for rec in &tail_a {
        wal.extend_from_slice(&encode_record_json(rec));
    }
    for rec in &tail_b {
        wal.extend_from_slice(&encode_record(rec));
    }
    File::create(wal_path(&dir, 3))
        .unwrap()
        .write_all(&wal)
        .unwrap();

    let (store, outcome) = ShardStore::open(&dir).expect("mixed-format recovery");
    assert_eq!(outcome.snapshot_epoch, Some(3));
    assert_eq!(outcome.records.len(), tail_a.len() + tail_b.len());
    assert_eq!(outcome.discarded_tail_bytes, 0);

    let mut recovered = make_shard();
    let summary = replay(&mut recovered, &outcome);
    assert_eq!(summary.total(), 12);
    assert_eq!(
        recovered.export_image(),
        live.export_image(),
        "recovered state diverged from the live shard"
    );

    // Sealing recovery writes the new epoch's snapshot in the binary
    // format: it must start with the frame header + magic, not JSON.
    store
        .commit_recovery(&recovered.export_image(), outcome.max_now.unwrap())
        .expect("seal");
    let epoch = store.epoch();
    assert_eq!(epoch, 4);
    let new_snap = fs::read(snap_path(&dir, epoch)).unwrap();
    assert_eq!(
        new_snap[bb_durable::FRAME_HEADER],
        bb_durable::binfmt::MAGIC,
        "post-upgrade snapshots must be binary"
    );

    let _ = fs::remove_dir_all(&dir);
}

/// A torn tail in a binary journal is still tolerated: truncating the
/// final (binary) record mid-frame recovers the full prefix.
#[test]
fn binary_journal_torn_tail_is_discarded() {
    let dir = scratch_dir("torn");
    let _ = fs::remove_dir_all(&dir);

    let mut live = make_shard();
    let (store, outcome) = ShardStore::open(&dir).unwrap();
    assert!(outcome.is_fresh());
    store
        .commit_recovery(&live.export_image(), Time::ZERO)
        .unwrap();
    let records = run_ops(&mut live, 0, 8);
    for rec in &records {
        store.append(rec).unwrap();
    }
    store.flush().unwrap();
    let epoch = store.epoch();
    drop(store);

    // Tear the last record: keep all but its final 3 bytes.
    let path = wal_path(&dir, epoch);
    let len = fs::metadata(&path).unwrap().len();
    let last = encode_record(records.last().unwrap()).len() as u64;
    assert!(last > 3);
    fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let (_store, outcome) = ShardStore::open(&dir).expect("torn binary tail tolerated");
    assert_eq!(outcome.records.len(), records.len() - 1);
    assert_eq!(outcome.discarded_tail_bytes, last - 3);
}
