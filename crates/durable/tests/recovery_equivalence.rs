//! Recovery-equivalence property test: crash anywhere, recover, and the
//! recovered shard must equal a reference shard that applied the same
//! valid prefix.
//!
//! This reuses the serial-equivalence harness of the two-phase pipeline
//! tests (mixed per-flow / class / release workloads over a five-hop
//! chain with both admission procedures), and extends it across a
//! crash: the live shard journals every applied mutation through a real
//! [`ShardStore`], snapshots (rotates) at a proptest-chosen point, and
//! then "crashes" by truncating the journal at an arbitrary byte
//! offset. Recovery must load the snapshot, replay exactly the records
//! that fully survived the cut, discard the torn tail, and land on a
//! state identical — full MIB image, counters included — to a reference
//! shard that executed the same prefix directly.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bb_core::admission::aggregate::ClassSpec;
use bb_core::{BrokerConfig, BrokerShard, FlowRequest, PathId, ServiceKind};
use bb_durable::store::wal_path;
use bb_durable::{replay, RecoveryOutcome, ShardStore, WalRecord};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

#[derive(Debug, Clone)]
enum Op {
    RequestPerFlow { d_ms: u64 },
    RequestClass { class: u32 },
    Release { victim: usize },
}

fn gen_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (2_000u64..6_000).prop_map(|d_ms| Op::RequestPerFlow { d_ms }),
            (0u32..2).prop_map(|class| Op::RequestClass { class }),
            (0usize..64).prop_map(|victim| Op::Release { victim }),
        ],
        1..80,
    )
}

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

/// The two-phase harness topology: a five-hop chain mixing rate-based
/// (`CsVc`) and delay-based (`VtEdf`) hops, served by a single shard.
fn make_shard() -> BrokerShard {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..6).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<LinkId> = (0..5)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                if i == 2 || i == 3 {
                    SchedulerSpec::VtEdf
                } else {
                    SchedulerSpec::CsVc
                },
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let config = BrokerConfig {
        classes: vec![
            ClassSpec {
                id: 0,
                d_req: Nanos::from_millis(2_440),
                cd: Nanos::from_millis(240),
            },
            ClassSpec {
                id: 1,
                d_req: Nanos::from_millis(3_000),
                cd: Nanos::from_millis(100),
            },
        ],
        ..BrokerConfig::default()
    };
    BrokerShard::new(0, 1, &topo, &config, &[(PathId(0), route)])
}

fn request_for(op: &Op, flow: FlowId) -> FlowRequest {
    match *op {
        Op::RequestPerFlow { d_ms } => FlowRequest {
            flow,
            profile: type0(),
            d_req: Nanos::from_millis(d_ms),
            service: ServiceKind::PerFlow,
            path: PathId(0),
        },
        Op::RequestClass { class } => FlowRequest {
            flow,
            profile: type0(),
            d_req: Nanos::ZERO,
            service: ServiceKind::Class(class),
            path: PathId(0),
        },
        Op::Release { .. } => unreachable!("releases carry no request"),
    }
}

/// Runs a due contingency sweep exactly the way the daemon's worker
/// does: only when a timer has actually expired. Returns whether a tick
/// was applied (and therefore must be journaled).
fn drive_timers(shard: &mut BrokerShard, now: Time) -> bool {
    if shard.next_expiry().is_some_and(|due| due <= now) {
        let _ = shard.tick(now);
        true
    } else {
        false
    }
}

/// A unique scratch directory per proptest case.
fn scratch_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("bb-recovery-eq-{}-{case}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Journal through a real store, snapshot mid-stream, crash by
    /// truncating the journal at an arbitrary offset, recover, and
    /// compare full state images against the reference prefix.
    #[test]
    fn crash_recovery_equals_reference_prefix(
        ops in gen_ops(),
        snap_sel in 0usize..=1000,
        cut_sel in 0u64..=1000,
    ) {
        let dir = scratch_dir();
        let _ = fs::remove_dir_all(&dir);

        let mut live = make_shard();
        // The reference tracks the live shard op-for-op until the
        // snapshot point; past it, only journal records that survive
        // the cut are applied.
        let mut reference = make_shard();
        let snap_idx = snap_sel * (ops.len() + 1) / 1001;

        let (store, fresh) = ShardStore::open(&dir).expect("open fresh dir");
        prop_assert!(fresh.is_fresh());
        store
            .commit_recovery(&live.export_image(), Time::ZERO)
            .expect("seal fresh recovery");

        // Records appended after the snapshot, with the cumulative
        // journal offset each one's frame ends at — the ground truth
        // for which records any given cut preserves.
        let mut tail: Vec<(WalRecord, u64)> = Vec::new();
        let mut tail_bytes = 0u64;
        let mut journal = |store: &ShardStore, rec: WalRecord, past_snap: bool| {
            store.append(&rec).expect("append");
            if past_snap {
                tail_bytes += bb_durable::encode_record(&rec).len() as u64;
                tail.push((rec, tail_bytes));
            }
        };

        let mut alive: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if i == snap_idx {
                let now = Time::from_nanos(i as u64 * 50_000_000);
                store.rotate(&live.export_image(), now).expect("rotate");
            }
            let past_snap = i >= snap_idx;
            let now = Time::from_nanos((i as u64 + 1) * 50_000_000);
            if drive_timers(&mut live, now) {
                journal(&store, WalRecord::Tick { now }, past_snap);
                if !past_snap {
                    prop_assert!(drive_timers(&mut reference, now));
                }
            }
            match op {
                Op::Release { victim } => {
                    if alive.is_empty() {
                        continue;
                    }
                    let flow = alive.remove(victim % alive.len());
                    live.release(now, flow).expect("live flow");
                    journal(&store, WalRecord::Release { now, flow }, past_snap);
                    if !past_snap {
                        reference.release(now, flow).expect("live in reference");
                    }
                }
                _ => {
                    let flow = FlowId(next_id);
                    next_id += 1;
                    let req = request_for(op, flow);
                    // Mirror the daemon: decide, commit, then journal
                    // the plan's (shard-local) request — rejects too.
                    let plan = live.decide(&req);
                    let admitted = live.commit(now, &plan).is_ok();
                    journal(
                        &store,
                        WalRecord::Admit { now, request: plan.request.clone() },
                        past_snap,
                    );
                    if !past_snap {
                        let got = reference.commit(now, &reference.decide(&req)).is_ok();
                        prop_assert_eq!(admitted, got);
                    }
                    if admitted {
                        alive.push(flow);
                    }
                }
            }
        }
        if snap_idx >= ops.len() {
            let now = Time::from_nanos(ops.len() as u64 * 50_000_000);
            store.rotate(&live.export_image(), now).expect("rotate");
        }

        // Crash: group-commit whatever is buffered, drop the store, and
        // truncate the newest journal at an arbitrary byte offset.
        store.flush().expect("flush");
        let epoch = store.epoch();
        let wal = wal_path(&dir, epoch);
        drop(store);
        let len = fs::metadata(&wal).expect("wal exists").len();
        prop_assert_eq!(len, tail_bytes, "frame accounting matches the file");
        let cut = cut_sel * len / 1000;
        OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("reopen wal")
            .set_len(cut)
            .expect("truncate");

        // Recover into a freshly built shard.
        let (_store, outcome) = ShardStore::open(&dir).expect("recovery tolerates a torn tail");
        let survivors: Vec<WalRecord> = tail
            .iter()
            .filter(|(_, end)| *end <= cut)
            .map(|(rec, _)| rec.clone())
            .collect();
        let survived_bytes = tail
            .iter()
            .map(|(_, end)| *end)
            .filter(|end| *end <= cut)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(outcome.discarded_tail_bytes, cut - survived_bytes);
        prop_assert_eq!(
            outcome.records.len(),
            survivors.len(),
            "recovery must keep exactly the fully-written records"
        );
        let mut recovered = make_shard();
        let summary = replay(&mut recovered, &outcome);
        prop_assert_eq!(summary.total(), survivors.len() as u64);

        // Bring the reference up to the same prefix: apply the
        // surviving post-snapshot records through the same replay entry
        // points (its pre-snapshot state was built by direct
        // decide/commit, not from the image — that asymmetry is the
        // point of the test).
        let survivor_count = survivors.len();
        let ref_outcome = RecoveryOutcome {
            image: None,
            snapshot_epoch: None,
            records: survivors,
            discarded_tail_bytes: 0,
            max_now: None,
            notes: Vec::new(),
        };
        prop_assert_eq!(
            replay(&mut reference, &ref_outcome).total(),
            survivor_count as u64
        );

        let want = serde::json::to_string(&reference.export_image());
        let got = serde::json::to_string(&recovered.export_image());
        prop_assert_eq!(want, got, "recovered MIB image diverged from the reference prefix");

        let _ = fs::remove_dir_all(&dir);
    }
}
