//! Filesystem-level torn-tail tolerance, exhaustively.
//!
//! A crash between group commits leaves the newest journal truncated at
//! an arbitrary byte. Recovery must treat **every** such truncation of
//! the final record as a survivable torn tail — keep the fully-written
//! prefix, discard and report the tail, never panic — while a checksum
//! mismatch on a *complete* record mid-journal (which truncation cannot
//! produce) stays the hard corruption error it is.

use std::fs;
use std::path::{Path, PathBuf};

use bb_core::{BrokerConfig, BrokerShard, FlowRequest, PathId, ServiceKind};
use bb_durable::store::{snap_path, wal_path};
use bb_durable::{replay, DurableError, ShardStore, WalRecord};
use netsim::topology::{SchedulerSpec, Topology};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn make_shard() -> BrokerShard {
    let (topo, routes) = Topology::pod_chains(
        1,
        3,
        Rate::from_bps(1_500_000),
        Nanos::ZERO,
        SchedulerSpec::CsVc,
        Bits::from_bytes(1500),
    );
    BrokerShard::new(
        0,
        1,
        &topo,
        &BrokerConfig::default(),
        &[(PathId(0), routes[0].clone())],
    )
}

fn admit(shard: &mut BrokerShard, store: &ShardStore, id: u64) {
    let req = FlowRequest {
        flow: FlowId(id),
        profile: type0(),
        d_req: Nanos::from_millis(2_440),
        service: ServiceKind::PerFlow,
        path: PathId(0),
    };
    let plan = shard.decide(&req);
    shard.commit(Time::ZERO, &plan).expect("pod has capacity");
    store
        .append(&WalRecord::Admit {
            now: Time::ZERO,
            request: plan.request,
        })
        .expect("append");
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb-torn-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A sealed store directory holding one snapshot (empty state) and a
/// journal of `admits` admission records, plus the byte layout of that
/// journal. Returns (dir, wal bytes, per-record end offsets).
fn build_template(tag: &str, admits: u64) -> (PathBuf, Vec<u8>, Vec<usize>) {
    let dir = scratch(tag);
    let mut shard = make_shard();
    let (store, outcome) = ShardStore::open(&dir).expect("open fresh");
    assert!(outcome.is_fresh());
    store
        .commit_recovery(&shard.export_image(), Time::ZERO)
        .expect("seal");
    let mut ends = Vec::new();
    for id in 0..admits {
        admit(&mut shard, &store, id);
        ends.push(store.wal_bytes() as usize);
    }
    store.flush().expect("flush");
    let epoch = store.epoch();
    drop(store);
    let wal = fs::read(wal_path(&dir, epoch)).expect("read wal");
    assert_eq!(wal.len(), *ends.last().expect("at least one record"));
    (dir, wal, ends)
}

/// Copies the template into a scratch dir with the journal truncated
/// (or patched) to `bytes`.
fn restage(template: &Path, epoch: u64, bytes: &[u8], tag: &str) -> PathBuf {
    let dir = scratch(tag);
    fs::create_dir_all(&dir).expect("mkdir");
    fs::copy(snap_path(template, epoch), snap_path(&dir, epoch)).expect("copy snap");
    fs::write(wal_path(&dir, epoch), bytes).expect("write wal");
    dir
}

/// Every byte-level truncation of the final record recovers the prefix:
/// the complete records replay, the torn tail's byte count is reported
/// in the outcome's notes, and nothing panics.
#[test]
fn truncation_at_every_offset_of_the_last_record_recovers_the_prefix() {
    let (template, wal, ends) = build_template("template", 4);
    let prefix_end = ends[ends.len() - 2];
    for cut in prefix_end..wal.len() {
        let dir = restage(&template, 0, &wal[..cut], "case");
        let (_store, outcome) =
            ShardStore::open(&dir).unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
        let torn = cut - prefix_end;
        assert_eq!(outcome.discarded_tail_bytes, torn as u64, "cut at {cut}");
        assert_eq!(outcome.records.len(), ends.len() - 1, "cut at {cut}");
        if torn == 0 {
            // Truncation exactly at a frame boundary is a clean EOF —
            // nothing was lost, nothing to report.
            assert!(
                outcome.notes.is_empty(),
                "cut at {cut}: {:?}",
                outcome.notes
            );
        } else {
            assert!(
                outcome.notes.iter().any(|n| n.contains("torn tail")),
                "cut at {cut}: discard must be reported, got {:?}",
                outcome.notes
            );
        }
        let mut recovered = make_shard();
        replay(&mut recovered, &outcome);
        assert_eq!(
            recovered.broker().flows().len(),
            ends.len() - 1,
            "cut at {cut}: prefix admissions must survive"
        );
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&template);
}

/// A bit flip inside a complete mid-journal record is not a crash
/// artifact — recovery must refuse with a hard corruption error rather
/// than silently dropping state.
#[test]
fn checksum_mismatch_mid_journal_is_a_hard_error() {
    let (template, wal, ends) = build_template("corrupt-template", 3);
    // Flip one payload byte of the *first* record: its frame is
    // complete, so the checksum must catch it.
    let mut patched = wal.clone();
    patched[bb_durable::FRAME_HEADER + 4] ^= 0x01;
    let dir = restage(&template, 0, &patched, "corrupt-case");
    match ShardStore::open(&dir) {
        Err(DurableError::Corrupt { path, .. }) => {
            assert_eq!(path, wal_path(&dir, 0));
        }
        Err(other) => panic!("expected hard corruption error, got {other}"),
        Ok(_) => panic!("a complete record with a bad checksum must not recover"),
    }

    // Same flip in the middle record: still complete, still fatal —
    // torn-tail tolerance never applies to interior records.
    let mut patched = wal.clone();
    patched[ends[0] + bb_durable::FRAME_HEADER + 4] ^= 0x01;
    let dir2 = restage(&template, 0, &patched, "corrupt-mid");
    assert!(matches!(
        ShardStore::open(&dir2),
        Err(DurableError::Corrupt { .. })
    ));

    let _ = fs::remove_dir_all(&template);
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}
