//! Property-based tests for VTRS invariants.
//!
//! The central claim of the virtual time reference system is that edge
//! conditioning plus the `δ` adjustment keeps the **virtual spacing
//! property** intact at *every* hop of a path, for arbitrary conformant
//! arrival processes, variable packet sizes, and even shaping-rate changes
//! (Theorem 4). These tests exercise exactly that, end to end, without a
//! scheduler in the loop (scheduler interaction is covered in `netsim`).

use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::conditioner::EdgeConditioner;
use vtrs::packet::{FlowId, Packet};
use vtrs::profile::TrafficProfile;
use vtrs::reference::{advance, HopKind, HopSpec, PathSpec, SpacingChecker};

/// Builds a path with `q` rate-based hops followed by `dh` delay-based
/// hops, all with an 8 ms error term and 1 ms propagation delay.
fn path(q: usize, dh: usize) -> PathSpec {
    let mut hops = vec![
        HopSpec {
            kind: HopKind::RateBased,
            psi: Nanos::from_millis(8),
            prop_delay: Nanos::from_millis(1),
        };
        q
    ];
    hops.extend(vec![
        HopSpec {
            kind: HopKind::DelayBased,
            psi: Nanos::from_millis(8),
            prop_delay: Nanos::from_millis(1),
        };
        dh
    ]);
    PathSpec::new(hops)
}

/// Conditions `packets` (arrival offsets + sizes) through an edge
/// conditioner, optionally changing the shaping rate midway, then advances
/// every released packet across `path`, asserting virtual spacing at every
/// hop.
fn check_spacing_along_path(
    arrivals: &[(u64, u64)], // (inter-arrival ns, size bytes)
    rate0: Rate,
    rate_change: Option<(usize, Rate)>, // (after k-th release, new rate)
    path: &PathSpec,
) {
    let q = path.q();
    let mut cond = EdgeConditioner::new(rate0, Nanos::from_millis(100), q);
    let mut t = Time::ZERO;
    for (k, (gap, bytes)) in arrivals.iter().enumerate() {
        t += Nanos::from_nanos(*gap);
        cond.arrive(
            t,
            Packet::new(FlowId(1), k as u64, Bits::from_bytes(*bytes), t),
        );
    }
    // Release greedily at the earliest legal instants.
    let mut released = Vec::new();
    let mut k = 0usize;
    while let Some(due) = cond.next_release_time() {
        if let Some((at, new_rate)) = rate_change {
            if k == at {
                cond.set_reserved_rate(new_rate);
                // Rate change may alter the head's due time; recompute.
                let due = cond.next_release_time().unwrap();
                released.push(cond.release(due).unwrap());
                k += 1;
                continue;
            }
        }
        released.push(cond.release(due).unwrap());
        k += 1;
    }

    // Hop 0 is the conditioner output; then advance across each hop and
    // re-check spacing with the stamps as they would appear there.
    let mut checkers: Vec<SpacingChecker> = (0..=path.hops().len())
        .map(|_| SpacingChecker::new())
        .collect();
    for pkt in &released {
        let mut state = *pkt.state();
        let size = pkt.size;
        assert!(
            checkers[0].observe(&state, size),
            "spacing violated at conditioner output (seq {})",
            pkt.seq
        );
        for (i, hop) in path.hops().iter().enumerate() {
            advance(&mut state, hop, size);
            assert!(
                checkers[i + 1].observe(&state, size),
                "virtual spacing violated after hop {} (seq {})",
                i,
                pkt.seq
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fixed-size packets, constant rate: spacing holds at all hops and δ
    /// stays zero.
    #[test]
    fn spacing_fixed_sizes(
        gaps in prop::collection::vec(0u64..500_000_000, 1..40),
        q in 1usize..8, dh in 0usize..4,
    ) {
        let arrivals: Vec<(u64, u64)> = gaps.into_iter().map(|g| (g, 1500)).collect();
        check_spacing_along_path(&arrivals, Rate::from_bps(50_000), None, &path(q, dh));
    }

    /// Variable packet sizes: the δ adjustment must preserve spacing.
    #[test]
    fn spacing_variable_sizes(
        pkts in prop::collection::vec((0u64..500_000_000, 64u64..1500), 2..40),
        q in 1usize..8, dh in 0usize..4,
    ) {
        check_spacing_along_path(&pkts, Rate::from_bps(50_000), None, &path(q, dh));
    }

    /// Shaping-rate change mid-stream (the Theorem-4 scenario): spacing
    /// must survive both rate increases and decreases.
    #[test]
    fn spacing_across_rate_change(
        pkts in prop::collection::vec((0u64..200_000_000, 64u64..1500), 4..40),
        at in 1usize..4,
        new_rate in 10_000u64..500_000,
        q in 1usize..8,
    ) {
        check_spacing_along_path(
            &pkts,
            Rate::from_bps(50_000),
            Some((at, Rate::from_bps(new_rate))),
            &path(q, 2),
        );
    }

    /// Conditioner output conforms to the flow's reserved rate: over any
    /// prefix, released bits ≤ r·t + Lmax.
    #[test]
    fn conditioner_output_conforms(
        pkts in prop::collection::vec((0u64..100_000_000, 64u64..1500), 1..60),
        rate_bps in 10_000u64..1_000_000,
    ) {
        let rate = Rate::from_bps(rate_bps);
        let mut cond = EdgeConditioner::new(rate, Nanos::ZERO, 3);
        let mut t = Time::ZERO;
        for (k, (gap, bytes)) in pkts.iter().enumerate() {
            t += Nanos::from_nanos(*gap);
            cond.arrive(t, Packet::new(FlowId(1), k as u64, Bits::from_bytes(*bytes), t));
        }
        let mut first: Option<Time> = None;
        let mut sent = Bits::ZERO;
        while let Some(due) = cond.next_release_time() {
            let p = cond.release(due).unwrap();
            let start = *first.get_or_insert(due);
            sent += p.size;
            let window = due.saturating_since(start);
            let budget = rate.bits_in_ceil(window) + Bits::from_bytes(1500);
            prop_assert!(sent <= budget,
                "released {sent} > envelope {budget} in window {window}");
        }
    }

    /// Envelope is monotone and subadditive for arbitrary valid profiles.
    #[test]
    fn envelope_monotone_subadditive(
        sigma_kb in 2u64..1000, rho in 1_000u64..1_000_000, excess in 0u64..1_000_000,
        t1 in 0u64..5_000_000_000, t2 in 0u64..5_000_000_000,
    ) {
        let l = Bits::from_bytes(125); // 1000 bits
        let profile = TrafficProfile::new(
            Bits::from_kilobits(sigma_kb),
            Rate::from_bps(rho),
            Rate::from_bps(rho + excess),
            l,
        ).unwrap();
        let (a, b) = (Nanos::from_nanos(t1), Nanos::from_nanos(t2));
        prop_assert!(profile.envelope(a.min(b)) <= profile.envelope(a.max(b)));
        prop_assert!(vtrs::profile::envelope_is_subadditive(&profile, a, b));
    }
}
