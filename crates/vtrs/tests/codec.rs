//! Property tests for the dynamic-packet-state wire codec.

use bytes::BytesMut;
use proptest::prelude::*;
use qos_units::{Nanos, Rate, Time};
use vtrs::packet::PacketState;

proptest! {
    /// Encode/decode round-trips any state bit-exactly.
    #[test]
    fn roundtrip(rate in any::<u64>(), delay in any::<u64>(),
                 vt in any::<u64>(), delta in any::<u64>()) {
        let state = PacketState {
            rate: Rate::from_bps(rate),
            delay: Nanos::from_nanos(delay),
            virtual_time: Time::from_nanos(vt),
            delta: Nanos::from_nanos(delta),
        };
        let mut buf = BytesMut::new();
        state.encode(&mut buf);
        prop_assert_eq!(buf.len(), PacketState::WIRE_SIZE);
        let mut rd = buf.freeze();
        prop_assert_eq!(PacketState::decode(&mut rd).unwrap(), state);
        prop_assert_eq!(rd.len(), 0, "decode must consume exactly WIRE_SIZE");
    }

    /// Any truncation is detected, never mis-decoded.
    #[test]
    fn truncation_detected(rate in any::<u64>(), cut in 0usize..PacketState::WIRE_SIZE) {
        let state = PacketState {
            rate: Rate::from_bps(rate),
            delay: Nanos::from_nanos(1),
            virtual_time: Time::from_nanos(2),
            delta: Nanos::from_nanos(3),
        };
        let mut buf = BytesMut::new();
        state.encode(&mut buf);
        let mut short = &buf[..cut];
        let err = PacketState::decode(&mut short).unwrap_err();
        prop_assert_eq!(err.available, cut);
    }

    /// Multiple states stream back-to-back without framing ambiguity.
    #[test]
    fn streams_of_states(n in 1usize..20) {
        let mut buf = BytesMut::new();
        let states: Vec<PacketState> = (0..n)
            .map(|i| PacketState {
                rate: Rate::from_bps(i as u64 + 1),
                delay: Nanos::from_nanos(i as u64 * 7),
                virtual_time: Time::from_nanos(i as u64 * 13),
                delta: Nanos::from_nanos(i as u64 % 3),
            })
            .collect();
        for s in &states {
            s.encode(&mut buf);
        }
        let mut rd = buf.freeze();
        for s in &states {
            prop_assert_eq!(&PacketState::decode(&mut rd).unwrap(), s);
        }
    }
}
