//! The edge traffic conditioner.
//!
//! The conditioner sits at the ingress (co-located with the first-hop
//! router) and enforces the VTRS entry invariant: consecutive packets of a
//! flow enter the network core spaced at least `L^{k+1}/r` apart. It also
//! *initializes the dynamic packet state* — stamping `⟨r, d⟩`, the virtual
//! time stamp `ω̃₁ = â₁` and the virtual time adjustment `δ` — so that core
//! routers can schedule statelessly.
//!
//! For class-based service the conditioner shapes the *macroflow*: packets
//! of all constituent microflows share one queue and one shaping rate. The
//! broker adjusts that rate on microflow join/leave ([`EdgeConditioner::set_reserved_rate`])
//! and temporarily adds **contingency bandwidth**
//! ([`EdgeConditioner::set_contingency`], §4.2.1); the conditioner exposes
//! its backlog and emptiness so the *feedback* variant of the contingency
//! scheme can release that bandwidth as soon as the lingering backlog
//! drains.
//!
//! The `δ` stamping implements the generalized adjustment recursion that
//! Theorem 4 requires: it keeps the virtual-spacing property intact across
//! both variable packet sizes and shaping-rate changes.

use std::collections::VecDeque;

use qos_units::{Bits, Nanos, Rate, Time};

use crate::packet::{Packet, PacketState};

/// Record of the previous release, input to the `δ` recursion.
#[derive(Debug, Clone, Copy)]
struct LastRelease {
    time: Time,
    /// `L^k / r^k` — the virtual transmission time stamped into packet k.
    tx_time: Nanos,
    delta: Nanos,
}

/// An edge conditioner shaping one flow (or macroflow) to its reserved
/// rate and stamping dynamic packet state.
#[derive(Debug)]
pub struct EdgeConditioner {
    /// Base reserved rate `r` (excluding contingency bandwidth).
    reserved: Rate,
    /// Currently allocated contingency bandwidth `Δr` (sum over active
    /// contingency periods).
    contingency: Rate,
    /// Delay parameter `d` stamped into packets (used by delay-based hops).
    delay_param: Nanos,
    /// Number of rate-based hops `q` on the flow's path; divisor of the
    /// `δ` recursion. Zero disables `δ` computation (no rate-based hops
    /// reference it).
    rate_hops: u64,
    queue: VecDeque<Packet>,
    backlog: Bits,
    last: Option<LastRelease>,
    /// Cumulative count of released packets (diagnostics).
    released: u64,
    /// Maximum queueing delay experienced by any released packet so far.
    max_delay: Nanos,
}

impl EdgeConditioner {
    /// Creates a conditioner for a flow reserved at `rate` with delay
    /// parameter `delay_param`, whose path has `rate_hops` rate-based
    /// schedulers.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero — a flow admitted with no bandwidth cannot
    /// be shaped.
    #[must_use]
    pub fn new(rate: Rate, delay_param: Nanos, rate_hops: u64) -> Self {
        assert!(!rate.is_zero(), "EdgeConditioner: zero reserved rate");
        EdgeConditioner {
            reserved: rate,
            contingency: Rate::ZERO,
            delay_param,
            rate_hops,
            queue: VecDeque::new(),
            backlog: Bits::ZERO,
            last: None,
            released: 0,
            max_delay: Nanos::ZERO,
        }
    }

    /// The total shaping rate currently in effect: reserved + contingency.
    #[must_use]
    pub fn total_rate(&self) -> Rate {
        self.reserved.saturating_add(self.contingency)
    }

    /// The base reserved rate.
    #[must_use]
    pub fn reserved_rate(&self) -> Rate {
        self.reserved
    }

    /// Re-configures the reserved rate (BB instruction on microflow
    /// join/leave). Takes effect for all subsequent releases — packets
    /// already released keep their stamped rate, exactly the `r → r'`
    /// scenario of Theorem 4.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn set_reserved_rate(&mut self, rate: Rate) {
        assert!(!rate.is_zero(), "EdgeConditioner: zero reserved rate");
        self.reserved = rate;
    }

    /// Sets the total contingency bandwidth currently allocated to the
    /// macroflow (the BB accumulates overlapping contingency periods and
    /// pushes the sum here).
    pub fn set_contingency(&mut self, extra: Rate) {
        self.contingency = extra;
    }

    /// Updates the stamped delay parameter (fixed per service class; the
    /// paper holds it constant across joins/leaves, §4.2.2).
    pub fn set_delay_param(&mut self, d: Nanos) {
        self.delay_param = d;
    }

    /// Accepts a packet from the source (or from a constituent microflow
    /// of the macroflow) at time `now`.
    pub fn arrive(&mut self, _now: Time, packet: Packet) {
        self.backlog += packet.size;
        self.queue.push_back(packet);
    }

    /// Earliest time the head-of-line packet may be released, or `None` if
    /// the queue is empty.
    ///
    /// The release rule is `max(arrival, prev_release + L_head/r(now))`,
    /// evaluated against the *current* total shaping rate.
    #[must_use]
    pub fn next_release_time(&self) -> Option<Time> {
        let head = self.queue.front()?;
        let spacing_ready = match &self.last {
            None => Time::ZERO,
            Some(prev) => prev.time + head.size.tx_time_ceil(self.total_rate()),
        };
        Some(spacing_ready.max(head.created_at))
    }

    /// Releases the head packet if `now` has reached its release time,
    /// stamping its dynamic packet state. Returns `None` if the queue is
    /// empty or the head is not yet eligible.
    pub fn release(&mut self, now: Time) -> Option<Packet> {
        let due = self.next_release_time()?;
        if now < due {
            return None;
        }
        let mut packet = self.queue.pop_front()?;
        self.backlog -= packet.size;

        let rate = self.total_rate();
        let tx_time = packet.size.tx_time_ceil(rate);
        let delta = self.next_delta(now, tx_time);

        packet.state = Some(PacketState {
            rate,
            delay: self.delay_param,
            virtual_time: now,
            delta,
        });
        packet.entered_core_at = Some(now);

        let queueing = now.saturating_since(packet.created_at);
        self.max_delay = self.max_delay.max(queueing);
        self.released += 1;
        self.last = Some(LastRelease {
            time: now,
            tx_time,
            delta,
        });
        Some(packet)
    }

    /// The `δ` recursion (generalized for rate changes):
    /// `δ^{k+1} = max{0, δ^k + L^k/r^k − L^{k+1}/r^{k+1}
    ///                  − (Δa − L^{k+1}/r^{k+1})/q}`.
    ///
    /// With constant packet sizes and a constant rate this is identically
    /// zero; it becomes positive only when a later packet has a *smaller*
    /// virtual transmission time than its predecessor (shorter packet or
    /// raised rate) released nearly back-to-back, which would otherwise
    /// compress virtual spacing downstream.
    fn next_delta(&self, release: Time, tx_time: Nanos) -> Nanos {
        if self.rate_hops == 0 {
            return Nanos::ZERO;
        }
        let Some(prev) = &self.last else {
            return Nanos::ZERO;
        };
        let gap = release.saturating_since(prev.time);
        // relief = (Δa − L^{k+1}/r^{k+1}) / q  — nonnegative by shaping.
        let relief = gap.saturating_sub(tx_time) / self.rate_hops;
        (prev.delta + prev.tx_time)
            .saturating_sub(tx_time)
            .saturating_sub(relief)
    }

    /// Bits currently queued — the `Q(t)` of Theorems 2/3 and eq. 16.
    #[must_use]
    pub fn backlog(&self) -> Bits {
        self.backlog
    }

    /// Whether the buffer is empty (the feedback trigger for resetting
    /// contingency bandwidth early, §4.2.1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of packets queued.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Packets released so far.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Maximum edge queueing delay experienced by any released packet.
    #[must_use]
    pub fn max_delay(&self) -> Nanos {
        self.max_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;

    fn pkt(seq: u64, bytes: u64, at_ns: u64) -> Packet {
        Packet::new(
            FlowId(7),
            seq,
            Bits::from_bytes(bytes),
            Time::from_nanos(at_ns),
        )
    }

    /// Drains everything releasable, advancing time greedily; returns
    /// (release_time, packet) pairs.
    fn drain(cond: &mut EdgeConditioner) -> Vec<(Time, Packet)> {
        let mut out = Vec::new();
        while let Some(due) = cond.next_release_time() {
            let p = cond.release(due).expect("due packet must release");
            out.push((due, p));
        }
        out
    }

    #[test]
    fn spacing_enforced_on_burst() {
        // 50 kb/s, three 1500-byte packets arriving at once: released at
        // t=0, 0.24 s, 0.48 s.
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 5);
        for k in 0..3 {
            c.arrive(Time::ZERO, pkt(k, 1500, 0));
        }
        assert_eq!(c.backlog(), Bits::from_bits(36_000));
        let rel = drain(&mut c);
        let times: Vec<u64> = rel.iter().map(|(t, _)| t.as_nanos()).collect();
        assert_eq!(times, vec![0, 240_000_000, 480_000_000]);
        assert!(c.is_empty());
        assert_eq!(c.backlog(), Bits::ZERO);
        // Max edge delay: third packet waited 0.48 s.
        assert_eq!(c.max_delay(), Nanos::from_millis(480));
    }

    #[test]
    fn idle_flow_releases_immediately() {
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 5);
        c.arrive(Time::ZERO, pkt(0, 1500, 0));
        let rel0 = c.release(Time::ZERO).unwrap();
        assert_eq!(rel0.entered_core_at, Some(Time::ZERO));
        // Second packet arrives long after the spacing gap: released on arrival.
        c.arrive(Time::from_secs_f64(10.0), pkt(1, 1500, 10_000_000_000));
        assert_eq!(
            c.next_release_time(),
            Some(Time::from_nanos(10_000_000_000))
        );
    }

    #[test]
    fn release_respects_not_before_due() {
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 5);
        c.arrive(Time::ZERO, pkt(0, 1500, 0));
        assert!(c.release(Time::ZERO).is_some());
        c.arrive(Time::ZERO, pkt(1, 1500, 0));
        // Due at 0.24 s; earlier attempts return None.
        assert!(c.release(Time::from_nanos(239_999_999)).is_none());
        assert!(c.release(Time::from_nanos(240_000_000)).is_some());
    }

    #[test]
    fn stamps_state_with_current_rate_and_delay() {
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::from_millis(100), 3);
        c.arrive(Time::ZERO, pkt(0, 1500, 0));
        let p = c.release(Time::ZERO).unwrap();
        let s = p.state.unwrap();
        assert_eq!(s.rate, Rate::from_bps(50_000));
        assert_eq!(s.delay, Nanos::from_millis(100));
        assert_eq!(s.virtual_time, Time::ZERO);
        assert_eq!(s.delta, Nanos::ZERO);
    }

    #[test]
    fn delta_zero_for_fixed_sizes_and_rate() {
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 5);
        for k in 0..10 {
            c.arrive(Time::ZERO, pkt(k, 1500, 0));
        }
        for (_, p) in drain(&mut c) {
            assert_eq!(p.state.unwrap().delta, Nanos::ZERO);
        }
    }

    #[test]
    fn delta_compensates_shrinking_packets() {
        // A large packet followed back-to-back by a small one: the small
        // packet's virtual delay is shorter, so δ must make up the
        // difference (spread over q = 1 rate hop here).
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 1);
        c.arrive(Time::ZERO, pkt(0, 1500, 0));
        c.arrive(Time::ZERO, pkt(1, 500, 0));
        let rel = drain(&mut c);
        // Small packet released at 0.08 s (4000 bits / 50 kb/s).
        assert_eq!(rel[1].0, Time::from_nanos(80_000_000));
        // δ = L0/r − L1/r − (Δa − L1/r)/q = 240ms − 80ms − 0 = 160 ms.
        assert_eq!(rel[1].1.state.unwrap().delta, Nanos::from_millis(160));
    }

    #[test]
    fn rate_change_applies_to_subsequent_spacing() {
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 5);
        for k in 0..2 {
            c.arrive(Time::ZERO, pkt(k, 1500, 0));
        }
        assert!(c.release(Time::ZERO).is_some());
        c.set_reserved_rate(Rate::from_bps(100_000));
        // Spacing now 12000/100000 = 0.12 s.
        assert_eq!(c.next_release_time(), Some(Time::from_nanos(120_000_000)));
        let p = c.release(Time::from_nanos(120_000_000)).unwrap();
        assert_eq!(p.state.unwrap().rate, Rate::from_bps(100_000));
    }

    #[test]
    fn contingency_bandwidth_speeds_up_draining() {
        let mut c = EdgeConditioner::new(Rate::from_bps(50_000), Nanos::ZERO, 5);
        for k in 0..2 {
            c.arrive(Time::ZERO, pkt(k, 1500, 0));
        }
        assert!(c.release(Time::ZERO).is_some());
        c.set_contingency(Rate::from_bps(50_000));
        assert_eq!(c.total_rate(), Rate::from_bps(100_000));
        assert_eq!(c.next_release_time(), Some(Time::from_nanos(120_000_000)));
        // Removing it restores the base spacing.
        c.set_contingency(Rate::ZERO);
        assert_eq!(c.next_release_time(), Some(Time::from_nanos(240_000_000)));
    }

    #[test]
    #[should_panic(expected = "zero reserved rate")]
    fn zero_rate_is_rejected() {
        let _ = EdgeConditioner::new(Rate::ZERO, Nanos::ZERO, 1);
    }
}
