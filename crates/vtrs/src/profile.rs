//! Dual-token-bucket traffic profiles `(σ, ρ, P, Lmax)`.
//!
//! Every flow — microflow or aggregated macroflow — declares its traffic in
//! the standard dual-token-bucket form used by the IETF Guaranteed Service
//! and by the paper: maximum burst `σ`, sustained rate `ρ`, peak rate `P`
//! and maximum packet size `Lmax`, with arrival envelope
//! `E(t) = min(P·t + Lmax, ρ·t + σ)`.

use core::fmt;

use qos_units::{Bits, Nanos, Rate, NANOS_PER_SEC};
use serde::{Deserialize, Serialize};

/// Errors raised when constructing an invalid [`TrafficProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// `σ < Lmax`: the bucket cannot hold even one maximum-size packet.
    BurstSmallerThanPacket,
    /// `P < ρ`: the peak rate must dominate the sustained rate.
    PeakBelowSustained,
    /// A rate or size field was zero where a positive value is required.
    ZeroParameter,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::BurstSmallerThanPacket => {
                write!(
                    f,
                    "burst size σ must be at least the maximum packet size Lmax"
                )
            }
            ProfileError::PeakBelowSustained => {
                write!(f, "peak rate P must be at least the sustained rate ρ")
            }
            ProfileError::ZeroParameter => {
                write!(f, "traffic profile parameters must be positive")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// A dual-token-bucket traffic profile `(σ, ρ, P, Lmax)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TrafficProfile {
    /// Maximum burst size `σ` (≥ `Lmax`).
    pub sigma: Bits,
    /// Sustained (mean) rate `ρ`.
    pub rho: Rate,
    /// Peak rate `P` (≥ `ρ`).
    pub peak: Rate,
    /// Maximum packet size `Lmax`.
    pub l_max: Bits,
}

impl TrafficProfile {
    /// Constructs a validated profile.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] if `σ < Lmax`, `P < ρ`, or any parameter
    /// is zero.
    pub fn new(sigma: Bits, rho: Rate, peak: Rate, l_max: Bits) -> Result<Self, ProfileError> {
        if sigma.as_bits() == 0 || rho.is_zero() || peak.is_zero() || l_max.as_bits() == 0 {
            return Err(ProfileError::ZeroParameter);
        }
        if sigma < l_max {
            return Err(ProfileError::BurstSmallerThanPacket);
        }
        if peak < rho {
            return Err(ProfileError::PeakBelowSustained);
        }
        Ok(TrafficProfile {
            sigma,
            rho,
            peak,
            l_max,
        })
    }

    /// The on-period `T_on = (σ − Lmax)/(P − ρ)`: how long the source can
    /// sustain its peak rate before the sustained-rate constraint binds.
    ///
    /// Returns [`Nanos::ZERO`] for a peak-rate-only profile (`P == ρ` or
    /// `σ == Lmax`), matching the limit of the formula.
    #[must_use]
    pub fn t_on(&self) -> Nanos {
        let num = self.sigma.saturating_sub(self.l_max);
        let den = self.peak.saturating_sub(self.rho);
        if num == Bits::ZERO || den == Rate::ZERO {
            return Nanos::ZERO;
        }
        // Round up: a longer on-period yields a larger (safer) delay bound.
        num.tx_time_ceil(den)
    }

    /// The arrival envelope `E(t) = min(P·t + Lmax, ρ·t + σ)`: an upper
    /// bound on the bits the flow may emit in any window of length `t`.
    #[must_use]
    pub fn envelope(&self, t: Nanos) -> Bits {
        let by_peak = self.peak.bits_in_ceil(t) + self.l_max;
        let by_sustained = self.rho.bits_in_ceil(t) + self.sigma;
        by_peak.min(by_sustained)
    }

    /// Aggregates two profiles as the paper does for macroflows (§4.1):
    /// component-wise sums, including `Lmax^α = Σ Lmax^j` (a maximum-size
    /// packet may arrive from every microflow simultaneously).
    #[must_use]
    pub fn aggregate(&self, other: &TrafficProfile) -> TrafficProfile {
        TrafficProfile {
            sigma: self.sigma + other.sigma,
            rho: self.rho + other.rho,
            peak: self.peak + other.peak,
            l_max: self.l_max + other.l_max,
        }
    }

    /// Removes a microflow's contribution from an aggregate profile.
    ///
    /// # Panics
    ///
    /// Panics if `other` is not contained in `self` (would underflow); the
    /// broker only deaggregates profiles it previously aggregated.
    #[must_use]
    pub fn deaggregate(&self, other: &TrafficProfile) -> TrafficProfile {
        TrafficProfile {
            sigma: self.sigma - other.sigma,
            rho: self.rho - other.rho,
            peak: self.peak - other.peak,
            l_max: self.l_max - other.l_max,
        }
    }

    /// Aggregates an iterator of profiles; returns `None` for an empty
    /// iterator (an empty macroflow has no profile).
    pub fn aggregate_all<'a, I>(profiles: I) -> Option<TrafficProfile>
    where
        I: IntoIterator<Item = &'a TrafficProfile>,
    {
        profiles
            .into_iter()
            .copied()
            .reduce(|acc, p| acc.aggregate(&p))
    }

    /// Mean inter-packet gap at the sustained rate for maximum-size
    /// packets; a convenience for source models.
    #[must_use]
    pub fn mean_packet_gap(&self) -> Nanos {
        self.l_max.tx_time_ceil(self.rho)
    }
}

impl fmt::Display for TrafficProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(σ={}, ρ={}, P={}, Lmax={})",
            self.sigma, self.rho, self.peak, self.l_max
        )
    }
}

/// Helper: checks the envelope scaling identity used in tests.
#[doc(hidden)]
pub fn envelope_is_subadditive(p: &TrafficProfile, t1: Nanos, t2: Nanos) -> bool {
    // E(t1 + t2) <= E(t1) + E(t2) holds for concave envelopes through 0+;
    // with the +Lmax/+σ offsets it holds a fortiori.
    p.envelope(t1 + t2) <= p.envelope(t1) + p.envelope(t2)
}

const _: () = assert!(NANOS_PER_SEC == 1_000_000_000);

#[cfg(test)]
mod tests {
    use super::*;

    fn type0() -> TrafficProfile {
        // Table 1, type 0: σ=60000 b, ρ=0.05 Mb/s, P=0.1 Mb/s, Lmax=1500 B.
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        let l = Bits::from_bytes(1500);
        assert_eq!(
            TrafficProfile::new(
                Bits::from_bits(100),
                Rate::from_bps(1),
                Rate::from_bps(2),
                l
            ),
            Err(ProfileError::BurstSmallerThanPacket)
        );
        assert_eq!(
            TrafficProfile::new(
                Bits::from_bits(60_000),
                Rate::from_bps(5),
                Rate::from_bps(4),
                l
            ),
            Err(ProfileError::PeakBelowSustained)
        );
        assert_eq!(
            TrafficProfile::new(Bits::ZERO, Rate::from_bps(5), Rate::from_bps(5), l),
            Err(ProfileError::ZeroParameter)
        );
    }

    #[test]
    fn t_on_matches_paper_type0() {
        // T_on = (60000 - 12000) / (100000 - 50000) = 0.96 s exactly.
        assert_eq!(type0().t_on(), Nanos::from_millis(960));
    }

    #[test]
    fn t_on_degenerate_cases() {
        let l = Bits::from_bytes(1500);
        let cbr = TrafficProfile::new(l, Rate::from_bps(100), Rate::from_bps(100), l).unwrap();
        assert_eq!(cbr.t_on(), Nanos::ZERO);
    }

    #[test]
    fn envelope_peak_limited_then_sustained_limited() {
        let p = type0();
        // At t=0 the envelope is Lmax (peak branch) vs σ (sustained): min is Lmax.
        assert_eq!(p.envelope(Nanos::ZERO), Bits::from_bits(12_000));
        // At T_on both branches agree: P*0.96 + 12000 = 108000 = ρ*0.96 + 60000.
        assert_eq!(
            p.envelope(Nanos::from_millis(960)),
            Bits::from_bits(108_000)
        );
        // Past T_on the sustained branch binds: at 2 s, 50000*2 + 60000 = 160000.
        assert_eq!(p.envelope(Nanos::from_secs(2)), Bits::from_bits(160_000));
    }

    #[test]
    fn aggregation_sums_components_and_roundtrips() {
        let p = type0();
        let agg = p.aggregate(&p).aggregate(&p);
        assert_eq!(agg.sigma, Bits::from_bits(180_000));
        assert_eq!(agg.rho, Rate::from_bps(150_000));
        assert_eq!(agg.peak, Rate::from_bps(300_000));
        assert_eq!(agg.l_max, Bits::from_bits(36_000));
        // Homogeneous aggregation preserves T_on (the paper's n-flow case).
        assert_eq!(agg.t_on(), p.t_on());
        assert_eq!(agg.deaggregate(&p).deaggregate(&p), p);
    }

    #[test]
    fn aggregate_all_handles_empty_and_many() {
        assert_eq!(TrafficProfile::aggregate_all([].iter()), None);
        let p = type0();
        let v = [p; 5];
        let agg = TrafficProfile::aggregate_all(v.iter()).unwrap();
        assert_eq!(agg.rho, Rate::from_bps(250_000));
    }

    #[test]
    fn mean_packet_gap_type0() {
        assert_eq!(type0().mean_packet_gap(), Nanos::from_millis(240));
    }
}
