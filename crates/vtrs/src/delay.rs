//! End-to-end delay bounds (eqs. 2–4) and the modified core bound under
//! rate change (Theorem 4).
//!
//! These closed-form bounds are the *QoS abstraction of the data plane*:
//! the broker's admission control evaluates nothing but these formulas and
//! the schedulability conditions, never touching a router. All arithmetic
//! is exact (integer ns/bps/bits with conservative rounding), so an
//! admission decision at a boundary — e.g. the 30th type-0 flow at exactly
//! a 2.44 s bound — is decided by the mathematics, not by float noise.

use qos_units::ratio::u128_div_ceil;
use qos_units::{Bits, Nanos, Rate, NANOS_PER_SEC};

use crate::profile::TrafficProfile;
use crate::reference::PathSpec;

/// Errors from delay-bound evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayError {
    /// The reserved rate lies outside `[ρ, P]`.
    RateOutOfRange,
    /// The rate is zero.
    ZeroRate,
}

impl core::fmt::Display for DelayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DelayError::RateOutOfRange => write!(f, "reserved rate must satisfy ρ ≤ r ≤ P"),
            DelayError::ZeroRate => write!(f, "reserved rate must be positive"),
        }
    }
}

impl std::error::Error for DelayError {}

/// Maximum delay at the edge shaper (eq. 3):
/// `d_edge = T_on · (P − r)/r + Lmax/r`.
///
/// # Errors
///
/// Returns [`DelayError`] if `r` is zero or outside `[ρ, P]`.
pub fn edge_delay_bound(profile: &TrafficProfile, r: Rate) -> Result<Nanos, DelayError> {
    if r.is_zero() {
        return Err(DelayError::ZeroRate);
    }
    if r < profile.rho || r > profile.peak {
        return Err(DelayError::RateOutOfRange);
    }
    let t_on = profile.t_on();
    let excess = profile.peak - r;
    // T_on (P - r) / r, rounded up.
    let shaping = Nanos::from_nanos(u128_div_ceil(
        u128::from(t_on.as_nanos()) * u128::from(excess.as_bps()),
        u128::from(r.as_bps()),
    ));
    Ok(shaping + profile.l_max.tx_time_ceil(r))
}

/// Maximum backlog at the edge shaper: `Q_max = (P − r)·T_on + Lmax`,
/// the peak of `E(t) − r·t` (attained at `t = T_on`). Dimensioning the
/// edge conditioner's buffer to this bound makes loss-free shaping
/// possible for any conformant source; note `Q_max / r = d_edge`, the
/// eq.-3 bound.
///
/// # Errors
///
/// Returns [`DelayError`] if `r` is zero or outside `[ρ, P]` (below `ρ`
/// the backlog is unbounded).
pub fn edge_backlog_bound(profile: &TrafficProfile, r: Rate) -> Result<Bits, DelayError> {
    if r.is_zero() {
        return Err(DelayError::ZeroRate);
    }
    if r < profile.rho || r > profile.peak {
        return Err(DelayError::RateOutOfRange);
    }
    let excess = profile.peak - r;
    Ok(excess.bits_in_ceil(profile.t_on()) + profile.l_max)
}

/// Maximum delay across the network core (eq. 2):
/// `d_core = q · Lmax/r + (h − q) · d + D_tot`.
///
/// `l_max` is the flow's maximum packet size for per-flow service, or the
/// path's maximum permissible packet size `L^{P,max}` for a macroflow
/// (§4.1) — the edge releases at most one packet of the aggregate at a
/// time, so the per-hop burst the core sees is a single packet.
///
/// # Errors
///
/// Returns [`DelayError::ZeroRate`] if `r` is zero while the path has
/// rate-based hops.
pub fn core_delay_bound(
    path: &PathSpec,
    l_max: Bits,
    r: Rate,
    d: Nanos,
) -> Result<Nanos, DelayError> {
    let q = path.q();
    let per_rate_hop = if q == 0 {
        Nanos::ZERO
    } else {
        if r.is_zero() {
            return Err(DelayError::ZeroRate);
        }
        l_max.tx_time_ceil(r)
    };
    Ok(per_rate_hop.scale(q) + d.scale(path.delay_hops()) + path.d_tot())
}

/// End-to-end delay bound (eq. 4): `d_e2e = d_edge + d_core`.
///
/// # Errors
///
/// Propagates [`DelayError`] from either component.
pub fn e2e_delay_bound(
    profile: &TrafficProfile,
    path: &PathSpec,
    core_l_max: Bits,
    r: Rate,
    d: Nanos,
) -> Result<Nanos, DelayError> {
    Ok(edge_delay_bound(profile, r)? + core_delay_bound(path, core_l_max, r, d)?)
}

/// Modified core delay bound after a rate change `r → r'` (Theorem 4):
/// `q · max(Lmax/r, Lmax/r') + (h − q) · d + D_tot`.
///
/// Packets of the re-rated macroflow may catch up with packets emitted
/// under the old rate, so the slower of the two rates governs the
/// rate-based per-hop term.
///
/// # Errors
///
/// Returns [`DelayError::ZeroRate`] if either rate is zero while the path
/// has rate-based hops.
pub fn modified_core_delay_bound(
    path: &PathSpec,
    l_max: Bits,
    r_old: Rate,
    r_new: Rate,
    d: Nanos,
) -> Result<Nanos, DelayError> {
    let slower = r_old.min(r_new);
    core_delay_bound(path, l_max, slower, d)
}

/// The minimal reserved rate meeting delay requirement `d_req` on a path
/// of `h` rate-based hops (§3.1):
/// `r_min = (T_on·P + (h+1)·Lmax) / (D_req − D_tot + T_on)`.
///
/// Returns `None` when the requirement is infeasible at any rate — i.e.
/// the fixed part of the delay (`D_tot` minus the `−T_on` credit) already
/// exceeds the requirement. The caller still must clip the result to
/// `[ρ, P]` and to the path's residual bandwidth.
#[must_use]
pub fn min_rate_rate_based(
    profile: &TrafficProfile,
    h: u64,
    d_tot: Nanos,
    d_req: Nanos,
) -> Option<Rate> {
    let t_on = profile.t_on();
    // denominator: D_req − D_tot + T_on, in ns (must be positive).
    let budget = u128::from(d_req.as_nanos()) + u128::from(t_on.as_nanos());
    let fixed = u128::from(d_tot.as_nanos());
    if budget <= fixed {
        return None;
    }
    let denom = budget - fixed;
    // numerator: T_on·P + (h+1)·Lmax·NANOS_PER_SEC, in bit·ns.
    let num = u128::from(t_on.as_nanos()) * u128::from(profile.peak.as_bps())
        + u128::from(h + 1) * u128::from(profile.l_max.as_bits()) * u128::from(NANOS_PER_SEC);
    if num == 0 {
        return Some(Rate::ZERO);
    }
    Some(Rate::from_bps(u128_div_ceil(num, denom)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{HopKind, HopSpec};

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    fn rate_path(h: usize) -> PathSpec {
        PathSpec::new(vec![
            HopSpec {
                kind: HopKind::RateBased,
                psi: Nanos::from_millis(8),
                prop_delay: Nanos::ZERO,
            };
            h
        ])
    }

    #[test]
    fn edge_bound_at_mean_rate_matches_paper() {
        // r = ρ: d_edge = 0.96·(50000/50000) + 0.24 = 1.2 s exactly.
        let d = edge_delay_bound(&type0(), Rate::from_bps(50_000)).unwrap();
        assert_eq!(d, Nanos::from_millis(1_200));
    }

    #[test]
    fn edge_bound_at_peak_rate_is_just_packet_time() {
        let d = edge_delay_bound(&type0(), Rate::from_bps(100_000)).unwrap();
        assert_eq!(d, Nanos::from_millis(120));
    }

    #[test]
    fn edge_backlog_bound_matches_the_envelope_peak() {
        let p = type0();
        // At the mean rate: (100k − 50k)·0.96 s + 12000 = 60000 bits = σ.
        assert_eq!(
            edge_backlog_bound(&p, Rate::from_bps(50_000)).unwrap(),
            Bits::from_bits(60_000)
        );
        // At the peak rate only one packet can queue.
        assert_eq!(
            edge_backlog_bound(&p, Rate::from_bps(100_000)).unwrap(),
            Bits::from_bytes(1500)
        );
        // Consistency with eq. 3: Q_max / r == d_edge.
        let r = Rate::from_bps(80_000);
        let q = edge_backlog_bound(&p, r).unwrap();
        let d = edge_delay_bound(&p, r).unwrap();
        let drain = q.tx_time_ceil(r);
        assert!(drain.saturating_sub(d) <= Nanos::from_nanos(2));
        assert!(d.saturating_sub(drain) <= Nanos::from_nanos(2));
        assert!(edge_backlog_bound(&p, Rate::from_bps(1)).is_err());
    }

    #[test]
    fn edge_bound_rejects_out_of_range_rates() {
        assert_eq!(
            edge_delay_bound(&type0(), Rate::from_bps(10_000)),
            Err(DelayError::RateOutOfRange)
        );
        assert_eq!(
            edge_delay_bound(&type0(), Rate::from_bps(200_000)),
            Err(DelayError::RateOutOfRange)
        );
        assert_eq!(
            edge_delay_bound(&type0(), Rate::ZERO),
            Err(DelayError::ZeroRate)
        );
    }

    #[test]
    fn e2e_bound_reproduces_244s_for_type0_on_5_hop_path() {
        // The Figure-8 S1→D1 path: 5 CsVC hops, Ψ = 8 ms each, π = 0.
        // At r = ρ = 50 kb/s: 0.96 + 6·0.24 + 0.04 = 2.44 s exactly.
        let p = type0();
        let path = rate_path(5);
        let d = e2e_delay_bound(&p, &path, p.l_max, Rate::from_bps(50_000), Nanos::ZERO).unwrap();
        assert_eq!(d, Nanos::from_millis(2_440));
    }

    #[test]
    fn min_rate_inverts_the_e2e_bound() {
        let p = type0();
        let path = rate_path(5);
        let d_tot = path.d_tot();
        // At the 2.44 s requirement, the minimal rate is exactly ρ.
        let r = min_rate_rate_based(&p, 5, d_tot, Nanos::from_millis(2_440)).unwrap();
        assert_eq!(r, Rate::from_bps(50_000));
        // At 2.19 s: r_min = 168000·1e9 / 3.11e9 = 54019.29... → 54020 (ceil).
        let r = min_rate_rate_based(&p, 5, d_tot, Nanos::from_millis(2_190)).unwrap();
        assert_eq!(r.as_bps(), 54_020);
        // Round-trip: the bound at r_min must satisfy the requirement.
        let bound = e2e_delay_bound(&p, &path, p.l_max, r, Nanos::ZERO).unwrap();
        assert!(bound <= Nanos::from_millis(2_190));
        // And one bps below r_min must violate it.
        let bound_below = e2e_delay_bound(
            &p,
            &path,
            p.l_max,
            Rate::from_bps(r.as_bps() - 1),
            Nanos::ZERO,
        )
        .unwrap();
        assert!(bound_below > Nanos::from_millis(2_190));
    }

    #[test]
    fn min_rate_detects_infeasible_requirement() {
        let p = type0();
        // D_tot alone exceeds the requirement plus the T_on credit.
        assert_eq!(
            min_rate_rate_based(&p, 5, Nanos::from_secs(10), Nanos::from_secs(5)),
            None
        );
    }

    #[test]
    fn core_bound_counts_hop_kinds() {
        let path = PathSpec::new(vec![
            HopSpec {
                kind: HopKind::RateBased,
                psi: Nanos::from_millis(8),
                prop_delay: Nanos::from_millis(1),
            },
            HopSpec {
                kind: HopKind::DelayBased,
                psi: Nanos::from_millis(8),
                prop_delay: Nanos::from_millis(1),
            },
        ]);
        let d = core_delay_bound(
            &path,
            Bits::from_bytes(1500),
            Rate::from_bps(50_000),
            Nanos::from_millis(100),
        )
        .unwrap();
        // 1·240ms (rate hop) + 1·100ms (delay hop) + 2·9ms = 358 ms.
        assert_eq!(d, Nanos::from_millis(358));
    }

    #[test]
    fn modified_bound_uses_slower_rate() {
        let path = rate_path(3);
        let l = Bits::from_bytes(1500);
        let slow = Rate::from_bps(50_000);
        let fast = Rate::from_bps(100_000);
        let up = modified_core_delay_bound(&path, l, slow, fast, Nanos::ZERO).unwrap();
        let down = modified_core_delay_bound(&path, l, fast, slow, Nanos::ZERO).unwrap();
        let slow_only = core_delay_bound(&path, l, slow, Nanos::ZERO).unwrap();
        assert_eq!(up, slow_only);
        assert_eq!(down, slow_only);
    }

    #[test]
    fn pure_delay_path_ignores_rate() {
        let path = PathSpec::new(vec![
            HopSpec {
                kind: HopKind::DelayBased,
                psi: Nanos::from_millis(8),
                prop_delay: Nanos::ZERO,
            };
            2
        ]);
        let d = core_delay_bound(
            &path,
            Bits::from_bytes(1500),
            Rate::ZERO,
            Nanos::from_millis(50),
        )
        .unwrap();
        assert_eq!(d, Nanos::from_millis(116));
    }
}
