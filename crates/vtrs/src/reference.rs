//! Per-hop virtual time reference/update and path characterization.
//!
//! Each core scheduler is abstracted by two things (§2.1):
//!
//! * its **kind** — rate-based (virtual delay `d̃ = L/r + δ`) or
//!   delay-based (virtual delay `d̃ = d`), and
//! * its **error term** `Ψ`: every packet is guaranteed to depart by its
//!   virtual finish time `ν̃ = ω̃ + d̃` plus `Ψ`.
//!
//! The concatenation rule (eq. 1) advances the virtual time stamp across a
//! hop: `ω̃_{i+1} = ν̃_i + Ψ_i + π_i`. Two invariants must hold at every
//! hop — the **virtual spacing property**
//! `ω̃^{k+1} − ω̃^k ≥ L^{k+1}/r` and the **reality check** `â ≤ ω̃` —
//! and this module provides runtime checkers for both, used by the
//! simulator's validation mode and by property tests.

use qos_units::{Bits, Nanos, Time};
use serde::{Deserialize, Serialize};

use crate::packet::PacketState;

/// Scheduler classification as seen by VTRS and the admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HopKind {
    /// Rate-based scheduler (e.g. C̄SVC, CJVC, VC, WFQ): guarantees the
    /// flow its reserved rate `r`; per-packet virtual delay `L/r + δ`.
    RateBased,
    /// Delay-based scheduler (e.g. VT-EDF, RC-EDF): guarantees the flow
    /// its delay parameter `d` per hop.
    DelayBased,
}

/// One hop of a path, as recorded in the broker's path QoS state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopSpec {
    /// Scheduler kind at this hop.
    pub kind: HopKind,
    /// The scheduler's error term `Ψ` (e.g. `Lmax*/C` for C̄SVC/VT-EDF).
    pub psi: Nanos,
    /// Propagation delay `π` to the next hop.
    pub prop_delay: Nanos,
}

/// The QoS-relevant shape of a path: an ordered list of hops.
///
/// This is the path abstraction both the delay-bound formulas and the
/// path-oriented admission algorithms consume; it contains no per-flow
/// state.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathSpec {
    hops: Vec<HopSpec>,
}

impl PathSpec {
    /// Builds a path from hop specifications.
    #[must_use]
    pub fn new(hops: Vec<HopSpec>) -> Self {
        PathSpec { hops }
    }

    /// The hops, in traversal order.
    #[must_use]
    pub fn hops(&self) -> &[HopSpec] {
        &self.hops
    }

    /// Total hop count `h`.
    #[must_use]
    pub fn h(&self) -> u64 {
        self.hops.len() as u64
    }

    /// Number of rate-based hops `q`.
    #[must_use]
    pub fn q(&self) -> u64 {
        self.hops
            .iter()
            .filter(|h| h.kind == HopKind::RateBased)
            .count() as u64
    }

    /// Number of delay-based hops `h − q`.
    #[must_use]
    pub fn delay_hops(&self) -> u64 {
        self.h() - self.q()
    }

    /// `D_tot = Σ (Ψ_i + π_i)` over the path — the constant term of every
    /// delay bound.
    #[must_use]
    pub fn d_tot(&self) -> Nanos {
        self.hops.iter().map(|h| h.psi + h.prop_delay).sum()
    }

    /// Whether the path contains at least one delay-based hop (which makes
    /// the mixed admission algorithm of §3.2 necessary).
    #[must_use]
    pub fn has_delay_hops(&self) -> bool {
        self.delay_hops() > 0
    }
}

/// The virtual delay `d̃` a packet incurs at a hop of the given kind.
#[must_use]
pub fn virtual_delay(kind: HopKind, state: &PacketState, size: Bits) -> Nanos {
    match kind {
        HopKind::RateBased => size.tx_time_ceil(state.rate) + state.delta,
        HopKind::DelayBased => state.delay,
    }
}

/// The virtual finish time `ν̃ = ω̃ + d̃` of a packet at a hop.
#[must_use]
pub fn virtual_finish(kind: HopKind, state: &PacketState, size: Bits) -> Time {
    state.virtual_time + virtual_delay(kind, state, size)
}

/// Applies the concatenation rule (eq. 1), advancing the packet's virtual
/// time stamp past a hop: `ω̃_{i+1} = ω̃_i + d̃_i + Ψ_i + π_i`.
pub fn advance(state: &mut PacketState, hop: &HopSpec, size: Bits) {
    let finish = virtual_finish(hop.kind, state, size);
    state.virtual_time = finish + hop.psi + hop.prop_delay;
}

/// Runtime checker for the **virtual spacing property** at one observation
/// point: `ω̃^{k+1} − ω̃^k ≥ L^{k+1}/r` for consecutive packets of a flow.
#[derive(Debug, Default, Clone)]
pub struct SpacingChecker {
    last_stamp: Option<Time>,
    violations: u64,
    observed: u64,
}

impl SpacingChecker {
    /// Creates a checker with no history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the next packet of the flow; returns `true` if the spacing
    /// property held for this pair (vacuously true for the first packet).
    pub fn observe(&mut self, state: &PacketState, size: Bits) -> bool {
        self.observed += 1;
        let ok = match self.last_stamp {
            None => true,
            Some(prev) => {
                let spacing = size.tx_time_floor(state.rate);
                state
                    .virtual_time
                    .checked_since(prev)
                    .is_some_and(|gap| gap >= spacing)
            }
        };
        if !ok {
            self.violations += 1;
        }
        self.last_stamp = Some(state.virtual_time);
        ok
    }

    /// Number of violating pairs seen so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of packets observed.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

/// Runtime checker for the **reality check property**: the actual arrival
/// time never exceeds the virtual one, `â ≤ ω̃`.
#[derive(Debug, Default, Clone)]
pub struct RealityChecker {
    violations: u64,
    observed: u64,
    /// Largest lead of virtual over actual time seen (diagnostic).
    max_lead: Nanos,
}

impl RealityChecker {
    /// Creates a checker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a packet arriving at `actual` with stamp `state`; returns
    /// `true` if `â ≤ ω̃`.
    pub fn observe(&mut self, actual: Time, state: &PacketState) -> bool {
        self.observed += 1;
        let ok = actual <= state.virtual_time;
        if ok {
            self.max_lead = self.max_lead.max(state.virtual_time - actual);
        } else {
            self.violations += 1;
        }
        ok
    }

    /// Number of violations seen.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of packets observed.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Largest observed lead of virtual time over real time.
    #[must_use]
    pub fn max_lead(&self) -> Nanos {
        self.max_lead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_units::Rate;

    fn state(rate_bps: u64, vt_ns: u64) -> PacketState {
        PacketState {
            rate: Rate::from_bps(rate_bps),
            delay: Nanos::from_millis(100),
            virtual_time: Time::from_nanos(vt_ns),
            delta: Nanos::ZERO,
        }
    }

    fn hop(kind: HopKind) -> HopSpec {
        HopSpec {
            kind,
            psi: Nanos::from_millis(8),
            prop_delay: Nanos::from_millis(1),
        }
    }

    #[test]
    fn path_summary_statistics() {
        let path = PathSpec::new(vec![
            hop(HopKind::RateBased),
            hop(HopKind::RateBased),
            hop(HopKind::DelayBased),
        ]);
        assert_eq!(path.h(), 3);
        assert_eq!(path.q(), 2);
        assert_eq!(path.delay_hops(), 1);
        assert!(path.has_delay_hops());
        assert_eq!(path.d_tot(), Nanos::from_millis(27));
    }

    #[test]
    fn virtual_delay_by_kind() {
        let s = state(50_000, 0);
        let size = Bits::from_bytes(1500); // 12000 bits -> 0.24 s at 50 kb/s
        assert_eq!(
            virtual_delay(HopKind::RateBased, &s, size),
            Nanos::from_millis(240)
        );
        assert_eq!(
            virtual_delay(HopKind::DelayBased, &s, size),
            Nanos::from_millis(100)
        );
    }

    #[test]
    fn delta_contributes_to_rate_based_delay_only() {
        let mut s = state(50_000, 0);
        s.delta = Nanos::from_millis(5);
        let size = Bits::from_bytes(1500);
        assert_eq!(
            virtual_delay(HopKind::RateBased, &s, size),
            Nanos::from_millis(245)
        );
        assert_eq!(
            virtual_delay(HopKind::DelayBased, &s, size),
            Nanos::from_millis(100)
        );
    }

    #[test]
    fn concatenation_rule_advances_stamp() {
        let mut s = state(50_000, 1_000_000);
        let h = hop(HopKind::RateBased);
        advance(&mut s, &h, Bits::from_bytes(1500));
        // 1 ms + 240 ms (L/r) + 8 ms (psi) + 1 ms (pi) = 250 ms
        assert_eq!(s.virtual_time, Time::from_nanos(250_000_000));
    }

    #[test]
    fn spacing_checker_flags_violations() {
        let mut c = SpacingChecker::new();
        let size = Bits::from_bytes(1500);
        assert!(c.observe(&state(50_000, 0), size));
        // Next stamp exactly L/r later: OK.
        assert!(c.observe(&state(50_000, 240_000_000), size));
        // Next stamp only 100 ms later: violation.
        assert!(!c.observe(&state(50_000, 340_000_000), size));
        assert_eq!(c.violations(), 1);
        assert_eq!(c.observed(), 3);
    }

    #[test]
    fn reality_checker_tracks_lead() {
        let mut c = RealityChecker::new();
        let s = state(50_000, 1_000);
        assert!(c.observe(Time::from_nanos(900), &s));
        assert!(c.observe(Time::from_nanos(1_000), &s));
        assert!(!c.observe(Time::from_nanos(1_001), &s));
        assert_eq!(c.violations(), 1);
        assert_eq!(c.max_lead(), Nanos::from_nanos(100));
    }
}
