//! The Virtual Time Reference System (VTRS).
//!
//! VTRS is the core-stateless data-plane abstraction the bandwidth broker
//! architecture is built on (Zhang, Duan & Hou, *IEEE JSAC* 2000; §2.1 of
//! the SIGCOMM 2000 paper). It has three components, each a module here:
//!
//! * **Packet state** ([`packet`]) — every packet carries a rate–delay
//!   parameter pair `⟨r, d⟩`, a *virtual time stamp* `ω̃` and a *virtual
//!   time adjustment* `δ`, initialized at the network edge and updated
//!   hop by hop. Core routers schedule purely from this state; they keep
//!   no per-flow (nor aggregate) QoS state.
//! * **Edge traffic conditioning** ([`conditioner`]) — flows are shaped at
//!   the ingress so consecutive packets enter the core spaced at least
//!   `L^{k+1}/r` apart. The conditioner also implements the rate-change
//!   semantics required for dynamic flow aggregation (§4.2.2) and exposes
//!   the backlog / empty-buffer signals used by the contingency-bandwidth
//!   feedback scheme.
//! * **Per-hop virtual time reference/update** ([`mod@reference`]) — the
//!   concatenation rule (eq. 1) `ω̃_{i+1} = ω̃_i + d̃_i + Ψ_i + π_i`, the
//!   virtual-spacing and reality-check properties, and checkers that
//!   verify both in packet-level simulation.
//!
//! [`profile`] defines dual-token-bucket traffic profiles `(σ, ρ, P, Lmax)`
//! and their aggregation; [`delay`] closes the loop with the end-to-end
//! delay bounds (eqs. 2–4) and the modified core bound under rate change
//! (Theorem 4) that the broker's admission control evaluates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditioner;
pub mod delay;
pub mod packet;
pub mod profile;
pub mod reference;

pub use conditioner::EdgeConditioner;
pub use packet::{FlowId, Packet, PacketState};
pub use profile::TrafficProfile;
pub use reference::{HopKind, PathSpec};
