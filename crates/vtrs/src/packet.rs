//! Packets and the dynamic packet state they carry.
//!
//! Under VTRS a packet entering the network core carries, in its header,
//! the flow's rate–delay reservation `⟨r, d⟩`, the packet's current virtual
//! time stamp `ω̃` and the virtual time adjustment term `δ` (§2.1). Core
//! routers read and update this state; they never consult a flow table.
//! [`PacketState`] models the header fields and provides a byte-exact wire
//! codec so the "carried in packet headers" claim is honored literally.

use core::fmt;

use bytes::{Buf, BufMut};
use qos_units::{Bits, Nanos, Rate, Time};
use serde::{Deserialize, Serialize};

/// Identifies a flow within the network domain.
///
/// For class-based service this identifies the *macroflow* (path × class);
/// core routers never see microflow identities.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// The dynamic packet state inserted by the edge conditioner and updated at
/// every core hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketState {
    /// Reserved rate `r` of the flow (used by rate-based schedulers).
    pub rate: Rate,
    /// Delay parameter `d` of the flow (used by delay-based schedulers).
    pub delay: Nanos,
    /// Virtual time stamp `ω̃_i`: the packet's arrival time *in virtual
    /// time* at the router currently being traversed. Initialized at the
    /// edge to the actual time the packet enters the first core hop.
    pub virtual_time: Time,
    /// Virtual time adjustment `δ`, computed at the edge so the virtual
    /// spacing property survives variable packet sizes downstream.
    pub delta: Nanos,
}

impl PacketState {
    /// Serialized size of the state on the wire, in bytes.
    pub const WIRE_SIZE: usize = 32;

    /// Encodes the state into `buf` (32 bytes, big-endian).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.rate.as_bps());
        buf.put_u64(self.delay.as_nanos());
        buf.put_u64(self.virtual_time.as_nanos());
        buf.put_u64(self.delta.as_nanos());
    }

    /// Decodes a state previously written by [`PacketState::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if fewer than [`PacketState::WIRE_SIZE`]
    /// bytes remain.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < Self::WIRE_SIZE {
            return Err(DecodeError {
                needed: Self::WIRE_SIZE,
                available: buf.remaining(),
            });
        }
        Ok(PacketState {
            rate: Rate::from_bps(buf.get_u64()),
            delay: Nanos::from_nanos(buf.get_u64()),
            virtual_time: Time::from_nanos(buf.get_u64()),
            delta: Nanos::from_nanos(buf.get_u64()),
        })
    }
}

/// Error returned when a packet-state header cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Bytes required.
    pub needed: usize,
    /// Bytes available.
    pub available: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truncated packet state: need {} bytes, have {}",
            self.needed, self.available
        )
    }
}

impl std::error::Error for DecodeError {}

/// A packet traversing the simulated domain.
///
/// Carries its flow id and sequence number for *tracing and statistics
/// only* — scheduler implementations that claim to be core-stateless are
/// forbidden (and verified by tests) to key any per-flow state off them,
/// scheduling purely from [`Packet::state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Flow (macroflow) the packet belongs to.
    pub flow: FlowId,
    /// Sequence number within the flow, assigned by the source.
    pub seq: u64,
    /// Packet size including headers.
    pub size: Bits,
    /// Dynamic packet state; `None` before edge conditioning.
    pub state: Option<PacketState>,
    /// Time the packet left its source (for end-to-end statistics).
    pub created_at: Time,
    /// Time the packet entered the first core hop (set by the edge
    /// conditioner; the anchor of the core-delay bound, eq. 2).
    pub entered_core_at: Option<Time>,
}

impl Packet {
    /// Creates an unconditioned packet at the source.
    #[must_use]
    pub fn new(flow: FlowId, seq: u64, size: Bits, created_at: Time) -> Self {
        Packet {
            flow,
            seq,
            size,
            state: None,
            created_at,
            entered_core_at: None,
        }
    }

    /// The packet's state, panicking if it has not been conditioned yet.
    ///
    /// # Panics
    ///
    /// Panics if called before the edge conditioner stamped the packet —
    /// a core router receiving a stateless packet is a topology bug.
    #[must_use]
    pub fn state(&self) -> &PacketState {
        self.state
            .as_ref()
            .expect("packet reached the core without edge conditioning")
    }

    /// Mutable access to the packet state (per-hop update).
    ///
    /// # Panics
    ///
    /// Panics if the packet has not been conditioned.
    pub fn state_mut(&mut self) -> &mut PacketState {
        self.state
            .as_mut()
            .expect("packet reached the core without edge conditioning")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn sample_state() -> PacketState {
        PacketState {
            rate: Rate::from_bps(50_000),
            delay: Nanos::from_millis(240),
            virtual_time: Time::from_nanos(123_456_789),
            delta: Nanos::from_nanos(42),
        }
    }

    #[test]
    fn wire_roundtrip() {
        let state = sample_state();
        let mut buf = BytesMut::new();
        state.encode(&mut buf);
        assert_eq!(buf.len(), PacketState::WIRE_SIZE);
        let mut rd = buf.freeze();
        let decoded = PacketState::decode(&mut rd).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn decode_rejects_truncation() {
        let state = sample_state();
        let mut buf = BytesMut::new();
        state.encode(&mut buf);
        let mut short = &buf[..PacketState::WIRE_SIZE - 1];
        let err = PacketState::decode(&mut short).unwrap_err();
        assert_eq!(err.needed, 32);
        assert_eq!(err.available, 31);
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn encoding_is_big_endian_and_stable() {
        let state = PacketState {
            rate: Rate::from_bps(1),
            delay: Nanos::from_nanos(2),
            virtual_time: Time::from_nanos(3),
            delta: Nanos::from_nanos(4),
        };
        let mut buf = BytesMut::new();
        state.encode(&mut buf);
        let expected: [u8; 32] = [
            0, 0, 0, 0, 0, 0, 0, 1, //
            0, 0, 0, 0, 0, 0, 0, 2, //
            0, 0, 0, 0, 0, 0, 0, 3, //
            0, 0, 0, 0, 0, 0, 0, 4,
        ];
        assert_eq!(&buf[..], &expected);
    }

    #[test]
    #[should_panic(expected = "without edge conditioning")]
    fn unconditioned_packet_state_panics() {
        let p = Packet::new(FlowId(1), 0, Bits::from_bytes(1500), Time::ZERO);
        let _ = p.state();
    }
}
