//! A lock-free, log₂-bucketed histogram for latency samples.
//!
//! Recording is one relaxed `fetch_add` on the owning bucket plus two
//! for the count/sum aggregates — cheap enough for the admission hot
//! path. Buckets are powers of two: sample `v` (in nanoseconds) lands in
//! the bucket whose upper bound is the smallest `2^k − 1 ≥ v`, so the
//! full `u64` range is covered by [`BUCKETS`] slots with ≤ 2× relative
//! error on any quantile estimate — the right trade for a live endpoint
//! that must never perturb the workload it observes.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of histogram buckets. Bucket `i > 0` covers
/// `[2^(i−1), 2^i − 1]` ns; bucket 0 holds exact-zero samples; the last
/// bucket absorbs everything from `2^(BUCKETS−2)` ns (≈ 9.2 minutes)
/// upward.
pub const BUCKETS: usize = 40;

/// Lock-free latency histogram (values in nanoseconds).
#[derive(Debug)]
pub struct LogHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket owning value `v`.
fn index_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Lock-free; relaxed ordering — snapshots are
    /// statistically, not sequentially, consistent.
    pub fn record(&self, value_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value_ns, Ordering::Relaxed);
        self.buckets[index_of(value_ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy, zero buckets elided.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then(|| Bucket {
                    le_ns: bucket_upper_bound(i),
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket, nanoseconds.
    pub le_ns: u64,
    /// Samples in this bucket (non-cumulative).
    pub count: u64,
}

/// A serializable point-in-time histogram copy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Non-empty buckets in ascending bound order.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of quantile `q ∈ [0, 1]`: the bound of the
    /// first bucket at which the cumulative count reaches `q · count`.
    /// `None` on an empty histogram.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= target {
                return Some(b.le_ns);
            }
        }
        self.buckets.last().map(|b| b.le_ns)
    }

    /// Mean sample, nanoseconds. `None` on an empty histogram.
    #[must_use]
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Merges another snapshot into this one (bucket-wise add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        for b in &other.buckets {
            match self.buckets.binary_search_by_key(&b.le_ns, |s| s.le_ns) {
                Ok(i) => self.buckets[i].count += b.count,
                Err(i) => self.buckets.insert(i, *b),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_power_of_two_buckets() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        // 0 → bucket 0 (le 0); 1 → le 1; 2,3 → le 3; 4 → le 7;
        // 1023 → le 1023; 1024 → le 2047; MAX → overflow bucket.
        let find = |le: u64| snap.buckets.iter().find(|b| b.le_ns == le).map(|b| b.count);
        assert_eq!(find(0), Some(1));
        assert_eq!(find(1), Some(1));
        assert_eq!(find(3), Some(2));
        assert_eq!(find(7), Some(1));
        assert_eq!(find(1023), Some(1));
        assert_eq!(find(2047), Some(1));
        assert_eq!(find(u64::MAX), Some(1));
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile_ns(0.50).unwrap();
        let p99 = snap.quantile_ns(0.99).unwrap();
        assert!(p50 <= p99);
        // True p50 is 500; the bucket bound overestimates by < 2x.
        assert!((511..=1023).contains(&p50), "p50 = {p50}");
        assert_eq!(snap.quantile_ns(1.0).unwrap(), 1023);
        assert_eq!(snap.mean_ns().unwrap(), 500.5);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 40_000);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        a.record(100);
        b.record(6);
        b.record(100_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum_ns, 5 + 100 + 6 + 100_000);
        assert_eq!(merged.buckets.iter().map(|x| x.count).sum::<u64>(), 4);
        // Bounds stay sorted after merge.
        assert!(merged.buckets.windows(2).all(|w| w[0].le_ns < w[1].le_ns));
    }
}
