//! Live telemetry for the bandwidth-broker daemon.
//!
//! The paper's scalability argument (§6) is quantitative — a broker is
//! viable only if it sustains a domain's decision rate — so the daemon
//! must be observable *while it runs*, not only at shutdown. This crate
//! provides the instrumentation layer:
//!
//! * [`histogram::LogHistogram`] — a fixed-size, log₂-bucketed latency
//!   histogram updated with one relaxed atomic add per sample;
//! * [`registry::ShardMetrics`] — per-shard admission outcome counters
//!   (admitted / released / shed, and every [`bb_core::signaling::Reject`]
//!   cause of the admission-outcome taxonomy) plus a queue-depth gauge;
//! * [`registry::MetricsRegistry`] — the cheap shared handle tying the
//!   shards together with the end-to-end setup-latency histogram; shard
//!   workers update it without ever taking a lock;
//! * [`registry::MetricsSnapshot`] — a serializable point-in-time view,
//!   rendered to Prometheus text exposition by [`expose::prometheus`].
//!
//! Nothing here spawns threads, owns sockets, or reads config: the
//! daemon (`bb-server`) decides where snapshots are served, the bench
//! binaries poll snapshots into their `BENCH_*.json` time series, and CI
//! consumes those files to gate throughput regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod histogram;
pub mod registry;

pub use expose::prometheus;
pub use histogram::{HistogramSnapshot, LogHistogram};
pub use registry::{
    ConnSnapshot, FederationSnapshot, MetricsRegistry, MetricsSnapshot, ReasonCount,
    ReplicationSnapshot, ScenarioSnapshot, ShardMetrics, ShardSnapshot,
};
