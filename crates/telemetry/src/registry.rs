//! The metrics registry: per-shard counters and gauges behind one
//! cheap shared handle.
//!
//! Ownership mirrors the daemon's sharding: each worker thread updates
//! only its own [`ShardMetrics`] slot (plus the registry-wide setup
//! histogram), so every update is an uncontended relaxed atomic — no
//! locks, no false sharing across the admission hot path beyond the
//! cache lines the counters themselves occupy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bb_core::signaling::Reject;
use serde::{Deserialize, Serialize};

use crate::histogram::{HistogramSnapshot, LogHistogram};

/// Lock-free counters and gauges for one broker shard.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    admitted: AtomicU64,
    rejected: [AtomicU64; Reject::COUNT],
    released: AtomicU64,
    /// Requests shed at this shard's queue (never admission-tested).
    overloaded: AtomicU64,
    /// Instantaneous job-queue depth, set by the worker as it dequeues.
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    queue_peak: AtomicU64,
    /// Admission-decision latency (time inside the broker, per request).
    decision_ns: LogHistogram,
    /// Decide-phase latency (read-only admissibility test).
    decide_ns: LogHistogram,
    /// Commit-phase latency (epoch revalidation + bookkeeping).
    commit_ns: LogHistogram,
    /// Broker gauges mirrored from the shard's [`bb_core::Broker`] after
    /// each job (absolute values, not deltas).
    plan_retries: AtomicU64,
    plan_aborts: AtomicU64,
    path_cache_hits: AtomicU64,
    path_cache_misses: AtomicU64,
    /// Torn seqlock summary reads retried (or degraded to a miss),
    /// mirrored from the broker's and fast handle's retry counters.
    seqlock_retries: AtomicU64,
    /// Contingency-bandwidth lifecycle totals mirrored from
    /// [`bb_core::broker::BrokerStats`].
    grants: AtomicU64,
    grant_expiries: AtomicU64,
    grant_resets: AtomicU64,
    /// Dense-store occupancy mirrored from
    /// [`bb_core::Broker::store_occupancy`].
    interned_flows: AtomicU64,
    flow_slots: AtomicU64,
    macroflows: AtomicU64,
    macroflow_slots: AtomicU64,
    /// WAL fsync latency (group-commit flushes and rotation seals).
    wal_fsync_ns: LogHistogram,
    /// Bytes appended to the current journal epoch since its last
    /// rotation, as of the last flush.
    wal_bytes: AtomicU64,
    /// Size of the shard's most recent snapshot image on disk.
    snapshot_bytes: AtomicU64,
    /// Journal records replayed during startup recovery.
    recovery_replayed: AtomicU64,
}

impl ShardMetrics {
    /// Counts an admitted request.
    pub fn record_admit(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a rejection under its taxonomy cause.
    pub fn record_reject(&self, cause: Reject) {
        self.rejected[cause.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a released (DRQ'd) flow.
    pub fn record_release(&self) {
        self.released.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed at the queue.
    pub fn record_shed(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one admission-decision latency sample.
    pub fn record_decision_ns(&self, ns: u64) {
        self.decision_ns.record(ns);
    }

    /// Records one decide-phase latency sample.
    pub fn record_decide_ns(&self, ns: u64) {
        self.decide_ns.record(ns);
    }

    /// Records one commit-phase latency sample.
    pub fn record_commit_ns(&self, ns: u64) {
        self.commit_ns.record(ns);
    }

    /// Mirrors the shard broker's two-phase pipeline gauges: plan
    /// retries/aborts and path-summary cache hits/misses, as absolute
    /// running totals read off [`bb_core::broker::BrokerStats`] and
    /// [`bb_core::Broker::path_cache_counters`].
    pub fn set_pipeline_gauges(&self, retries: u64, aborts: u64, hits: u64, misses: u64) {
        self.plan_retries.store(retries, Ordering::Relaxed);
        self.plan_aborts.store(aborts, Ordering::Relaxed);
        self.path_cache_hits.store(hits, Ordering::Relaxed);
        self.path_cache_misses.store(misses, Ordering::Relaxed);
    }

    /// Mirrors the shard's seqlock torn-read retry total (broker probe
    /// retries plus the lock-free decide handle's), as an absolute
    /// running count.
    pub fn set_seqlock_retries(&self, retries: u64) {
        self.seqlock_retries.store(retries, Ordering::Relaxed);
    }

    /// Mirrors the shard broker's contingency-bandwidth lifecycle
    /// totals: grants issued, grants expired by the bounding timer, and
    /// grants reset early by edge feedback (§4.2.1).
    pub fn set_contingency_gauges(&self, grants: u64, expiries: u64, resets: u64) {
        self.grants.store(grants, Ordering::Relaxed);
        self.grant_expiries.store(expiries, Ordering::Relaxed);
        self.grant_resets.store(resets, Ordering::Relaxed);
    }

    /// Mirrors the shard broker's dense-store occupancy: live interned
    /// flows and macroflows against their arenas' total slot footprints.
    pub fn set_store_gauges(&self, flows: u64, flow_slots: u64, macros: u64, macro_slots: u64) {
        self.interned_flows.store(flows, Ordering::Relaxed);
        self.flow_slots.store(flow_slots, Ordering::Relaxed);
        self.macroflows.store(macros, Ordering::Relaxed);
        self.macroflow_slots.store(macro_slots, Ordering::Relaxed);
    }

    /// Records one WAL fsync latency sample (a group-commit flush or a
    /// rotation seal).
    pub fn record_wal_fsync_ns(&self, ns: u64) {
        self.wal_fsync_ns.record(ns);
    }

    /// Updates the current-journal size gauge.
    pub fn set_wal_bytes(&self, bytes: u64) {
        self.wal_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Updates the latest-snapshot size gauge.
    pub fn set_snapshot_bytes(&self, bytes: u64) {
        self.snapshot_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Sets the count of journal records replayed at startup recovery
    /// (written once, when the daemon finishes recovering).
    pub fn set_recovery_replayed(&self, records: u64) {
        self.recovery_replayed.store(records, Ordering::Relaxed);
    }

    /// Updates the queue-depth gauge (and its high-water mark).
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    fn snapshot(&self, shard: usize) -> ShardSnapshot {
        ShardSnapshot {
            shard,
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: Reject::ALL
                .iter()
                .map(|&cause| ReasonCount {
                    reason: cause.label().to_string(),
                    count: self.rejected[cause.index()].load(Ordering::Relaxed),
                })
                .collect(),
            released: self.released.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            decision_ns: self.decision_ns.snapshot(),
            decide_ns: self.decide_ns.snapshot(),
            commit_ns: self.commit_ns.snapshot(),
            plan_retries: self.plan_retries.load(Ordering::Relaxed),
            plan_aborts: self.plan_aborts.load(Ordering::Relaxed),
            path_cache_hits: self.path_cache_hits.load(Ordering::Relaxed),
            path_cache_misses: self.path_cache_misses.load(Ordering::Relaxed),
            seqlock_retries: self.seqlock_retries.load(Ordering::Relaxed),
            grants: self.grants.load(Ordering::Relaxed),
            grant_expiries: self.grant_expiries.load(Ordering::Relaxed),
            grant_resets: self.grant_resets.load(Ordering::Relaxed),
            interned_flows: self.interned_flows.load(Ordering::Relaxed),
            flow_slots: self.flow_slots.load(Ordering::Relaxed),
            macroflows: self.macroflows.load(Ordering::Relaxed),
            macroflow_slots: self.macroflow_slots.load(Ordering::Relaxed),
            wal_fsync_ns: self.wal_fsync_ns.snapshot(),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            recovery_replayed_records: self.recovery_replayed.load(Ordering::Relaxed),
        }
    }
}

/// The shared handle: one [`ShardMetrics`] per shard plus domain-wide
/// series. Clone an `Arc<MetricsRegistry>` freely; updating costs a few
/// relaxed atomics.
#[derive(Debug)]
pub struct MetricsRegistry {
    started: Instant,
    shards: Vec<ShardMetrics>,
    /// End-to-end setup latency: queue wait + decision + encode, from
    /// dispatch to the reply handoff.
    setup_ns: LogHistogram,
    /// Requests refused before sharding (path not served here).
    unrouted: AtomicU64,
    /// Connection-layer series, written by the IO event loops
    /// (registry-wide: connections are not owned by shards).
    open_connections: AtomicU64,
    open_connections_peak: AtomicU64,
    accepts: AtomicU64,
    conn_errors: AtomicU64,
    conn_idle_closed: AtomicU64,
    /// COPS frames decoded per readiness pass — the batching the event
    /// loop achieves (one shard read-lock acquisition serves the whole
    /// pass).
    batch_frames: LogHistogram,
    /// Requests decided per path×class group on the batched decide path
    /// (one seqlock summary read amortizes over each group).
    decide_batch: LogHistogram,
    /// Round-trip time of PEER-DEC queries to the downstream peer
    /// domain (send → answer), federated daemons only.
    peer_rtt_ns: LogHistogram,
    /// Federated admissions refused by (or on behalf of) the peered
    /// chain, by taxonomy cause — includes `peer_unreachable` verdicts
    /// generated locally when the link is down.
    peer_rejects: [AtomicU64; Reject::COUNT],
    /// Cross-domain admissions currently parked on a downstream
    /// answer.
    fed_in_flight: AtomicU64,
    /// PEER-COMMIT frames whose terminal-computed ⟨r, d⟩ disagreed
    /// with this domain's tentative booking (the booking is released).
    fed_commit_mismatches: AtomicU64,
    /// Journal records shipped to the standby but not yet covered by a
    /// REPL-ACK watermark (primary side; zero without a replica).
    repl_lag_records: AtomicU64,
    /// Raw WAL bytes shipped over the replication link since startup
    /// (bootstrap prefixes included).
    repl_bytes_total: AtomicU64,
    /// Round-trip time from shipping a records batch to the ack whose
    /// stamp echoes it (primary side).
    repl_ack_rtt_ns: LogHistogram,
    /// 1 while a standby is attached and tailing, else 0.
    repl_attached: AtomicU64,
    /// Times the replication link died and the primary failed open
    /// (released every gated DEC and detached the sinks).
    repl_demotions: AtomicU64,
    /// Shipped records applied into the live broker image (standby
    /// side; zero on a primary).
    repl_applied_records: AtomicU64,
    /// Scenario-engine phase the domain is being driven through
    /// (0 = none, 1 = ramp, 2 = replay, 3 = probe).
    scenario_phase: AtomicU64,
    /// Reservations currently resident, as reported by the scenario
    /// driver (distinct from `interned_flows`, which is a broker-side
    /// occupancy gauge: this one is the driver's intent).
    scenario_resident_flows: AtomicU64,
    /// Daemon resident-set size in bytes, sampled when the stats
    /// endpoint snapshots (zero where /proc is unavailable).
    rss_bytes: AtomicU64,
    /// Topology links administratively marked down (scenario link
    /// failures) since startup.
    link_downs: AtomicU64,
    /// Topology links restored since startup.
    link_ups: AtomicU64,
}

impl MetricsRegistry {
    /// A registry for `shards` broker shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        MetricsRegistry {
            started: Instant::now(),
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
            setup_ns: LogHistogram::new(),
            unrouted: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            open_connections_peak: AtomicU64::new(0),
            accepts: AtomicU64::new(0),
            conn_errors: AtomicU64::new(0),
            conn_idle_closed: AtomicU64::new(0),
            batch_frames: LogHistogram::new(),
            decide_batch: LogHistogram::new(),
            peer_rtt_ns: LogHistogram::new(),
            peer_rejects: Default::default(),
            fed_in_flight: AtomicU64::new(0),
            fed_commit_mismatches: AtomicU64::new(0),
            repl_lag_records: AtomicU64::new(0),
            repl_bytes_total: AtomicU64::new(0),
            repl_ack_rtt_ns: LogHistogram::new(),
            repl_attached: AtomicU64::new(0),
            repl_demotions: AtomicU64::new(0),
            repl_applied_records: AtomicU64::new(0),
            scenario_phase: AtomicU64::new(0),
            scenario_resident_flows: AtomicU64::new(0),
            rss_bytes: AtomicU64::new(0),
            link_downs: AtomicU64::new(0),
            link_ups: AtomicU64::new(0),
        }
    }

    /// Shard `i`'s metrics slot.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards[i]
    }

    /// Number of shard slots.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Records one end-to-end setup latency sample.
    pub fn record_setup_ns(&self, ns: u64) {
        self.setup_ns.record(ns);
    }

    /// Counts a request refused because no shard serves its path.
    pub fn record_unrouted(&self) {
        self.unrouted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an accepted connection and raises the open gauge (and its
    /// high-water mark).
    pub fn record_accept(&self) {
        self.accepts.fetch_add(1, Ordering::Relaxed);
        let open = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.open_connections_peak
            .fetch_max(open, Ordering::Relaxed);
    }

    /// Counts an outbound (dialed) connection and raises the open
    /// gauge. The federation peer link rides the same close path as
    /// accepted sockets, so it must ride the same gauge up — else the
    /// gauge wraps below zero when the link dies.
    pub fn record_dial(&self) {
        let open = self.open_connections.fetch_add(1, Ordering::Relaxed) + 1;
        self.open_connections_peak
            .fetch_max(open, Ordering::Relaxed);
    }

    /// Lowers the open-connections gauge (clean close or error alike).
    pub fn record_conn_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts a connection torn down by an I/O error or protocol
    /// violation (the close itself is reported separately).
    pub fn record_conn_error(&self) {
        self.conn_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a connection closed by the idle/slow-loris deadline: it
    /// sat mid-frame past the configured timeout.
    pub fn record_conn_idle_closed(&self) {
        self.conn_idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records how many COPS frames one readiness pass decoded (passes
    /// that decode nothing are not recorded).
    pub fn record_batch_frames(&self, frames: u64) {
        self.batch_frames.record(frames);
    }

    /// Records the size of one batched-decide group: requests sharing an
    /// interned path×class row that one seqlock summary read served.
    pub fn record_decide_batch(&self, requests: u64) {
        self.decide_batch.record(requests);
    }

    /// Records one PEER-DEC round trip to the downstream peer domain.
    pub fn record_peer_rtt_ns(&self, ns: u64) {
        self.peer_rtt_ns.record(ns);
    }

    /// Counts a federated admission refused through (or because of)
    /// the peered chain, under its taxonomy cause.
    pub fn record_peer_reject(&self, cause: Reject) {
        self.peer_rejects[cause.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the parked cross-domain admissions gauge.
    pub fn set_fed_in_flight(&self, in_flight: u64) {
        self.fed_in_flight.store(in_flight, Ordering::Relaxed);
    }

    /// Counts a PEER-COMMIT whose ⟨r, d⟩ disagreed with the local
    /// tentative booking (which is released in response).
    pub fn record_fed_commit_mismatch(&self) {
        self.fed_commit_mismatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the shipped-but-unacked journal records gauge
    /// (`bb_repl_lag_records`).
    pub fn set_repl_lag(&self, records: u64) {
        self.repl_lag_records.store(records, Ordering::Relaxed);
    }

    /// Adds shipped replication payload bytes (`bb_repl_bytes_total`).
    pub fn record_repl_bytes(&self, bytes: u64) {
        self.repl_bytes_total.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one ship→ack round trip on the replication link.
    pub fn record_repl_ack_rtt_ns(&self, ns: u64) {
        self.repl_ack_rtt_ns.record(ns);
    }

    /// Raises or lowers the standby-attached gauge.
    pub fn set_repl_attached(&self, attached: bool) {
        self.repl_attached
            .store(u64::from(attached), Ordering::Relaxed);
    }

    /// Counts a replication-link death the primary survived by failing
    /// open (gated DECs released, sinks detached).
    pub fn record_repl_demotion(&self) {
        self.repl_demotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Updates the standby-side applied-records counter.
    pub fn set_repl_applied(&self, records: u64) {
        self.repl_applied_records.store(records, Ordering::Relaxed);
    }

    /// Updates the scenario-phase gauge (0 = none, 1 = ramp, 2 =
    /// replay, 3 = probe).
    pub fn set_scenario_phase(&self, phase: u64) {
        self.scenario_phase.store(phase, Ordering::Relaxed);
    }

    /// Updates the driver-reported resident-reservations gauge.
    pub fn set_scenario_resident_flows(&self, flows: u64) {
        self.scenario_resident_flows.store(flows, Ordering::Relaxed);
    }

    /// Updates the daemon RSS gauge (bytes).
    pub fn set_rss_bytes(&self, bytes: u64) {
        self.rss_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Counts a topology link administratively marked down.
    pub fn record_link_down(&self) {
        self.link_downs.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a topology link restored to service.
    pub fn record_link_up(&self) {
        self.link_ups.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value of the open-connections gauge.
    #[must_use]
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// A serializable point-in-time view of every series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards: Vec<ShardSnapshot> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(i))
            .collect();
        let admitted = shards.iter().map(|s| s.admitted).sum();
        let rejected = shards
            .iter()
            .flat_map(|s| s.rejected.iter())
            .map(|r| r.count)
            .sum();
        let overloaded = shards.iter().map(|s| s.overloaded).sum();
        let released = shards.iter().map(|s| s.released).sum();
        MetricsSnapshot {
            uptime_ns: u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            admitted,
            rejected,
            overloaded,
            released,
            unrouted: self.unrouted.load(Ordering::Relaxed),
            shards,
            setup_ns: self.setup_ns.snapshot(),
            conns: ConnSnapshot {
                open: self.open_connections.load(Ordering::Relaxed),
                open_peak: self.open_connections_peak.load(Ordering::Relaxed),
                accepts: self.accepts.load(Ordering::Relaxed),
                errors: self.conn_errors.load(Ordering::Relaxed),
                idle_closed: self.conn_idle_closed.load(Ordering::Relaxed),
                batch_frames: self.batch_frames.snapshot(),
                decide_batch: self.decide_batch.snapshot(),
            },
            fed: FederationSnapshot {
                peer_rtt_ns: self.peer_rtt_ns.snapshot(),
                peer_rejects: Reject::ALL
                    .iter()
                    .map(|&cause| ReasonCount {
                        reason: cause.label().to_string(),
                        count: self.peer_rejects[cause.index()].load(Ordering::Relaxed),
                    })
                    .collect(),
                in_flight: self.fed_in_flight.load(Ordering::Relaxed),
                commit_mismatches: self.fed_commit_mismatches.load(Ordering::Relaxed),
            },
            repl: ReplicationSnapshot {
                lag_records: self.repl_lag_records.load(Ordering::Relaxed),
                bytes_total: self.repl_bytes_total.load(Ordering::Relaxed),
                ack_rtt_ns: self.repl_ack_rtt_ns.snapshot(),
                attached: self.repl_attached.load(Ordering::Relaxed),
                demotions: self.repl_demotions.load(Ordering::Relaxed),
                applied_records: self.repl_applied_records.load(Ordering::Relaxed),
            },
            scenario: ScenarioSnapshot {
                phase: self.scenario_phase.load(Ordering::Relaxed),
                resident_flows: self.scenario_resident_flows.load(Ordering::Relaxed),
                rss_bytes: self.rss_bytes.load(Ordering::Relaxed),
                link_downs: self.link_downs.load(Ordering::Relaxed),
                link_ups: self.link_ups.load(Ordering::Relaxed),
            },
        }
    }
}

/// Point-in-time view of the scenario-engine series; all zeros on a
/// daemon that no scenario driver has touched.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioSnapshot {
    /// Driver phase: 0 = none, 1 = ramp, 2 = replay, 3 = probe.
    pub phase: u64,
    /// Reservations the scenario driver currently holds resident.
    pub resident_flows: u64,
    /// Daemon resident-set size in bytes at the last stats snapshot.
    pub rss_bytes: u64,
    /// Links administratively failed since startup.
    pub link_downs: u64,
    /// Links restored since startup.
    pub link_ups: u64,
}

/// Point-in-time view of the WAL-shipping replication layer; all zeros
/// on a daemon with neither a standby attached nor a primary tailed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationSnapshot {
    /// Journal records shipped but not yet acked (`bb_repl_lag_records`).
    pub lag_records: u64,
    /// Replication payload bytes shipped since startup.
    pub bytes_total: u64,
    /// Ship→ack round-trip latency on the replication link.
    pub ack_rtt_ns: HistogramSnapshot,
    /// 1 while a standby is attached, else 0.
    pub attached: u64,
    /// Replication-link deaths the primary failed open over.
    pub demotions: u64,
    /// Records applied into the live image (standby side).
    pub applied_records: u64,
}

/// Point-in-time view of the broker-to-broker federation layer; all
/// zeros on a daemon that neither dials a peer nor is dialed by one.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FederationSnapshot {
    /// PEER-DEC round-trip latency to the downstream peer domain.
    pub peer_rtt_ns: HistogramSnapshot,
    /// Federated refusals relayed from (or generated about) the peered
    /// chain, by taxonomy cause.
    pub peer_rejects: Vec<ReasonCount>,
    /// Cross-domain admissions currently parked on a downstream
    /// answer.
    pub in_flight: u64,
    /// PEER-COMMIT assertions that disagreed with the local tentative
    /// booking (absent in snapshots from older builds).
    #[serde(default)]
    pub commit_mismatches: u64,
}

impl FederationSnapshot {
    /// Total federated refusals across all causes.
    #[must_use]
    pub fn peer_rejects_total(&self) -> u64 {
        self.peer_rejects.iter().map(|r| r.count).sum()
    }
}

/// Point-in-time view of the connection layer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnSnapshot {
    /// COPS connections currently open.
    pub open: u64,
    /// High-water mark of `open`.
    pub open_peak: u64,
    /// Connections accepted since startup.
    pub accepts: u64,
    /// Connections torn down by I/O errors or protocol violations.
    pub errors: u64,
    /// Connections closed by the idle (slow-loris) deadline.
    pub idle_closed: u64,
    /// COPS frames decoded per readiness pass.
    pub batch_frames: HistogramSnapshot,
    /// Requests decided per path×class batch group (absent in snapshots
    /// from older builds).
    #[serde(default)]
    pub decide_batch: HistogramSnapshot,
}

/// One rejection-cause counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReasonCount {
    /// Taxonomy label ([`Reject::label`]).
    pub reason: String,
    /// Rejections attributed to it.
    pub count: u64,
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Requests admitted.
    pub admitted: u64,
    /// Rejections by taxonomy cause (all causes listed, zeros included,
    /// so the schema is stable for CI consumers).
    pub rejected: Vec<ReasonCount>,
    /// Flows released via DRQ.
    pub released: u64,
    /// Requests shed at this shard's queue.
    pub overloaded: u64,
    /// Job-queue depth when last sampled.
    pub queue_depth: u64,
    /// Highest queue depth observed.
    pub queue_peak: u64,
    /// Admission-decision latency histogram.
    pub decision_ns: HistogramSnapshot,
    /// Decide-phase latency histogram.
    pub decide_ns: HistogramSnapshot,
    /// Commit-phase latency histogram.
    pub commit_ns: HistogramSnapshot,
    /// Plans recommitted after arriving with a stale epoch stamp.
    pub plan_retries: u64,
    /// Retried plans whose admit flipped to a rejection.
    pub plan_aborts: u64,
    /// Path-summary cache hits at the decide phase.
    pub path_cache_hits: u64,
    /// Path-summary cache misses (summary recomputed).
    pub path_cache_misses: u64,
    /// Torn seqlock summary reads retried or degraded to a miss
    /// (absent in snapshots from older builds).
    #[serde(default)]
    pub seqlock_retries: u64,
    /// Contingency-bandwidth grants issued (joins and leaves).
    pub grants: u64,
    /// Grants released by the bounding-period timer.
    pub grant_expiries: u64,
    /// Grants reset early by buffer-empty edge feedback.
    pub grant_resets: u64,
    /// Live flows interned at the COPS boundary.
    pub interned_flows: u64,
    /// Flow-arena slot footprint (live + vacant).
    pub flow_slots: u64,
    /// Live macroflows in the broker's registry.
    pub macroflows: u64,
    /// Macroflow-arena slot footprint (live + vacant).
    pub macroflow_slots: u64,
    /// WAL fsync latency histogram (group-commit flushes and rotation
    /// seals); empty when the daemon runs without durability.
    pub wal_fsync_ns: HistogramSnapshot,
    /// Bytes in the current journal epoch as of the last flush.
    pub wal_bytes: u64,
    /// Size of the latest snapshot image on disk.
    pub snapshot_bytes: u64,
    /// Journal records replayed during startup recovery.
    pub recovery_replayed_records: u64,
}

impl ShardSnapshot {
    /// Total rejections on this shard.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().map(|r| r.count).sum()
    }
}

/// Point-in-time view of the whole registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the registry was created.
    pub uptime_ns: u64,
    /// Requests admitted, domain-wide.
    pub admitted: u64,
    /// Requests rejected by admission control or shed, domain-wide
    /// (sum over every taxonomy cause, including `overloaded` when a
    /// shard recorded the shed).
    pub rejected: u64,
    /// Requests shed at shard queues.
    pub overloaded: u64,
    /// Flows released via DRQ.
    pub released: u64,
    /// Requests refused before sharding (unserved path).
    pub unrouted: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardSnapshot>,
    /// End-to-end setup latency histogram.
    pub setup_ns: HistogramSnapshot,
    /// Connection-layer series (registry-wide).
    pub conns: ConnSnapshot,
    /// Broker-to-broker federation series (absent in snapshots from
    /// builds before multi-domain support).
    #[serde(default)]
    pub fed: FederationSnapshot,
    /// WAL-shipping replication series (absent in snapshots from
    /// builds before high availability).
    #[serde(default)]
    pub repl: ReplicationSnapshot,
    /// Scenario-engine series (absent in snapshots from builds before
    /// the workload scenario pack).
    #[serde(default)]
    pub scenario: ScenarioSnapshot,
}

impl MetricsSnapshot {
    /// Decisions that reached a broker shard (admitted + rejected).
    #[must_use]
    pub fn decided(&self) -> u64 {
        self.admitted + self.rejected
    }

    /// All shards' decision histograms merged into one.
    #[must_use]
    pub fn decision_ns_merged(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for s in &self.shards {
            merged.merge(&s.decision_ns);
        }
        merged
    }

    /// The deepest current queue across shards.
    #[must_use]
    pub fn queue_depth_max(&self) -> u64 {
        self.shards.iter().map(|s| s.queue_depth).max().unwrap_or(0)
    }

    /// Fraction of decide-phase path-summary lookups served from cache,
    /// across all shards; `None` before any lookup happened.
    #[must_use]
    pub fn path_cache_hit_rate(&self) -> Option<f64> {
        let hits: u64 = self.shards.iter().map(|s| s.path_cache_hits).sum();
        let misses: u64 = self.shards.iter().map(|s| s.path_cache_misses).sum();
        let total = hits + misses;
        #[allow(clippy::cast_precision_loss)]
        (total > 0).then(|| hits as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_shards_and_causes() {
        let reg = MetricsRegistry::new(3);
        reg.shard(0).record_admit();
        reg.shard(0).record_admit();
        reg.shard(1).record_reject(Reject::Bandwidth);
        reg.shard(2).record_reject(Reject::DuplicateFlow);
        reg.shard(2).record_shed();
        reg.shard(2).record_reject(Reject::Overloaded);
        reg.shard(1).record_release();
        reg.record_unrouted();
        let snap = reg.snapshot();
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.rejected, 3);
        assert_eq!(snap.overloaded, 1);
        assert_eq!(snap.released, 1);
        assert_eq!(snap.unrouted, 1);
        assert_eq!(snap.decided(), 5);
        // Every shard lists the full taxonomy, zeros included.
        for s in &snap.shards {
            assert_eq!(s.rejected.len(), Reject::COUNT);
        }
        assert_eq!(
            snap.shards[1].rejected[Reject::Bandwidth.index()],
            ReasonCount {
                reason: "bandwidth".into(),
                count: 1
            }
        );
    }

    #[test]
    fn queue_gauge_tracks_peak() {
        let reg = MetricsRegistry::new(1);
        reg.shard(0).set_queue_depth(3);
        reg.shard(0).set_queue_depth(17);
        reg.shard(0).set_queue_depth(4);
        let s = &reg.snapshot().shards[0];
        assert_eq!(s.queue_depth, 4);
        assert_eq!(s.queue_peak, 17);
    }

    #[test]
    fn decision_histograms_merge_across_shards() {
        let reg = MetricsRegistry::new(2);
        reg.shard(0).record_decision_ns(100);
        reg.shard(1).record_decision_ns(1_000_000);
        let merged = reg.snapshot().decision_ns_merged();
        assert_eq!(merged.count, 2);
        assert!(merged.quantile_ns(1.0).unwrap() >= 1_000_000);
    }

    #[test]
    fn pipeline_gauges_are_absolute_and_hit_rate_aggregates() {
        let reg = MetricsRegistry::new(2);
        assert_eq!(reg.snapshot().path_cache_hit_rate(), None);
        reg.shard(0).set_pipeline_gauges(2, 1, 30, 10);
        reg.shard(0).set_pipeline_gauges(3, 1, 60, 20);
        reg.shard(1).set_pipeline_gauges(0, 0, 20, 0);
        reg.shard(0).set_seqlock_retries(5);
        reg.shard(0).set_seqlock_retries(7);
        reg.shard(0).record_decide_ns(500);
        reg.shard(0).record_commit_ns(200);
        let snap = reg.snapshot();
        // Stores overwrite (running totals), they don't accumulate.
        assert_eq!(snap.shards[0].plan_retries, 3);
        assert_eq!(snap.shards[0].plan_aborts, 1);
        assert_eq!(snap.shards[0].decide_ns.count, 1);
        assert_eq!(snap.shards[0].commit_ns.count, 1);
        assert_eq!(snap.shards[0].seqlock_retries, 7);
        assert_eq!(snap.shards[1].seqlock_retries, 0);
        // (60 + 20) hits over (80 + 20) lookups.
        assert_eq!(snap.path_cache_hit_rate(), Some(0.8));
    }

    #[test]
    fn durability_series_surface_in_snapshots() {
        let reg = MetricsRegistry::new(2);
        reg.shard(0).record_wal_fsync_ns(250_000);
        reg.shard(0).record_wal_fsync_ns(1_000_000);
        reg.shard(0).set_wal_bytes(4096);
        reg.shard(0).set_snapshot_bytes(1 << 20);
        reg.shard(0).set_recovery_replayed(42);
        let snap = reg.snapshot();
        let s = &snap.shards[0];
        assert_eq!(s.wal_fsync_ns.count, 2);
        assert_eq!(s.wal_bytes, 4096);
        assert_eq!(s.snapshot_bytes, 1 << 20);
        assert_eq!(s.recovery_replayed_records, 42);
        // A shard that never touched the WAL reports empty series.
        assert_eq!(snap.shards[1].wal_fsync_ns.count, 0);
        assert_eq!(snap.shards[1].wal_bytes, 0);
        let text = serde::json::to_string(&snap);
        let back: MetricsSnapshot = serde::json::from_str(&text).expect("roundtrip");
        assert_eq!(back, snap);
    }

    #[test]
    fn connection_series_track_gauge_peak_and_batches() {
        let reg = MetricsRegistry::new(1);
        for _ in 0..3 {
            reg.record_accept();
        }
        reg.record_conn_closed();
        reg.record_conn_error();
        reg.record_conn_closed();
        reg.record_conn_idle_closed();
        reg.record_conn_closed();
        reg.record_accept();
        reg.record_batch_frames(1);
        reg.record_batch_frames(64);
        reg.record_decide_batch(8);
        reg.record_decide_batch(1);
        reg.record_decide_batch(32);
        assert_eq!(reg.open_connections(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.conns.open, 1);
        assert_eq!(snap.conns.open_peak, 3);
        assert_eq!(snap.conns.accepts, 4);
        assert_eq!(snap.conns.errors, 1);
        assert_eq!(snap.conns.idle_closed, 1);
        assert_eq!(snap.conns.batch_frames.count, 2);
        assert!(snap.conns.batch_frames.quantile_ns(1.0).unwrap() >= 64);
        assert_eq!(snap.conns.decide_batch.count, 3);
        assert!(snap.conns.decide_batch.quantile_ns(1.0).unwrap() >= 32);
    }

    #[test]
    fn old_snapshots_without_seqlock_fields_still_deserialize() {
        // Snapshots serialized before the seqlock/batched-decide series
        // existed lack `seqlock_retries` and `conns.decide_batch`;
        // `#[serde(default)]` must fill them with zeros so bench_gate
        // can still read an old baseline file.
        let reg = MetricsRegistry::new(1);
        let snap = reg.snapshot();
        let text = serde::json::to_string(&snap);
        let stripped = text
            .replace("\"seqlock_retries\":0,", "")
            .replace(",\"seqlock_retries\":0", "");
        assert_ne!(stripped, text, "field name drifted; update this test");
        let back: MetricsSnapshot = serde::json::from_str(&stripped).expect("lenient decode");
        assert_eq!(back.shards[0].seqlock_retries, 0);
    }

    #[test]
    fn replication_series_surface_and_old_snapshots_decode() {
        let reg = MetricsRegistry::new(1);
        reg.set_repl_attached(true);
        reg.set_repl_lag(7);
        reg.record_repl_bytes(1024);
        reg.record_repl_bytes(512);
        reg.record_repl_ack_rtt_ns(250_000);
        reg.record_repl_demotion();
        reg.set_repl_applied(42);
        reg.record_fed_commit_mismatch();
        let snap = reg.snapshot();
        assert_eq!(snap.repl.attached, 1);
        assert_eq!(snap.repl.lag_records, 7);
        assert_eq!(snap.repl.bytes_total, 1536);
        assert_eq!(snap.repl.ack_rtt_ns.count, 1);
        assert_eq!(snap.repl.demotions, 1);
        assert_eq!(snap.repl.applied_records, 42);
        assert_eq!(snap.fed.commit_mismatches, 1);
        // Snapshots serialized before replication existed lack the
        // whole `repl` block and the mismatch counter; `#[serde(default)]`
        // must zero-fill both.
        let text = serde::json::to_string(&snap);
        let repl_block = format!(",\"repl\":{}", serde::json::to_string(&snap.repl));
        let stripped = text
            .replace(",\"commit_mismatches\":1", "")
            .replace(&repl_block, "");
        assert_ne!(stripped, text, "field name drifted; update this test");
        assert!(!stripped.contains("lag_records"));
        let back: MetricsSnapshot = serde::json::from_str(&stripped).expect("lenient decode");
        assert_eq!(back.fed.commit_mismatches, 0);
        assert_eq!(back.repl, ReplicationSnapshot::default());
    }

    #[test]
    fn scenario_series_surface_and_old_snapshots_decode() {
        let reg = MetricsRegistry::new(1);
        reg.set_scenario_phase(2);
        reg.set_scenario_resident_flows(1_000_000);
        reg.set_rss_bytes(3 << 30);
        reg.record_link_down();
        reg.record_link_down();
        reg.record_link_up();
        let snap = reg.snapshot();
        assert_eq!(snap.scenario.phase, 2);
        assert_eq!(snap.scenario.resident_flows, 1_000_000);
        assert_eq!(snap.scenario.rss_bytes, 3 << 30);
        assert_eq!(snap.scenario.link_downs, 2);
        assert_eq!(snap.scenario.link_ups, 1);
        // Snapshots serialized before the scenario pack existed lack the
        // whole `scenario` block; `#[serde(default)]` must zero-fill it.
        let text = serde::json::to_string(&snap);
        let block = format!(",\"scenario\":{}", serde::json::to_string(&snap.scenario));
        let stripped = text.replace(&block, "");
        assert_ne!(stripped, text, "field name drifted; update this test");
        assert!(!stripped.contains("resident_flows"));
        let back: MetricsSnapshot = serde::json::from_str(&stripped).expect("lenient decode");
        assert_eq!(back.scenario, ScenarioSnapshot::default());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new(2);
        reg.shard(0).record_admit();
        reg.shard(0).record_decision_ns(12_345);
        reg.record_setup_ns(99_999);
        let snap = reg.snapshot();
        let text = serde::json::to_string(&snap);
        let back: MetricsSnapshot = serde::json::from_str(&text).expect("roundtrip");
        assert_eq!(back, snap);
    }
}
