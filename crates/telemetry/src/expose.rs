//! Prometheus text exposition (version 0.0.4) of a metrics snapshot.
//!
//! Rendered from a [`MetricsSnapshot`] — not from the live registry —
//! so one consistent view feeds both the JSON endpoint and the scrape
//! endpoint. Histograms follow the Prometheus convention: cumulative
//! `_bucket{le="…"}` series ending in `le="+Inf"`, plus `_sum` and
//! `_count`.

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;
use crate::registry::MetricsSnapshot;

fn write_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for b in &h.buckets {
        cumulative += b.count;
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
            b.le_ns
        );
    }
    let sep = if labels.is_empty() { "" } else { "," };
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum_ns);
        let _ = writeln!(out, "{name}_count {}", h.count);
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum_ns);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
    }
}

/// Like [`write_histogram`], but renders a nanosecond-sampled histogram
/// in base seconds — the Prometheus convention for `_seconds` series.
/// Bucket bounds and the sum divide by 1e9; counts are untouched.
fn write_histogram_seconds(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for b in &h.buckets {
        cumulative += b.count;
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
            b.le_ns as f64 / 1e9
        );
    }
    let sep = if labels.is_empty() { "" } else { "," };
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum_ns as f64 / 1e9);
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
}

/// Renders the snapshot as Prometheus text exposition.
#[must_use]
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);

    let _ = writeln!(
        out,
        "# HELP bb_uptime_seconds Seconds since the daemon's metrics registry started."
    );
    let _ = writeln!(out, "# TYPE bb_uptime_seconds gauge");
    let _ = writeln!(out, "bb_uptime_seconds {}", snap.uptime_ns as f64 / 1e9);

    let _ = writeln!(
        out,
        "# HELP bb_admitted_total Admission requests granted, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_admitted_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_admitted_total{{shard=\"{}\"}} {}",
            s.shard, s.admitted
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_rejected_total Admission requests rejected, per shard and taxonomy cause."
    );
    let _ = writeln!(out, "# TYPE bb_rejected_total counter");
    for s in &snap.shards {
        for r in &s.rejected {
            let _ = writeln!(
                out,
                "bb_rejected_total{{shard=\"{}\",reason=\"{}\"}} {}",
                s.shard, r.reason, r.count
            );
        }
    }

    let _ = writeln!(
        out,
        "# HELP bb_released_total Flows released via DRQ, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_released_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_released_total{{shard=\"{}\"}} {}",
            s.shard, s.released
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_shed_total Requests shed at a full shard queue, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_shed_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_shed_total{{shard=\"{}\"}} {}",
            s.shard, s.overloaded
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_unrouted_total Requests refused because no shard serves their path."
    );
    let _ = writeln!(out, "# TYPE bb_unrouted_total counter");
    let _ = writeln!(out, "bb_unrouted_total {}", snap.unrouted);

    let _ = writeln!(
        out,
        "# HELP bb_queue_depth Shard job-queue depth at the last dequeue."
    );
    let _ = writeln!(out, "# TYPE bb_queue_depth gauge");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_queue_depth{{shard=\"{}\"}} {}",
            s.shard, s.queue_depth
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_queue_depth_peak Shard job-queue high-water mark."
    );
    let _ = writeln!(out, "# TYPE bb_queue_depth_peak gauge");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_queue_depth_peak{{shard=\"{}\"}} {}",
            s.shard, s.queue_peak
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_decision_latency_ns Admission-decision latency inside the broker, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE bb_decision_latency_ns histogram");
    for s in &snap.shards {
        write_histogram(
            &mut out,
            "bb_decision_latency_ns",
            &format!("shard=\"{}\"", s.shard),
            &s.decision_ns,
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_decide_latency_ns Decide-phase (read-only admissibility) latency, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE bb_decide_latency_ns histogram");
    for s in &snap.shards {
        write_histogram(
            &mut out,
            "bb_decide_latency_ns",
            &format!("shard=\"{}\"", s.shard),
            &s.decide_ns,
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_commit_latency_ns Commit-phase (revalidate + bookkeeping) latency, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE bb_commit_latency_ns histogram");
    for s in &snap.shards {
        write_histogram(
            &mut out,
            "bb_commit_latency_ns",
            &format!("shard=\"{}\"", s.shard),
            &s.commit_ns,
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_plan_retries_total Plans recommitted after a stale epoch stamp, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_plan_retries_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_plan_retries_total{{shard=\"{}\"}} {}",
            s.shard, s.plan_retries
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_plan_aborts_total Retried plans whose admit flipped to a rejection, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_plan_aborts_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_plan_aborts_total{{shard=\"{}\"}} {}",
            s.shard, s.plan_aborts
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_path_cache_hits_total Decide-phase path-summary cache hits, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_path_cache_hits_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_path_cache_hits_total{{shard=\"{}\"}} {}",
            s.shard, s.path_cache_hits
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_path_cache_misses_total Decide-phase path-summary cache misses, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_path_cache_misses_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_path_cache_misses_total{{shard=\"{}\"}} {}",
            s.shard, s.path_cache_misses
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_seqlock_retries_total Torn seqlock summary reads retried or degraded to a miss, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_seqlock_retries_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_seqlock_retries_total{{shard=\"{}\"}} {}",
            s.shard, s.seqlock_retries
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_contingency_grants_total Contingency-bandwidth grants issued, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_contingency_grants_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_contingency_grants_total{{shard=\"{}\"}} {}",
            s.shard, s.grants
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_contingency_expiries_total Grants released by the bounding-period timer, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_contingency_expiries_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_contingency_expiries_total{{shard=\"{}\"}} {}",
            s.shard, s.grant_expiries
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_contingency_resets_total Grants reset early by buffer-empty edge feedback, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_contingency_resets_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_contingency_resets_total{{shard=\"{}\"}} {}",
            s.shard, s.grant_resets
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_interned_flows Live flows interned at the COPS boundary, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_interned_flows gauge");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_interned_flows{{shard=\"{}\"}} {}",
            s.shard, s.interned_flows
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_flow_arena_slots Flow-arena slot footprint (live + vacant), per shard."
    );
    let _ = writeln!(out, "# TYPE bb_flow_arena_slots gauge");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_flow_arena_slots{{shard=\"{}\"}} {}",
            s.shard, s.flow_slots
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_macroflows Live macroflows in the broker registry, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_macroflows gauge");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_macroflows{{shard=\"{}\"}} {}",
            s.shard, s.macroflows
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_macroflow_arena_slots Macroflow-arena slot footprint (live + vacant), per shard."
    );
    let _ = writeln!(out, "# TYPE bb_macroflow_arena_slots gauge");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_macroflow_arena_slots{{shard=\"{}\"}} {}",
            s.shard, s.macroflow_slots
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_wal_fsync_seconds WAL fsync latency (group-commit flushes and rotation seals), per shard."
    );
    let _ = writeln!(out, "# TYPE bb_wal_fsync_seconds histogram");
    for s in &snap.shards {
        write_histogram_seconds(
            &mut out,
            "bb_wal_fsync_seconds",
            &format!("shard=\"{}\"", s.shard),
            &s.wal_fsync_ns,
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_wal_bytes Bytes in the current journal epoch as of the last flush, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_wal_bytes gauge");
    for s in &snap.shards {
        let _ = writeln!(out, "bb_wal_bytes{{shard=\"{}\"}} {}", s.shard, s.wal_bytes);
    }

    let _ = writeln!(
        out,
        "# HELP bb_snapshot_bytes Size of the latest MIB snapshot image on disk, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_snapshot_bytes gauge");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_snapshot_bytes{{shard=\"{}\"}} {}",
            s.shard, s.snapshot_bytes
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_recovery_replayed_records_total Journal records replayed at startup recovery, per shard."
    );
    let _ = writeln!(out, "# TYPE bb_recovery_replayed_records_total counter");
    for s in &snap.shards {
        let _ = writeln!(
            out,
            "bb_recovery_replayed_records_total{{shard=\"{}\"}} {}",
            s.shard, s.recovery_replayed_records
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_setup_latency_ns End-to-end setup latency (dispatch to reply handoff), nanoseconds."
    );
    let _ = writeln!(out, "# TYPE bb_setup_latency_ns histogram");
    write_histogram(&mut out, "bb_setup_latency_ns", "", &snap.setup_ns);

    let _ = writeln!(
        out,
        "# HELP bb_open_connections COPS connections currently open."
    );
    let _ = writeln!(out, "# TYPE bb_open_connections gauge");
    let _ = writeln!(out, "bb_open_connections {}", snap.conns.open);

    let _ = writeln!(
        out,
        "# HELP bb_open_connections_peak High-water mark of open COPS connections."
    );
    let _ = writeln!(out, "# TYPE bb_open_connections_peak gauge");
    let _ = writeln!(out, "bb_open_connections_peak {}", snap.conns.open_peak);

    let _ = writeln!(
        out,
        "# HELP bb_accepts_total COPS connections accepted since startup."
    );
    let _ = writeln!(out, "# TYPE bb_accepts_total counter");
    let _ = writeln!(out, "bb_accepts_total {}", snap.conns.accepts);

    let _ = writeln!(
        out,
        "# HELP bb_conn_errors_total Connections torn down by I/O errors or protocol violations."
    );
    let _ = writeln!(out, "# TYPE bb_conn_errors_total counter");
    let _ = writeln!(out, "bb_conn_errors_total {}", snap.conns.errors);

    let _ = writeln!(
        out,
        "# HELP bb_conn_idle_closed_total Connections closed by the idle (slow-loris) deadline."
    );
    let _ = writeln!(out, "# TYPE bb_conn_idle_closed_total counter");
    let _ = writeln!(out, "bb_conn_idle_closed_total {}", snap.conns.idle_closed);

    let _ = writeln!(
        out,
        "# HELP bb_readiness_batch_frames COPS frames decoded per readiness pass (bucket bounds are frame counts)."
    );
    let _ = writeln!(out, "# TYPE bb_readiness_batch_frames histogram");
    write_histogram(
        &mut out,
        "bb_readiness_batch_frames",
        "",
        &snap.conns.batch_frames,
    );

    let _ = writeln!(
        out,
        "# HELP bb_decide_batch_size Requests decided per path-class batch group (bucket bounds are request counts)."
    );
    let _ = writeln!(out, "# TYPE bb_decide_batch_size histogram");
    write_histogram(
        &mut out,
        "bb_decide_batch_size",
        "",
        &snap.conns.decide_batch,
    );

    let _ = writeln!(
        out,
        "# HELP bb_peer_rtt_ns PEER-DEC round-trip latency to the downstream peer domain, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE bb_peer_rtt_ns histogram");
    write_histogram(&mut out, "bb_peer_rtt_ns", "", &snap.fed.peer_rtt_ns);

    let _ = writeln!(
        out,
        "# HELP bb_peer_rejects_total Federated admissions refused through the peered chain, by taxonomy cause."
    );
    let _ = writeln!(out, "# TYPE bb_peer_rejects_total counter");
    for r in &snap.fed.peer_rejects {
        let _ = writeln!(
            out,
            "bb_peer_rejects_total{{reason=\"{}\"}} {}",
            r.reason, r.count
        );
    }

    let _ = writeln!(
        out,
        "# HELP bb_fed_in_flight Cross-domain admissions parked on a downstream answer."
    );
    let _ = writeln!(out, "# TYPE bb_fed_in_flight gauge");
    let _ = writeln!(out, "bb_fed_in_flight {}", snap.fed.in_flight);

    let _ = writeln!(
        out,
        "# HELP bb_fed_commit_mismatches_total PEER-COMMIT assertions that disagreed with the local tentative booking."
    );
    let _ = writeln!(out, "# TYPE bb_fed_commit_mismatches_total counter");
    let _ = writeln!(
        out,
        "bb_fed_commit_mismatches_total {}",
        snap.fed.commit_mismatches
    );

    let _ = writeln!(
        out,
        "# HELP bb_repl_lag_records Journal records shipped to the standby but not yet acked."
    );
    let _ = writeln!(out, "# TYPE bb_repl_lag_records gauge");
    let _ = writeln!(out, "bb_repl_lag_records {}", snap.repl.lag_records);

    let _ = writeln!(
        out,
        "# HELP bb_repl_bytes_total Replication payload bytes shipped since startup."
    );
    let _ = writeln!(out, "# TYPE bb_repl_bytes_total counter");
    let _ = writeln!(out, "bb_repl_bytes_total {}", snap.repl.bytes_total);

    let _ = writeln!(
        out,
        "# HELP bb_repl_ack_rtt_ns Ship-to-ack round-trip latency on the replication link, nanoseconds."
    );
    let _ = writeln!(out, "# TYPE bb_repl_ack_rtt_ns histogram");
    write_histogram(&mut out, "bb_repl_ack_rtt_ns", "", &snap.repl.ack_rtt_ns);

    let _ = writeln!(
        out,
        "# HELP bb_repl_attached 1 while a standby is attached and tailing, else 0."
    );
    let _ = writeln!(out, "# TYPE bb_repl_attached gauge");
    let _ = writeln!(out, "bb_repl_attached {}", snap.repl.attached);

    let _ = writeln!(
        out,
        "# HELP bb_repl_demotions_total Replication-link deaths the primary failed open over."
    );
    let _ = writeln!(out, "# TYPE bb_repl_demotions_total counter");
    let _ = writeln!(out, "bb_repl_demotions_total {}", snap.repl.demotions);

    let _ = writeln!(
        out,
        "# HELP bb_repl_applied_records_total Shipped records applied into the live image (standby side)."
    );
    let _ = writeln!(out, "# TYPE bb_repl_applied_records_total counter");
    let _ = writeln!(
        out,
        "bb_repl_applied_records_total {}",
        snap.repl.applied_records
    );

    let _ = writeln!(
        out,
        "# HELP bb_scenario_phase Scenario-driver phase (0 none, 1 ramp, 2 replay, 3 probe)."
    );
    let _ = writeln!(out, "# TYPE bb_scenario_phase gauge");
    let _ = writeln!(out, "bb_scenario_phase {}", snap.scenario.phase);

    let _ = writeln!(
        out,
        "# HELP bb_scenario_resident_flows Reservations the scenario driver holds resident."
    );
    let _ = writeln!(out, "# TYPE bb_scenario_resident_flows gauge");
    let _ = writeln!(
        out,
        "bb_scenario_resident_flows {}",
        snap.scenario.resident_flows
    );

    let _ = writeln!(
        out,
        "# HELP bb_process_rss_bytes Daemon resident-set size at the last stats snapshot."
    );
    let _ = writeln!(out, "# TYPE bb_process_rss_bytes gauge");
    let _ = writeln!(out, "bb_process_rss_bytes {}", snap.scenario.rss_bytes);

    let _ = writeln!(
        out,
        "# HELP bb_link_transitions_total Administrative link state changes, by direction."
    );
    let _ = writeln!(out, "# TYPE bb_link_transitions_total counter");
    let _ = writeln!(
        out,
        "bb_link_transitions_total{{direction=\"down\"}} {}",
        snap.scenario.link_downs
    );
    let _ = writeln!(
        out,
        "bb_link_transitions_total{{direction=\"up\"}} {}",
        snap.scenario.link_ups
    );

    out
}

#[cfg(test)]
mod tests {
    use bb_core::signaling::Reject;

    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn exposition_lists_every_series_with_cumulative_buckets() {
        let reg = MetricsRegistry::new(2);
        reg.shard(0).record_admit();
        reg.shard(0).record_decision_ns(100);
        reg.shard(0).record_decision_ns(5_000);
        reg.shard(1).record_reject(Reject::Bandwidth);
        reg.shard(1).set_queue_depth(7);
        reg.record_setup_ns(80_000);
        reg.shard(0).record_decide_ns(60);
        reg.shard(0).record_commit_ns(40);
        reg.shard(0).set_pipeline_gauges(4, 2, 90, 10);
        reg.shard(0).set_seqlock_retries(11);
        reg.shard(0).set_contingency_gauges(6, 3, 1);
        reg.shard(0).set_store_gauges(12, 16, 2, 4);
        let text = prometheus(&reg.snapshot());

        assert!(text.contains("bb_admitted_total{shard=\"0\"} 1"));
        assert!(text.contains("bb_decide_latency_ns_count{shard=\"0\"} 1"));
        assert!(text.contains("bb_commit_latency_ns_count{shard=\"0\"} 1"));
        assert!(text.contains("bb_plan_retries_total{shard=\"0\"} 4"));
        assert!(text.contains("bb_plan_aborts_total{shard=\"0\"} 2"));
        assert!(text.contains("bb_path_cache_hits_total{shard=\"0\"} 90"));
        assert!(text.contains("bb_path_cache_misses_total{shard=\"0\"} 10"));
        assert!(text.contains("bb_seqlock_retries_total{shard=\"0\"} 11"));
        assert!(text.contains("bb_seqlock_retries_total{shard=\"1\"} 0"));
        assert!(text.contains("bb_contingency_grants_total{shard=\"0\"} 6"));
        assert!(text.contains("bb_contingency_expiries_total{shard=\"0\"} 3"));
        assert!(text.contains("bb_contingency_resets_total{shard=\"0\"} 1"));
        assert!(text.contains("bb_interned_flows{shard=\"0\"} 12"));
        assert!(text.contains("bb_flow_arena_slots{shard=\"0\"} 16"));
        assert!(text.contains("bb_macroflows{shard=\"0\"} 2"));
        assert!(text.contains("bb_macroflow_arena_slots{shard=\"0\"} 4"));
        assert!(text.contains("bb_rejected_total{shard=\"1\",reason=\"bandwidth\"} 1"));
        assert!(text.contains("bb_queue_depth{shard=\"1\"} 7"));
        assert!(text.contains("bb_queue_depth_peak{shard=\"1\"} 7"));
        assert!(text.contains("bb_decision_latency_ns_count{shard=\"0\"} 2"));
        assert!(text.contains("bb_decision_latency_ns_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("bb_setup_latency_ns_count 1"));
        assert!(text.contains("bb_setup_latency_ns_sum 80000"));

        // Buckets are cumulative: the le="+Inf" value equals _count, and
        // the running values never decrease.
        let mut last = 0u64;
        for line in text.lines() {
            if line.starts_with("bb_decision_latency_ns_bucket{shard=\"0\"") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "cumulative bucket decreased: {line}");
                last = v;
            }
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn connection_series_expose_with_cumulative_batch_buckets() {
        let reg = MetricsRegistry::new(1);
        for _ in 0..5 {
            reg.record_accept();
        }
        reg.record_conn_error();
        reg.record_conn_closed();
        reg.record_conn_idle_closed();
        reg.record_conn_closed();
        reg.record_batch_frames(3);
        reg.record_batch_frames(200);
        reg.record_decide_batch(4);
        reg.record_decide_batch(12);
        let text = prometheus(&reg.snapshot());

        assert!(text.contains("# TYPE bb_open_connections gauge"));
        assert!(text.contains("bb_open_connections 3"));
        assert!(text.contains("bb_open_connections_peak 5"));
        assert!(text.contains("# TYPE bb_accepts_total counter"));
        assert!(text.contains("bb_accepts_total 5"));
        assert!(text.contains("bb_conn_errors_total 1"));
        assert!(text.contains("bb_conn_idle_closed_total 1"));
        assert!(text.contains("# TYPE bb_readiness_batch_frames histogram"));
        assert!(text.contains("bb_readiness_batch_frames_count 2"));
        assert!(text.contains("bb_readiness_batch_frames_sum 203"));
        assert!(text.contains("bb_readiness_batch_frames_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("# TYPE bb_decide_batch_size histogram"));
        assert!(text.contains("bb_decide_batch_size_count 2"));
        assert!(text.contains("bb_decide_batch_size_sum 16"));
        assert!(text.contains("bb_decide_batch_size_bucket{le=\"+Inf\"} 2"));

        // Batch buckets are cumulative and end at _count.
        let mut last = 0u64;
        for line in text.lines() {
            if line.starts_with("bb_readiness_batch_frames_bucket") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "cumulative bucket decreased: {line}");
                last = v;
            }
        }
        assert_eq!(last, 2);
    }

    #[test]
    fn replication_and_mismatch_series_expose() {
        let reg = MetricsRegistry::new(1);
        reg.set_repl_attached(true);
        reg.set_repl_lag(3);
        reg.record_repl_bytes(2048);
        reg.record_repl_ack_rtt_ns(500_000);
        reg.record_repl_demotion();
        reg.set_repl_applied(9);
        reg.record_fed_commit_mismatch();
        let text = prometheus(&reg.snapshot());

        assert!(text.contains("# TYPE bb_repl_lag_records gauge"));
        assert!(text.contains("bb_repl_lag_records 3"));
        assert!(text.contains("# TYPE bb_repl_bytes_total counter"));
        assert!(text.contains("bb_repl_bytes_total 2048"));
        assert!(text.contains("# TYPE bb_repl_ack_rtt_ns histogram"));
        assert!(text.contains("bb_repl_ack_rtt_ns_count 1"));
        assert!(text.contains("bb_repl_ack_rtt_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("bb_repl_attached 1"));
        assert!(text.contains("bb_repl_demotions_total 1"));
        assert!(text.contains("bb_repl_applied_records_total 9"));
        assert!(text.contains("bb_fed_commit_mismatches_total 1"));
    }

    #[test]
    fn scenario_series_expose() {
        let reg = MetricsRegistry::new(1);
        reg.set_scenario_phase(1);
        reg.set_scenario_resident_flows(1_000_000);
        reg.set_rss_bytes(2_147_483_648);
        reg.record_link_down();
        reg.record_link_up();
        reg.record_link_down();
        let text = prometheus(&reg.snapshot());

        assert!(text.contains("# TYPE bb_scenario_phase gauge"));
        assert!(text.contains("bb_scenario_phase 1"));
        assert!(text.contains("# TYPE bb_scenario_resident_flows gauge"));
        assert!(text.contains("bb_scenario_resident_flows 1000000"));
        assert!(text.contains("# TYPE bb_process_rss_bytes gauge"));
        assert!(text.contains("bb_process_rss_bytes 2147483648"));
        assert!(text.contains("# TYPE bb_link_transitions_total counter"));
        assert!(text.contains("bb_link_transitions_total{direction=\"down\"} 2"));
        assert!(text.contains("bb_link_transitions_total{direction=\"up\"} 1"));
    }

    #[test]
    fn durability_series_expose_in_base_units() {
        let reg = MetricsRegistry::new(1);
        reg.shard(0).record_wal_fsync_ns(1_500_000);
        reg.shard(0).set_wal_bytes(4096);
        reg.shard(0).set_snapshot_bytes(1 << 20);
        reg.shard(0).set_recovery_replayed(7);
        let text = prometheus(&reg.snapshot());

        assert!(text.contains("# TYPE bb_wal_fsync_seconds histogram"));
        assert!(text.contains("bb_wal_fsync_seconds_count{shard=\"0\"} 1"));
        assert!(text.contains("bb_wal_fsync_seconds_bucket{shard=\"0\",le=\"+Inf\"} 1"));
        // The 1.5 ms sample exposes in seconds, not raw nanoseconds.
        assert!(text.contains("bb_wal_fsync_seconds_sum{shard=\"0\"} 0.0015"));
        assert!(text.contains("bb_wal_bytes{shard=\"0\"} 4096"));
        assert!(text.contains("bb_snapshot_bytes{shard=\"0\"} 1048576"));
        assert!(text.contains("bb_recovery_replayed_records_total{shard=\"0\"} 7"));

        // Every finite fsync bucket bound is in seconds: sub-second
        // bounds must exist (the 40 log2 buckets start at 1 ns = 1e-9 s).
        let finite_bounds: Vec<f64> = text
            .lines()
            .filter(|l| l.starts_with("bb_wal_fsync_seconds_bucket") && !l.contains("+Inf"))
            .map(|l| {
                let le = l.split("le=\"").nth(1).unwrap();
                le.split('"').next().unwrap().parse().unwrap()
            })
            .collect();
        assert!(!finite_bounds.is_empty());
        assert!(finite_bounds.iter().any(|&b| b < 1.0));
    }
}
