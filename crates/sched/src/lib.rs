//! Packet schedulers for the VTRS data plane and the IntServ baseline.
//!
//! Two families:
//!
//! * **Core-stateless** schedulers operate purely on the dynamic packet
//!   state stamped by the edge conditioner — they hold *no per-flow
//!   state*: [`CsVc`] (core-stateless virtual clock, rate-based,
//!   work-conserving), [`CJVc`] (core-jitter virtual clock, rate-based,
//!   non-work-conserving — packets are held until their virtual arrival
//!   time) and [`VtEdf`] (virtual-time earliest deadline first,
//!   delay-based).
//! * **Stateful baselines** used by the IntServ/Guaranteed-Service
//!   comparison: [`VirtualClock`] (per-flow virtual clocks), [`Wfq`]
//!   (fair queueing with self-clocked system virtual time), [`RcEdf`]
//!   (per-flow rate-controlled shapers feeding an EDF queue) and
//!   [`Fifo`].
//!
//! Every scheduler declares its [`Scheduler::kind`] (rate- or delay-based)
//! and its **error term** `Ψ` ([`Scheduler::error_term`]), the one number
//! the VTRS abstraction needs: each packet is guaranteed to depart by its
//! virtual finish time plus `Ψ`. For C̄SVC, VT-EDF, VC and WFQ the minimum
//! error term is `Lmax*/C` (largest packet among all flows over the link
//! capacity).
//!
//! All schedulers model a non-preemptive link of capacity `C`: a packet of
//! size `L` occupies the server for exactly `L/C`. The shared serving
//! engine lives in [`engine`]; [`schedulability`] holds the VT-EDF
//! schedulability condition (eq. 5) reused by the broker's admission
//! control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cjvc;
pub mod csvc;
pub mod engine;
pub mod fifo;
pub mod rcedf;
pub mod schedulability;
pub mod vc;
pub mod vtedf;
pub mod wfq;

pub use cjvc::CJVc;
pub use csvc::CsVc;
pub use fifo::Fifo;
pub use rcedf::RcEdf;
pub use vc::VirtualClock;
pub use vtedf::VtEdf;
pub use wfq::Wfq;

use qos_units::{Nanos, Rate, Time};
use vtrs::packet::Packet;
use vtrs::reference::HopKind;

/// A non-preemptive packet scheduler serving one outgoing link.
///
/// The interface is event-driven and sans-IO: callers [`enqueue`]
/// arriving packets, ask for the [`next_event`] time (the next departure
/// completion, or — for non-work-conserving schedulers — the next
/// eligibility instant) and [`dequeue`] packets whose transmission has
/// completed by `now`. Time never flows backwards: callers must pass
/// non-decreasing `now` values.
///
/// [`enqueue`]: Scheduler::enqueue
/// [`next_event`]: Scheduler::next_event
/// [`dequeue`]: Scheduler::dequeue
pub trait Scheduler: std::fmt::Debug {
    /// Whether the scheduler guarantees a rate (`r`) or a per-hop delay
    /// (`d`) — the classification the VTRS per-hop update keys on.
    fn kind(&self) -> HopKind;

    /// Link capacity `C`.
    fn capacity(&self) -> Rate;

    /// The scheduler's error term `Ψ`.
    fn error_term(&self) -> Nanos;

    /// Offers a packet arriving at `now`.
    fn enqueue(&mut self, now: Time, pkt: Packet);

    /// The next instant at which [`Scheduler::dequeue`] may yield a packet
    /// (a departure completion), or at which internal state changes (a
    /// held packet becoming eligible). `None` when idle and empty.
    fn next_event(&self) -> Option<Time>;

    /// Removes and returns the packet whose transmission completed at or
    /// before `now`, if any.
    fn dequeue(&mut self, now: Time) -> Option<Packet>;

    /// Number of packets currently held (queued, held for eligibility, or
    /// in service).
    fn backlog(&self) -> usize;

    /// Convenience: true when no packets are held.
    fn is_empty(&self) -> bool {
        self.backlog() == 0
    }
}
