//! Virtual Clock (VC) — the *stateful* rate-based baseline.
//!
//! The IntServ/Guaranteed-Service counterpart of [`crate::CsVc`] (§5 of
//! the paper pairs them explicitly). VC keeps a per-flow auxiliary clock:
//! on each arrival `auxVC ← max(now, auxVC) + L/r`, and packets are served
//! in `auxVC` order. Functionally it provides the same rate guarantee with
//! the same minimum error term `Ψ = Lmax*/C`; the difference the paper
//! cares about is architectural — VC requires per-flow state (the clock
//! and the reserved rate) to be installed at *every* router, which is
//! exactly what the bandwidth broker architecture removes.

use std::collections::HashMap;

use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::{FlowId, Packet};
use vtrs::reference::HopKind;

use crate::engine::PrioServer;
use crate::Scheduler;

#[derive(Debug)]
struct VcFlow {
    rate: Rate,
    clock: Time,
}

/// A Virtual Clock scheduler with per-flow state.
#[derive(Debug)]
pub struct VirtualClock {
    server: PrioServer,
    psi: Nanos,
    flows: HashMap<FlowId, VcFlow>,
    reserved: Rate,
}

/// Error returned when a flow cannot be installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstallError {
    /// Installing the flow would over-book the link (`Σ r_j > C`).
    Overbooked,
    /// The flow id is already installed.
    Duplicate,
}

impl core::fmt::Display for InstallError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InstallError::Overbooked => write!(f, "reservation exceeds link capacity"),
            InstallError::Duplicate => write!(f, "flow already installed"),
        }
    }
}

impl std::error::Error for InstallError {}

impl VirtualClock {
    /// Creates a VC scheduler on a link of capacity `capacity` with
    /// maximum packet size `max_packet`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate, max_packet: Bits) -> Self {
        VirtualClock {
            server: PrioServer::new(capacity),
            psi: max_packet.tx_time_ceil(capacity),
            flows: HashMap::new(),
            reserved: Rate::ZERO,
        }
    }

    /// Installs per-flow state for `flow` with reserved rate `rate` —
    /// the hop-local reservation step of the hop-by-hop model.
    ///
    /// # Errors
    ///
    /// Rejects duplicates and reservations beyond link capacity.
    pub fn install_flow(&mut self, flow: FlowId, rate: Rate) -> Result<(), InstallError> {
        if self.flows.contains_key(&flow) {
            return Err(InstallError::Duplicate);
        }
        let new_total = self.reserved.saturating_add(rate);
        if new_total > self.server.capacity() {
            return Err(InstallError::Overbooked);
        }
        self.reserved = new_total;
        self.flows.insert(
            flow,
            VcFlow {
                rate,
                clock: Time::ZERO,
            },
        );
        Ok(())
    }

    /// Removes a flow's state, freeing its reservation.
    pub fn remove_flow(&mut self, flow: FlowId) {
        if let Some(f) = self.flows.remove(&flow) {
            self.reserved = self.reserved.saturating_sub(f.rate);
        }
    }

    /// Total bandwidth currently reserved.
    #[must_use]
    pub fn reserved(&self) -> Rate {
        self.reserved
    }

    /// Number of installed flows (the per-router state footprint the
    /// paper's architecture eliminates).
    #[must_use]
    pub fn installed_flows(&self) -> usize {
        self.flows.len()
    }
}

impl Scheduler for VirtualClock {
    fn kind(&self) -> HopKind {
        HopKind::RateBased
    }

    fn capacity(&self) -> Rate {
        self.server.capacity()
    }

    fn error_term(&self) -> Nanos {
        self.psi
    }

    /// # Panics
    ///
    /// Panics if the packet's flow has no installed state — under the
    /// hop-by-hop model a data packet without a reservation at this router
    /// is a signaling bug, which we surface loudly in simulation.
    fn enqueue(&mut self, now: Time, pkt: Packet) {
        let f = self
            .flows
            .get_mut(&pkt.flow)
            .unwrap_or_else(|| panic!("VC: no per-flow state installed for {}", pkt.flow));
        let tx = pkt.size.tx_time_ceil(f.rate);
        f.clock = f.clock.max(now) + tx;
        let key = f.clock.as_nanos();
        self.server.insert(now, key, now, pkt);
    }

    fn next_event(&self) -> Option<Time> {
        self.server.next_event()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.server.complete(now)
    }

    fn backlog(&self) -> usize {
        self.server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u64, seq: u64) -> Packet {
        Packet::new(FlowId(flow), seq, Bits::from_bytes(1500), Time::ZERO)
    }

    #[test]
    fn install_enforces_capacity() {
        let mut s = VirtualClock::new(Rate::from_bps(100_000), Bits::from_bytes(1500));
        assert!(s.install_flow(FlowId(1), Rate::from_bps(60_000)).is_ok());
        assert_eq!(
            s.install_flow(FlowId(1), Rate::from_bps(1)),
            Err(InstallError::Duplicate)
        );
        assert_eq!(
            s.install_flow(FlowId(2), Rate::from_bps(60_000)),
            Err(InstallError::Overbooked)
        );
        assert!(s.install_flow(FlowId(2), Rate::from_bps(40_000)).is_ok());
        s.remove_flow(FlowId(1));
        assert_eq!(s.reserved(), Rate::from_bps(40_000));
        assert_eq!(s.installed_flows(), 1);
    }

    #[test]
    fn serves_by_per_flow_virtual_clocks() {
        let mut s = VirtualClock::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        s.install_flow(FlowId(1), Rate::from_bps(50_000)).unwrap();
        s.install_flow(FlowId(2), Rate::from_bps(100_000)).unwrap();
        // Both flows dump 2 packets at t=0. VC tags:
        // flow 1: 240 ms, 480 ms; flow 2: 120 ms, 240 ms.
        for k in 0..2 {
            s.enqueue(Time::ZERO, pkt(1, k));
            s.enqueue(Time::ZERO, pkt(2, k));
        }
        let mut order = Vec::new();
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                order.push((p.flow.0, p.seq));
            }
        }
        // Flow 1 seq 0 seized the idle server; then tag order
        // 120(f2), 240(f1 tie seq? f1k0 served)... remaining tags:
        // f2k0=120, f1k1? No: f1k0 was served in service, remaining
        // f1k1=480, f2k0=120, f2k1=240 → order f2k0, f2k1, f1k1.
        assert_eq!(order, vec![(1, 0), (2, 0), (2, 1), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "no per-flow state")]
    fn unknown_flow_panics() {
        let mut s = VirtualClock::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        s.enqueue(Time::ZERO, pkt(9, 0));
    }
}
