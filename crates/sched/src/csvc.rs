//! Core-stateless virtual clock (C̄SVC).
//!
//! The work-conserving counterpart of CJVC [Stoica & Zhang 1999],
//! introduced with VTRS: packets are served in order of their **virtual
//! finish time** `ν̃ = ω̃ + L/r + δ`, computed entirely from the dynamic
//! packet state — the scheduler keeps no per-flow state. As long as
//! `Σ r_j ≤ C`, C̄SVC guarantees every flow its reserved rate with the
//! minimum error term `Ψ = Lmax*/C`.

use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::Packet;
use vtrs::reference::{virtual_finish, HopKind};

use crate::engine::PrioServer;
use crate::Scheduler;

/// A C̄SVC scheduler for one outgoing link.
#[derive(Debug)]
pub struct CsVc {
    server: PrioServer,
    psi: Nanos,
}

impl CsVc {
    /// Creates a C̄SVC scheduler on a link of capacity `capacity`, where
    /// the largest packet of any flow traversing it is `max_packet`
    /// (determining the error term `Ψ = Lmax*/C`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate, max_packet: Bits) -> Self {
        CsVc {
            server: PrioServer::new(capacity),
            psi: max_packet.tx_time_ceil(capacity),
        }
    }
}

impl Scheduler for CsVc {
    fn kind(&self) -> HopKind {
        HopKind::RateBased
    }

    fn capacity(&self) -> Rate {
        self.server.capacity()
    }

    fn error_term(&self) -> Nanos {
        self.psi
    }

    fn enqueue(&mut self, now: Time, pkt: Packet) {
        let finish = virtual_finish(HopKind::RateBased, pkt.state(), pkt.size);
        self.server.insert(now, finish.as_nanos(), now, pkt);
    }

    fn next_event(&self) -> Option<Time> {
        self.server.next_event()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.server.complete(now)
    }

    fn backlog(&self) -> usize {
        self.server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_units::Bits;
    use vtrs::packet::{FlowId, PacketState};

    fn stamped(flow: u64, seq: u64, rate_bps: u64, vt_ns: u64) -> Packet {
        let mut p = Packet::new(FlowId(flow), seq, Bits::from_bytes(1500), Time::ZERO);
        p.state = Some(PacketState {
            rate: Rate::from_bps(rate_bps),
            delay: Nanos::ZERO,
            virtual_time: Time::from_nanos(vt_ns),
            delta: Nanos::ZERO,
        });
        p
    }

    #[test]
    fn error_term_is_lmax_over_capacity() {
        let s = CsVc::new(Rate::from_bps(1_500_000), Bits::from_bytes(1500));
        assert_eq!(s.error_term(), Nanos::from_millis(8));
        assert_eq!(s.kind(), HopKind::RateBased);
    }

    #[test]
    fn orders_by_virtual_finish_time() {
        let mut s = CsVc::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        // Flow 1 at 50 kb/s: virtual finish = vt + 240 ms.
        // Flow 2 at 100 kb/s: virtual finish = vt + 120 ms.
        s.enqueue(Time::ZERO, stamped(1, 0, 50_000, 0));
        s.enqueue(Time::ZERO, stamped(2, 0, 100_000, 0));
        s.enqueue(Time::ZERO, stamped(2, 1, 100_000, 100_000_000));
        // First packet grabbed the server; afterwards flow-2 (smaller
        // finish) goes before nothing else queued... drain and observe.
        let mut order = Vec::new();
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                order.push((p.flow.0, p.seq));
            }
        }
        assert_eq!(order, vec![(1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn rate_guarantee_with_full_reservation() {
        // C = 150 kb/s fully reserved by three 50 kb/s flows sending
        // maximum-size packets back to back at their reserved rate: every
        // packet departs by its virtual finish time + Ψ.
        let cap = Rate::from_bps(150_000);
        let lmax = Bits::from_bytes(1500);
        let mut s = CsVc::new(cap, lmax);
        let psi = s.error_term();
        let mut expected: Vec<(Time, Time)> = Vec::new(); // (deadline, _)
        for k in 0..20u64 {
            let vt = k * 240_000_000; // spacing L/r = 0.24 s
            for f in 1..=3u64 {
                let p = stamped(f, k, 50_000, vt);
                let deadline = virtual_finish(HopKind::RateBased, p.state(), p.size) + psi;
                expected.push((deadline, Time::from_nanos(vt)));
                s.enqueue(Time::from_nanos(vt), p);
            }
            // Drain everything that completes before the next round.
            let next_vt = Time::from_nanos((k + 1) * 240_000_000);
            while let Some(t) = s.next_event() {
                if t > next_vt {
                    break;
                }
                if let Some(p) = s.dequeue(t) {
                    let dl = virtual_finish(HopKind::RateBased, p.state(), p.size) + psi;
                    assert!(t <= dl, "packet departed {t} after deadline {dl}");
                }
            }
        }
        // Drain the tail.
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                let dl = virtual_finish(HopKind::RateBased, p.state(), p.size) + psi;
                assert!(t <= dl);
            }
        }
    }

    #[test]
    #[should_panic(expected = "without edge conditioning")]
    fn rejects_unconditioned_packets() {
        let mut s = CsVc::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        s.enqueue(
            Time::ZERO,
            Packet::new(FlowId(1), 0, Bits::from_bytes(1500), Time::ZERO),
        );
    }
}
