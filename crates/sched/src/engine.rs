//! The shared priority-serving engine behind every scheduler.
//!
//! [`PrioServer`] models a non-preemptive server of capacity `C` that
//! always serves the *eligible* packet with the smallest key (a deadline
//! or virtual finish time, in nanoseconds), breaking ties by arrival
//! order. Work-conserving schedulers make every packet eligible on
//! arrival; non-work-conserving ones (CJVC, the RC-EDF shaper stage) hand
//! the engine a future eligibility time and the server idles until it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use qos_units::{Rate, Time};
use vtrs::packet::Packet;

/// An entry waiting to become eligible.
#[derive(Debug)]
struct Pending {
    eligible: Time,
    key: u64,
    seq: u64,
    pkt: Packet,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.eligible == other.eligible && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.eligible, self.seq).cmp(&(other.eligible, other.seq))
    }
}

/// An eligible entry awaiting service.
#[derive(Debug)]
struct Ready {
    key: u64,
    seq: u64,
    /// Instant the packet became available for service (arrival for
    /// work-conserving schedulers, eligibility time otherwise).
    avail: Time,
    pkt: Packet,
}

impl PartialEq for Ready {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl Eq for Ready {}
impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.seq).cmp(&(other.key, other.seq))
    }
}

/// The packet currently occupying the server.
#[derive(Debug)]
struct InService {
    finish: Time,
    pkt: Packet,
}

/// Non-preemptive smallest-key-first server with optional eligibility
/// times.
///
/// Invariant maintained between public calls: whenever the server is idle,
/// the ready heap is empty (an available packet would have entered
/// service). [`PrioServer::next_event`] is therefore either the in-service
/// finish time or the earliest pending eligibility.
#[derive(Debug)]
pub struct PrioServer {
    capacity: Rate,
    ready: BinaryHeap<Reverse<Ready>>,
    pending: BinaryHeap<Reverse<Pending>>,
    in_service: Option<InService>,
    /// Instant the server becomes (or last became) free.
    free_at: Time,
    seq: u64,
}

impl PrioServer {
    /// Creates a server for a link of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate) -> Self {
        assert!(!capacity.is_zero(), "PrioServer: zero link capacity");
        PrioServer {
            capacity,
            ready: BinaryHeap::new(),
            pending: BinaryHeap::new(),
            in_service: None,
            free_at: Time::ZERO,
            seq: 0,
        }
    }

    /// Link capacity.
    #[must_use]
    pub fn capacity(&self) -> Rate {
        self.capacity
    }

    /// Inserts a packet with service `key` (ns-valued deadline / virtual
    /// finish time) that becomes eligible at `eligible`. Callers must pass
    /// non-decreasing `now` values across calls.
    pub fn insert(&mut self, now: Time, key: u64, eligible: Time, pkt: Packet) {
        let seq = self.seq;
        self.seq += 1;
        if eligible <= now {
            self.ready.push(Reverse(Ready {
                key,
                seq,
                avail: now,
                pkt,
            }));
        } else {
            self.pending.push(Reverse(Pending {
                eligible,
                key,
                seq,
                pkt,
            }));
        }
        self.try_start(now);
    }

    /// Moves pending entries with eligibility ≤ `t` to the ready heap.
    fn promote(&mut self, t: Time) {
        while let Some(Reverse(head)) = self.pending.peek() {
            if head.eligible > t {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked entry exists");
            self.ready.push(Reverse(Ready {
                key: p.key,
                seq: p.seq,
                avail: p.eligible,
                pkt: p.pkt,
            }));
        }
    }

    /// Starts service if the server is free and a packet is available at
    /// or before `now`.
    fn try_start(&mut self, now: Time) {
        while self.in_service.is_none() {
            // Anything eligible by the time the server went free competes
            // for the next service slot.
            self.promote(self.free_at);
            if self.ready.is_empty() {
                // Server idle and nothing ready: the next availability is
                // the earliest pending eligibility, if it has passed.
                match self.pending.peek() {
                    Some(Reverse(head)) if head.eligible <= now => {
                        let e = head.eligible;
                        self.promote(e);
                    }
                    _ => return,
                }
                continue;
            }
            let Reverse(next) = self.ready.pop().expect("ready nonempty");
            // Between public calls the ready heap is empty whenever the
            // server idles, so `next.avail` is the true historical start
            // bound for this packet.
            let begin = self.free_at.max(next.avail);
            let finish = begin + next.pkt.size.tx_time_ceil(self.capacity);
            self.in_service = Some(InService {
                finish,
                pkt: next.pkt,
            });
            self.free_at = finish;
        }
    }

    /// The next instant the engine's state changes on its own: the current
    /// service completion, else the earliest pending eligibility.
    #[must_use]
    pub fn next_event(&self) -> Option<Time> {
        if let Some(svc) = &self.in_service {
            return Some(svc.finish);
        }
        self.pending.peek().map(|Reverse(p)| p.eligible)
    }

    /// Completes and returns the in-service packet if its transmission
    /// finished by `now`, immediately starting the next available packet.
    pub fn complete(&mut self, now: Time) -> Option<Packet> {
        // A pending packet may have become eligible while the server was
        // idle; its (historical) service must start before completion can
        // be assessed.
        if self.in_service.is_none() {
            self.try_start(now);
        }
        match &self.in_service {
            Some(svc) if svc.finish <= now => {}
            _ => return None,
        }
        let svc = self.in_service.take().expect("checked above");
        self.free_at = svc.finish;
        self.try_start(now);
        Some(svc.pkt)
    }

    /// Total packets held (pending + ready + in service).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ready.len() + self.pending.len() + usize::from(self.in_service.is_some())
    }

    /// True when nothing is held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_units::Bits;
    use vtrs::packet::FlowId;

    fn pkt(seq: u64, bytes: u64) -> Packet {
        Packet::new(FlowId(1), seq, Bits::from_bytes(bytes), Time::ZERO)
    }

    fn drain(server: &mut PrioServer) -> Vec<(Time, u64)> {
        let mut out = Vec::new();
        while let Some(t) = server.next_event() {
            if let Some(p) = server.complete(t) {
                out.push((t, p.seq));
            }
        }
        out
    }

    #[test]
    fn serves_in_key_order_with_fifo_ties() {
        // 1 Mb/s link, 1250-byte (10 kb) packets: 10 ms each.
        let mut s = PrioServer::new(Rate::from_mbps(1));
        s.insert(Time::ZERO, 50, Time::ZERO, pkt(0, 1250));
        s.insert(Time::ZERO, 10, Time::ZERO, pkt(1, 1250));
        s.insert(Time::ZERO, 10, Time::ZERO, pkt(2, 1250));
        // Packet 0 entered service immediately (non-preemptive); then key
        // order with FIFO tie-break: 1 before 2.
        let out = drain(&mut s);
        assert_eq!(
            out,
            vec![
                (Time::from_nanos(10_000_000), 0),
                (Time::from_nanos(20_000_000), 1),
                (Time::from_nanos(30_000_000), 2),
            ]
        );
        assert!(s.is_empty());
    }

    #[test]
    fn smaller_key_overtakes_queue_but_not_server() {
        let mut s = PrioServer::new(Rate::from_mbps(1));
        s.insert(Time::ZERO, 100, Time::ZERO, pkt(0, 1250));
        s.insert(Time::ZERO, 200, Time::ZERO, pkt(1, 1250));
        // Arrives during service of 0 with the smallest key: must beat 1.
        s.insert(Time::from_nanos(5_000_000), 1, Time::ZERO, pkt(2, 1250));
        let order: Vec<u64> = drain(&mut s).into_iter().map(|(_, q)| q).collect();
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn eligibility_holds_packets_back() {
        let mut s = PrioServer::new(Rate::from_mbps(1));
        // Eligible only at t = 50 ms, despite being inserted at 0.
        s.insert(Time::ZERO, 1, Time::from_nanos(50_000_000), pkt(0, 1250));
        assert_eq!(s.next_event(), Some(Time::from_nanos(50_000_000)));
        assert!(s.complete(Time::from_nanos(40_000_000)).is_none());
        // At 60 ms: became eligible at 50 ms, service 50→60 ms, done.
        let p = s.complete(Time::from_nanos(60_000_000)).unwrap();
        assert_eq!(p.seq, 0);
    }

    #[test]
    fn server_idles_then_starts_at_eligibility_instant() {
        let mut s = PrioServer::new(Rate::from_mbps(1));
        s.insert(Time::ZERO, 5, Time::from_nanos(10_000_000), pkt(0, 1250));
        s.insert(Time::ZERO, 1, Time::from_nanos(30_000_000), pkt(1, 1250));
        // Packet 0 becomes eligible first and is served 10→20 ms, even
        // though packet 1 has the smaller key (it is not yet eligible).
        let out = drain(&mut s);
        assert_eq!(
            out,
            vec![
                (Time::from_nanos(20_000_000), 0),
                (Time::from_nanos(40_000_000), 1),
            ]
        );
    }

    #[test]
    fn late_complete_catches_up_in_order() {
        let mut s = PrioServer::new(Rate::from_mbps(1));
        s.insert(Time::ZERO, 2, Time::ZERO, pkt(0, 1250));
        s.insert(Time::ZERO, 1, Time::ZERO, pkt(1, 1250));
        // Caller only shows up at t = 1 s; completions must still be
        // reported in service order.
        let t = Time::from_secs_f64(1.0);
        assert_eq!(s.complete(t).unwrap().seq, 0);
        assert_eq!(s.complete(t).unwrap().seq, 1);
        assert!(s.complete(t).is_none());
    }

    #[test]
    fn idle_gap_then_historical_start() {
        let mut s = PrioServer::new(Rate::from_mbps(1));
        // Becomes eligible at 100 ms while the server is idle; the caller
        // only polls at 500 ms. Service must have run 100→110 ms.
        s.insert(Time::ZERO, 1, Time::from_nanos(100_000_000), pkt(0, 1250));
        let p = s.complete(Time::from_nanos(500_000_000));
        assert!(p.is_some());
        // Next insert honors the historical free time, not the poll time.
        s.insert(Time::from_nanos(500_000_000), 1, Time::ZERO, pkt(1, 1250));
        assert_eq!(s.next_event(), Some(Time::from_nanos(510_000_000)));
    }

    #[test]
    fn work_conserving_no_idle_gap() {
        let mut s = PrioServer::new(Rate::from_mbps(1));
        s.insert(Time::ZERO, 1, Time::ZERO, pkt(0, 1250));
        // Second packet arrives while the first is still in service.
        s.insert(Time::from_nanos(3_000_000), 9, Time::ZERO, pkt(1, 1250));
        let out = drain(&mut s);
        // Back-to-back: 10 ms then 20 ms, no gap.
        assert_eq!(out[1].0, Time::from_nanos(20_000_000));
    }

    #[test]
    #[should_panic(expected = "zero link capacity")]
    fn zero_capacity_rejected() {
        let _ = PrioServer::new(Rate::ZERO);
    }
}
