//! Virtual-time earliest deadline first (VT-EDF).
//!
//! The delay-based core-stateless scheduler introduced with VTRS: packets
//! are served in order of their virtual finish time `ν̃ = ω̃ + d`, where
//! `d` is the flow's delay parameter carried in the packet state. Unlike
//! classical rate-controlled EDF, no per-flow rate control is performed at
//! the scheduler — conformance was enforced once, at the network edge, and
//! is preserved hop to hop by the virtual time stamps.
//!
//! VT-EDF guarantees each flow its delay parameter `d_j` with error term
//! `Ψ = Lmax*/C` provided the schedulability condition (eq. 5) holds; the
//! condition itself lives in [`crate::schedulability`] so the bandwidth
//! broker can evaluate it without instantiating a scheduler.

use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::Packet;
use vtrs::reference::{virtual_finish, HopKind};

use crate::engine::PrioServer;
use crate::Scheduler;

/// A VT-EDF scheduler for one outgoing link.
#[derive(Debug)]
pub struct VtEdf {
    server: PrioServer,
    psi: Nanos,
}

impl VtEdf {
    /// Creates a VT-EDF scheduler on a link of capacity `capacity` with
    /// maximum packet size `max_packet` (error term `Ψ = Lmax*/C`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate, max_packet: Bits) -> Self {
        VtEdf {
            server: PrioServer::new(capacity),
            psi: max_packet.tx_time_ceil(capacity),
        }
    }
}

impl Scheduler for VtEdf {
    fn kind(&self) -> HopKind {
        HopKind::DelayBased
    }

    fn capacity(&self) -> Rate {
        self.server.capacity()
    }

    fn error_term(&self) -> Nanos {
        self.psi
    }

    fn enqueue(&mut self, now: Time, pkt: Packet) {
        let deadline = virtual_finish(HopKind::DelayBased, pkt.state(), pkt.size);
        self.server.insert(now, deadline.as_nanos(), now, pkt);
    }

    fn next_event(&self) -> Option<Time> {
        self.server.next_event()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.server.complete(now)
    }

    fn backlog(&self) -> usize {
        self.server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrs::packet::{FlowId, PacketState};

    fn stamped(flow: u64, seq: u64, d_ms: u64, vt_ns: u64) -> Packet {
        let mut p = Packet::new(FlowId(flow), seq, Bits::from_bytes(1500), Time::ZERO);
        p.state = Some(PacketState {
            rate: Rate::from_bps(50_000),
            delay: Nanos::from_millis(d_ms),
            virtual_time: Time::from_nanos(vt_ns),
            delta: Nanos::ZERO,
        });
        p
    }

    #[test]
    fn is_delay_based() {
        let s = VtEdf::new(Rate::from_bps(1_500_000), Bits::from_bytes(1500));
        assert_eq!(s.kind(), HopKind::DelayBased);
        assert_eq!(s.error_term(), Nanos::from_millis(8));
    }

    #[test]
    fn orders_by_virtual_deadline() {
        let mut s = VtEdf::new(Rate::from_mbps(10), Bits::from_bytes(1500));
        // Same virtual arrival, different delay classes: tighter d first.
        s.enqueue(Time::ZERO, stamped(1, 0, 500, 0));
        s.enqueue(Time::ZERO, stamped(2, 0, 100, 0));
        s.enqueue(Time::ZERO, stamped(3, 0, 240, 0));
        let mut order = Vec::new();
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                order.push(p.flow.0);
            }
        }
        // Flow 1 seized the idle server first (non-preemptive), then EDF
        // order among the queued: flow 2 (d=100) before flow 3 (d=240).
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn meets_deadline_plus_psi_under_schedulable_load() {
        // Three flows, d = 240 ms, each 50 kb/s on a 1.5 Mb/s link — far
        // below the schedulability bound; deadlines must all be met.
        let mut s = VtEdf::new(Rate::from_bps(1_500_000), Bits::from_bytes(1500));
        let psi = s.error_term();
        for k in 0..15u64 {
            let vt = k * 240_000_000;
            for f in 1..=3 {
                s.enqueue(Time::from_nanos(vt), stamped(f, k, 240, vt));
            }
        }
        let mut served = 0;
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                let dl = virtual_finish(HopKind::DelayBased, p.state(), p.size) + psi;
                assert!(t <= dl, "VT-EDF departure {t} missed {dl}");
                served += 1;
            }
        }
        assert_eq!(served, 45);
    }
}
