//! Weighted fair queueing (self-clocked variant) — stateful baseline.
//!
//! The IntServ Guaranteed Service is defined against a WFQ reference
//! system. For the packet plane we implement **self-clocked fair
//! queueing** (SCFQ, Golestani 1994): the system virtual time is read off
//! the service tag of the packet in service, and each flow's packets are
//! tagged `F_i^k = max(v(a), F_i^{k-1}) + L/r_i`. SCFQ tracks WFQ's
//! ordering closely while avoiding the GPS emulation bookkeeping.
//!
//! **Scope note.** The paper's §5 comparison against IntServ/GS is an
//! *admission-control* comparison: what matters there is the GS delay
//! formula with WFQ's `C = Lmax`, `D = Lmax*/C` error terms, which lives
//! in `bb-core::intserv`. This scheduler exists for data-plane experiments
//! (fairness/isolation demonstrations) and is intentionally not used in
//! delay-bound-validation tests, where SCFQ's slightly larger error term
//! would confound the VTRS bounds.

use std::collections::HashMap;

use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::{FlowId, Packet};
use vtrs::reference::HopKind;

use crate::engine::PrioServer;
use crate::vc::InstallError;
use crate::Scheduler;

#[derive(Debug)]
struct WfqFlow {
    rate: Rate,
    finish_tag: u64,
}

/// A self-clocked fair queueing scheduler with per-flow state.
#[derive(Debug)]
pub struct Wfq {
    server: PrioServer,
    psi: Nanos,
    flows: HashMap<FlowId, WfqFlow>,
    reserved: Rate,
    /// System virtual time: the tag of the most recent packet to begin
    /// service (self-clocking).
    v: u64,
}

impl Wfq {
    /// Creates an SCFQ scheduler on a link of capacity `capacity` with
    /// maximum packet size `max_packet`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate, max_packet: Bits) -> Self {
        Wfq {
            server: PrioServer::new(capacity),
            psi: max_packet.tx_time_ceil(capacity),
            flows: HashMap::new(),
            reserved: Rate::ZERO,
            v: 0,
        }
    }

    /// Installs per-flow state (share = reserved rate).
    ///
    /// # Errors
    ///
    /// Rejects duplicates and reservations beyond link capacity.
    pub fn install_flow(&mut self, flow: FlowId, rate: Rate) -> Result<(), InstallError> {
        if self.flows.contains_key(&flow) {
            return Err(InstallError::Duplicate);
        }
        let new_total = self.reserved.saturating_add(rate);
        if new_total > self.server.capacity() {
            return Err(InstallError::Overbooked);
        }
        self.reserved = new_total;
        self.flows.insert(
            flow,
            WfqFlow {
                rate,
                finish_tag: 0,
            },
        );
        Ok(())
    }

    /// Removes a flow's state, freeing its reservation.
    pub fn remove_flow(&mut self, flow: FlowId) {
        if let Some(f) = self.flows.remove(&flow) {
            self.reserved = self.reserved.saturating_sub(f.rate);
        }
    }

    /// Total bandwidth currently reserved.
    #[must_use]
    pub fn reserved(&self) -> Rate {
        self.reserved
    }
}

impl Scheduler for Wfq {
    fn kind(&self) -> HopKind {
        HopKind::RateBased
    }

    fn capacity(&self) -> Rate {
        self.server.capacity()
    }

    fn error_term(&self) -> Nanos {
        self.psi
    }

    /// # Panics
    ///
    /// Panics if the packet's flow has no installed state.
    fn enqueue(&mut self, now: Time, pkt: Packet) {
        let v = self.v;
        let f = self
            .flows
            .get_mut(&pkt.flow)
            .unwrap_or_else(|| panic!("WFQ: no per-flow state installed for {}", pkt.flow));
        let tx = pkt.size.tx_time_ceil(f.rate).as_nanos();
        f.finish_tag = f.finish_tag.max(v) + tx;
        let key = f.finish_tag;
        self.server.insert(now, key, now, pkt);
    }

    fn next_event(&self) -> Option<Time> {
        self.server.next_event()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        let pkt = self.server.complete(now)?;
        // Self-clocking: advance v to the completed packet's tag. (Reading
        // the tag at completion rather than service start is equivalent
        // for ordering purposes and avoids peeking into the engine.)
        if let Some(f) = self.flows.get(&pkt.flow) {
            // The flow's tag is monotone; the packet's own tag is bounded
            // by it. Using the flow tag floor keeps v monotone.
            self.v = self.v.max(f.finish_tag);
        }
        Some(pkt)
    }

    fn backlog(&self) -> usize {
        self.server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u64, seq: u64, bytes: u64) -> Packet {
        Packet::new(FlowId(flow), seq, Bits::from_bytes(bytes), Time::ZERO)
    }

    #[test]
    fn bandwidth_shares_respected_under_backlog() {
        // Flow 1 gets 2/3, flow 2 gets 1/3 of a 300 kb/s link. Both dump
        // 9 packets at t=0; in any long prefix flow 1 should receive about
        // twice the service of flow 2.
        let mut s = Wfq::new(Rate::from_bps(300_000), Bits::from_bytes(1500));
        s.install_flow(FlowId(1), Rate::from_bps(200_000)).unwrap();
        s.install_flow(FlowId(2), Rate::from_bps(100_000)).unwrap();
        for k in 0..9 {
            s.enqueue(Time::ZERO, pkt(1, k, 1500));
            s.enqueue(Time::ZERO, pkt(2, k, 1500));
        }
        let mut sent = (0u32, 0u32);
        for _ in 0..9 {
            let t = s.next_event().unwrap();
            let p = s.dequeue(t).unwrap();
            if p.flow == FlowId(1) {
                sent.0 += 1;
            } else {
                sent.1 += 1;
            }
        }
        // After 9 departures: roughly 6 vs 3.
        assert!(sent.0 >= 5 && sent.0 <= 7, "flow1 got {} of 9", sent.0);
    }

    #[test]
    fn idle_flow_does_not_accumulate_credit() {
        let mut s = Wfq::new(Rate::from_bps(300_000), Bits::from_bytes(1500));
        s.install_flow(FlowId(1), Rate::from_bps(150_000)).unwrap();
        s.install_flow(FlowId(2), Rate::from_bps(150_000)).unwrap();
        // Flow 1 transmits alone for a while.
        for k in 0..5 {
            s.enqueue(Time::from_nanos(k * 80_000_000), pkt(1, k, 1500));
        }
        let mut last = Time::ZERO;
        while let Some(t) = s.next_event() {
            if s.dequeue(t).is_some() {
                last = t;
            }
        }
        // Flow 2 wakes up late; its first packet must not be starved nor
        // allowed to claim all past idle capacity: it is tagged from the
        // current virtual time and served immediately (server idle).
        s.enqueue(last, pkt(2, 0, 1500));
        let t = s.next_event().unwrap();
        assert_eq!(t, last + Nanos::from_millis(40)); // 12 kb at 300 kb/s
        assert_eq!(s.dequeue(t).unwrap().flow, FlowId(2));
    }

    #[test]
    fn install_and_remove_bookkeeping() {
        let mut s = Wfq::new(Rate::from_bps(100_000), Bits::from_bytes(1500));
        assert!(s.install_flow(FlowId(1), Rate::from_bps(100_000)).is_ok());
        assert_eq!(
            s.install_flow(FlowId(2), Rate::from_bps(1)),
            Err(InstallError::Overbooked)
        );
        s.remove_flow(FlowId(1));
        assert!(s.install_flow(FlowId(2), Rate::from_bps(1)).is_ok());
    }
}
