//! The VT-EDF schedulability condition (eq. 5) and residual-service
//! computations.
//!
//! For `N` flows with reservations `⟨r_j, d_j⟩` and maximum packet sizes
//! `L_j` sharing a VT-EDF link of capacity `C`, the schedulability
//! condition is
//!
//! ```text
//! Σ_j [ r_j (t − d_j) + L_j ] · 1{t ≥ d_j}  ≤  C·t     for all t ≥ 0.
//! ```
//!
//! The left side is piecewise linear with breakpoints at the distinct
//! delay values, so it suffices to check the inequality **at every
//! breakpoint** plus the asymptotic slope condition `Σ r_j ≤ C`.
//!
//! The same arithmetic yields the **residual service**
//! `S(t) = C·t − Σ_{d_j ≤ t} [r_j (t − d_j) + L_j]`, the quantity the
//! Figure-4 admission algorithm scans (its `S_i^k` values). To stay exact
//! we evaluate in *scaled bits*: multiplying the condition through by
//! `NANOS_PER_SEC` makes every term an integer (`r[bps] · Δt[ns]` and
//! `L[bits] · 10⁹`), so results are `i128` in units of `bits / 10⁹`.

use qos_units::{Bits, Nanos, Rate, NANOS_PER_SEC};

/// A flow's contribution to an EDF link: reservation `⟨r, d⟩` and maximum
/// packet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdfFlow {
    /// Reserved rate `r`.
    pub rate: Rate,
    /// Delay parameter `d` at this hop.
    pub delay: Nanos,
    /// Maximum packet size `L`.
    pub l_max: Bits,
}

/// Converts a bit count to the scaled (`× 10⁹`) fixed-point unit used by
/// the residual-service arithmetic.
#[must_use]
pub fn scaled_bits(b: Bits) -> i128 {
    i128::from(b.as_bits()) * i128::from(NANOS_PER_SEC)
}

/// Residual service of the link at horizon `t`, in scaled bits:
/// `S(t)·10⁹ = C·t − Σ_{d_j ≤ t} [ r_j (t − d_j) + L_j·10⁹ ]`.
///
/// Negative values mean the flow set is *not* schedulable at this horizon.
#[must_use]
pub fn residual_service(flows: &[EdfFlow], capacity: Rate, t: Nanos) -> i128 {
    let mut s = i128::from(capacity.as_bps()) * i128::from(t.as_nanos());
    for f in flows {
        if f.delay <= t {
            let lag = t - f.delay;
            s -= i128::from(f.rate.as_bps()) * i128::from(lag.as_nanos());
            s -= scaled_bits(f.l_max);
        }
    }
    s
}

/// Checks the VT-EDF schedulability condition (eq. 5) for `flows` on a
/// link of capacity `capacity`.
#[must_use]
pub fn edf_schedulable(flows: &[EdfFlow], capacity: Rate) -> bool {
    // Asymptotic slope: total reserved rate must not exceed capacity.
    let total: u128 = flows.iter().map(|f| u128::from(f.rate.as_bps())).sum();
    if total > u128::from(capacity.as_bps()) {
        return false;
    }
    // Breakpoint checks at each distinct delay value.
    flows
        .iter()
        .all(|f| residual_service(flows, capacity, f.delay) >= 0)
}

/// Convenience: would adding `candidate` keep the link schedulable?
///
/// Equivalent to the per-hop test (eq. 8) the broker performs for every
/// delay-based hop of a candidate path, but expressed on an explicit flow
/// list (used by tests and by the stateful RC-EDF baseline).
#[must_use]
pub fn edf_admissible_with(flows: &[EdfFlow], capacity: Rate, candidate: EdfFlow) -> bool {
    let mut all = Vec::with_capacity(flows.len() + 1);
    all.extend_from_slice(flows);
    all.push(candidate);
    edf_schedulable(&all, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(r_bps: u64, d_ms: u64) -> EdfFlow {
        EdfFlow {
            rate: Rate::from_bps(r_bps),
            delay: Nanos::from_millis(d_ms),
            l_max: Bits::from_bytes(1500),
        }
    }

    #[test]
    fn empty_set_is_schedulable() {
        assert!(edf_schedulable(&[], Rate::from_bps(1)));
    }

    #[test]
    fn thirty_type0_flows_at_240ms_exactly_fill_the_link() {
        // The paper's boundary case: 30 flows, d = 0.24 s, L = 12000 bits,
        // C = 1.5 Mb/s. At t = 0.24 s: 30·12000 = 360000 = C·t exactly.
        let flows = vec![flow(50_000, 240); 30];
        assert!(edf_schedulable(&flows, Rate::from_bps(1_500_000)));
        // The 31st flow of the same class tips it over.
        assert!(!edf_admissible_with(
            &flows,
            Rate::from_bps(1_500_000),
            flow(50_000, 240)
        ));
        // ... and so does a flow with an even tighter delay.
        assert!(!edf_admissible_with(
            &flows,
            Rate::from_bps(1_500_000),
            flow(1, 100)
        ));
    }

    #[test]
    fn residual_service_is_exact_at_breakpoints() {
        let flows = vec![flow(50_000, 240); 30];
        let c = Rate::from_bps(1_500_000);
        assert_eq!(residual_service(&flows, c, Nanos::from_millis(240)), 0);
        // At 0.1 s no flow's delay has passed: S = C·t.
        assert_eq!(
            residual_service(&flows, c, Nanos::from_millis(100)),
            i128::from(1_500_000u64) * 100_000_000
        );
    }

    #[test]
    fn overload_detected_by_slope_even_if_breakpoints_pass() {
        // Two flows whose rates sum past capacity but with generous delays
        // and small packets: breakpoints pass, slope must fail it.
        let flows = vec![
            EdfFlow {
                rate: Rate::from_bps(800),
                delay: Nanos::from_secs(100),
                l_max: Bits::from_bits(1),
            },
            EdfFlow {
                rate: Rate::from_bps(800),
                delay: Nanos::from_secs(100),
                l_max: Bits::from_bits(1),
            },
        ];
        assert!(!edf_schedulable(&flows, Rate::from_bps(1_000)));
    }

    #[test]
    fn tight_delay_with_large_packet_fails_at_breakpoint() {
        // One flow with d = 1 ms but a 12000-bit packet on a 1 Mb/s link:
        // C·d = 1000 bits < 12000 → unschedulable.
        let flows = vec![EdfFlow {
            rate: Rate::from_bps(1_000),
            delay: Nanos::from_millis(1),
            l_max: Bits::from_bytes(1500),
        }];
        assert!(!edf_schedulable(&flows, Rate::from_mbps(1)));
    }

    #[test]
    fn heterogeneous_delays_check_every_breakpoint() {
        let c = Rate::from_bps(100_000);
        // A 10 ms flow taking most of the early service...
        let a = EdfFlow {
            rate: Rate::from_bps(50_000),
            delay: Nanos::from_millis(10),
            l_max: Bits::from_bits(900),
        };
        // ...and a 20 ms flow that just fits.
        let b = EdfFlow {
            rate: Rate::from_bps(40_000),
            delay: Nanos::from_millis(20),
            l_max: Bits::from_bits(500),
        };
        assert!(edf_schedulable(&[a, b], c));
        // Tripling b's packet size breaks the t = 20 ms breakpoint:
        // S(20ms) = 2000 − [50000·10ms + 900 + 1500] = 2000 − 2900 < 0.
        let b_big = EdfFlow {
            l_max: Bits::from_bits(1_500),
            ..b
        };
        assert!(!edf_schedulable(&[a, b_big], c));
    }
}
