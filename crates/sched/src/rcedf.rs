//! Rate-controlled earliest deadline first (RC-EDF) — stateful baseline.
//!
//! The IntServ counterpart of [`crate::VtEdf`] (§5 pairs them): a
//! per-flow **shaper** re-enforces each flow's reserved rate at every hop
//! (holding packets until conformance), and an EDF queue serves eligible
//! packets by deadline `eligibility + d`. The shaper state and the
//! ⟨r, d⟩ table are per-flow state at every router — precisely the burden
//! the bandwidth broker architecture removes, and VT-EDF's virtual time
//! stamps replace.

use std::collections::HashMap;

use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::{FlowId, Packet};
use vtrs::reference::HopKind;

use crate::engine::PrioServer;
use crate::schedulability::EdfFlow;
use crate::vc::InstallError;
use crate::Scheduler;

#[derive(Debug)]
struct RcFlow {
    rate: Rate,
    delay: Nanos,
    l_max: Bits,
    /// Eligibility time of the previously shaped packet, if any.
    last_eligible: Option<Time>,
}

/// An RC-EDF scheduler with per-flow shapers.
#[derive(Debug)]
pub struct RcEdf {
    server: PrioServer,
    psi: Nanos,
    flows: HashMap<FlowId, RcFlow>,
}

impl RcEdf {
    /// Creates an RC-EDF scheduler on a link of capacity `capacity` with
    /// maximum packet size `max_packet`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate, max_packet: Bits) -> Self {
        RcEdf {
            server: PrioServer::new(capacity),
            psi: max_packet.tx_time_ceil(capacity),
            flows: HashMap::new(),
        }
    }

    /// Installs per-flow shaper state and the ⟨r, d⟩ reservation.
    ///
    /// # Errors
    ///
    /// Rejects duplicates and flow sets that would violate the EDF
    /// schedulability condition at this hop.
    pub fn install_flow(
        &mut self,
        flow: FlowId,
        rate: Rate,
        delay: Nanos,
        l_max: Bits,
    ) -> Result<(), InstallError> {
        if self.flows.contains_key(&flow) {
            return Err(InstallError::Duplicate);
        }
        let mut set: Vec<EdfFlow> = self.edf_set();
        set.push(EdfFlow { rate, delay, l_max });
        if !crate::schedulability::edf_schedulable(&set, self.server.capacity()) {
            return Err(InstallError::Overbooked);
        }
        self.flows.insert(
            flow,
            RcFlow {
                rate,
                delay,
                l_max,
                last_eligible: None,
            },
        );
        Ok(())
    }

    /// Removes a flow's shaper state and reservation.
    pub fn remove_flow(&mut self, flow: FlowId) {
        self.flows.remove(&flow);
    }

    /// The current reservation set in schedulability-condition form.
    #[must_use]
    pub fn edf_set(&self) -> Vec<EdfFlow> {
        self.flows
            .values()
            .map(|f| EdfFlow {
                rate: f.rate,
                delay: f.delay,
                l_max: f.l_max,
            })
            .collect()
    }
}

impl Scheduler for RcEdf {
    fn kind(&self) -> HopKind {
        HopKind::DelayBased
    }

    fn capacity(&self) -> Rate {
        self.server.capacity()
    }

    fn error_term(&self) -> Nanos {
        self.psi
    }

    /// # Panics
    ///
    /// Panics if the packet's flow has no installed state.
    fn enqueue(&mut self, now: Time, pkt: Packet) {
        let f = self
            .flows
            .get_mut(&pkt.flow)
            .unwrap_or_else(|| panic!("RC-EDF: no per-flow state installed for {}", pkt.flow));
        // Shaper: eligible no earlier than the previous packet's
        // eligibility plus L/r; the first packet is conformant on arrival.
        let eligible = match f.last_eligible {
            None => now,
            Some(prev) => now.max(prev + pkt.size.tx_time_ceil(f.rate)),
        };
        f.last_eligible = Some(eligible);
        let deadline = eligible + f.delay;
        self.server.insert(now, deadline.as_nanos(), eligible, pkt);
    }

    fn next_event(&self) -> Option<Time> {
        self.server.next_event()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.server.complete(now)
    }

    fn backlog(&self) -> usize {
        self.server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: u64, seq: u64) -> Packet {
        Packet::new(FlowId(flow), seq, Bits::from_bytes(1500), Time::ZERO)
    }

    #[test]
    fn shaper_delays_nonconformant_bursts() {
        let mut s = RcEdf::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        s.install_flow(
            FlowId(1),
            Rate::from_bps(50_000),
            Nanos::from_millis(300),
            Bits::from_bytes(1500),
        )
        .unwrap();
        // A 3-packet burst: eligibility at 0, 0.24 s, 0.48 s despite
        // simultaneous arrival. First packet's deadline = 0.3 s.
        for k in 0..3 {
            s.enqueue(Time::ZERO, pkt(1, k));
        }
        let mut departures = Vec::new();
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                departures.push((t.as_nanos(), p.seq));
            }
        }
        assert_eq!(
            departures,
            vec![(12_000_000, 0), (252_000_000, 1), (492_000_000, 2),]
        );
    }

    #[test]
    fn install_uses_edf_schedulability() {
        let mut s = RcEdf::new(Rate::from_bps(1_500_000), Bits::from_bytes(1500));
        for i in 0..30 {
            s.install_flow(
                FlowId(i),
                Rate::from_bps(50_000),
                Nanos::from_millis(240),
                Bits::from_bytes(1500),
            )
            .unwrap();
        }
        // The 31st identical flow breaches eq. (5).
        assert_eq!(
            s.install_flow(
                FlowId(30),
                Rate::from_bps(50_000),
                Nanos::from_millis(240),
                Bits::from_bytes(1500),
            ),
            Err(InstallError::Overbooked)
        );
        s.remove_flow(FlowId(0));
        assert!(s
            .install_flow(
                FlowId(30),
                Rate::from_bps(50_000),
                Nanos::from_millis(240),
                Bits::from_bytes(1500),
            )
            .is_ok());
    }

    #[test]
    fn deadlines_met_for_schedulable_set() {
        let mut s = RcEdf::new(Rate::from_bps(1_500_000), Bits::from_bytes(1500));
        let psi = s.error_term();
        for i in 0..10 {
            s.install_flow(
                FlowId(i),
                Rate::from_bps(50_000),
                Nanos::from_millis(240),
                Bits::from_bytes(1500),
            )
            .unwrap();
        }
        // Every flow sends a 5-packet burst at t = 0.
        for i in 0..10 {
            for k in 0..5 {
                s.enqueue(Time::ZERO, pkt(i, k));
            }
        }
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                // Deadline: eligibility (seq · 0.24 s for this pattern)
                // + d + Ψ.
                let eligible = Nanos::from_millis(240).scale(p.seq);
                let dl = Time::ZERO + eligible + Nanos::from_millis(240) + psi;
                assert!(
                    t <= dl,
                    "flow {} seq {} departed {t} after {dl}",
                    p.flow,
                    p.seq
                );
            }
        }
    }
}
