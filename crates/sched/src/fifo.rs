//! First-in-first-out scheduler — the best-effort baseline.
//!
//! FIFO offers no isolation: a misbehaving flow inflates everyone's
//! delay. It exists so experiments can contrast guaranteed-service
//! schedulers against plain best-effort forwarding, and to model
//! uncontended access links. Because FIFO makes no per-flow guarantee,
//! it has no intrinsic VTRS error term; the caller must supply the `Ψ`
//! they are willing to assume for it (zero is only sound on a link that
//! can never be congested, e.g. the infinite-capacity access links of the
//! paper's Figure-8 topology).

use qos_units::{Nanos, Rate, Time};
use vtrs::packet::Packet;
use vtrs::reference::HopKind;

use crate::engine::PrioServer;
use crate::Scheduler;

/// A FIFO scheduler.
#[derive(Debug)]
pub struct Fifo {
    server: PrioServer,
    assumed_psi: Nanos,
}

impl Fifo {
    /// Creates a FIFO scheduler on a link of capacity `capacity`.
    ///
    /// `assumed_psi` is the error term the *caller* asserts for this hop
    /// (see module docs); it is reported verbatim by
    /// [`Scheduler::error_term`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate, assumed_psi: Nanos) -> Self {
        Fifo {
            server: PrioServer::new(capacity),
            assumed_psi,
        }
    }
}

impl Scheduler for Fifo {
    fn kind(&self) -> HopKind {
        HopKind::RateBased
    }

    fn capacity(&self) -> Rate {
        self.server.capacity()
    }

    fn error_term(&self) -> Nanos {
        self.assumed_psi
    }

    fn enqueue(&mut self, now: Time, pkt: Packet) {
        self.server.insert(now, now.as_nanos(), now, pkt);
    }

    fn next_event(&self) -> Option<Time> {
        self.server.next_event()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.server.complete(now)
    }

    fn backlog(&self) -> usize {
        self.server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_units::Bits;
    use vtrs::packet::FlowId;

    #[test]
    fn serves_in_arrival_order_regardless_of_flow() {
        let mut s = Fifo::new(Rate::from_mbps(1), Nanos::ZERO);
        for (i, f) in [3u64, 1, 2, 1].iter().enumerate() {
            s.enqueue(
                Time::from_nanos(i as u64),
                Packet::new(FlowId(*f), i as u64, Bits::from_bytes(1250), Time::ZERO),
            );
        }
        let mut seqs = Vec::new();
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                seqs.push(p.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }
}
