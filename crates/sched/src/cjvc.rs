//! Core-jitter virtual clock (CJVC) [Stoica & Zhang, SIGCOMM 1999].
//!
//! The non-work-conserving sibling of [`crate::CsVc`]: a packet is held
//! until its **virtual arrival time** `ω̃` (jitter regulation), then served
//! in virtual-finish-time order. Holding packets re-normalizes the traffic
//! at every hop, which is what lets CJVC offer end-to-end per-flow delay
//! guarantees without per-flow state; the cost is that the link may idle
//! while regulated packets wait.

use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::Packet;
use vtrs::reference::{virtual_finish, HopKind};

use crate::engine::PrioServer;
use crate::Scheduler;

/// A CJVC scheduler for one outgoing link.
#[derive(Debug)]
pub struct CJVc {
    server: PrioServer,
    psi: Nanos,
}

impl CJVc {
    /// Creates a CJVC scheduler on a link of capacity `capacity` with
    /// maximum packet size `max_packet` (error term `Ψ = Lmax*/C`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: Rate, max_packet: Bits) -> Self {
        CJVc {
            server: PrioServer::new(capacity),
            psi: max_packet.tx_time_ceil(capacity),
        }
    }
}

impl Scheduler for CJVc {
    fn kind(&self) -> HopKind {
        HopKind::RateBased
    }

    fn capacity(&self) -> Rate {
        self.server.capacity()
    }

    fn error_term(&self) -> Nanos {
        self.psi
    }

    fn enqueue(&mut self, now: Time, pkt: Packet) {
        let state = pkt.state();
        // Jitter regulation: ineligible before the virtual arrival time.
        let eligible = state.virtual_time.max(now);
        let finish = virtual_finish(HopKind::RateBased, state, pkt.size);
        self.server.insert(now, finish.as_nanos(), eligible, pkt);
    }

    fn next_event(&self) -> Option<Time> {
        self.server.next_event()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.server.complete(now)
    }

    fn backlog(&self) -> usize {
        self.server.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrs::packet::{FlowId, PacketState};

    fn stamped(seq: u64, rate_bps: u64, vt_ns: u64) -> Packet {
        let mut p = Packet::new(FlowId(1), seq, Bits::from_bytes(1500), Time::ZERO);
        p.state = Some(PacketState {
            rate: Rate::from_bps(rate_bps),
            delay: Nanos::ZERO,
            virtual_time: Time::from_nanos(vt_ns),
            delta: Nanos::ZERO,
        });
        p
    }

    #[test]
    fn holds_packet_until_virtual_arrival() {
        let mut s = CJVc::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        // Arrives early (actual 0, virtual arrival 100 ms): must be held.
        s.enqueue(Time::ZERO, stamped(0, 50_000, 100_000_000));
        assert_eq!(s.next_event(), Some(Time::from_nanos(100_000_000)));
        assert!(s.dequeue(Time::from_nanos(99_000_000)).is_none());
        // Served 100 → 112 ms (12000 bits at 1 Mb/s).
        let p = s.dequeue(Time::from_nanos(112_000_000)).unwrap();
        assert_eq!(p.seq, 0);
    }

    #[test]
    fn work_conserving_sibling_would_depart_earlier() {
        let mut wc = crate::CsVc::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        let mut nwc = CJVc::new(Rate::from_mbps(1), Bits::from_bytes(1500));
        wc.enqueue(Time::ZERO, stamped(0, 50_000, 100_000_000));
        nwc.enqueue(Time::ZERO, stamped(0, 50_000, 100_000_000));
        // CsVC transmits immediately (finishes at 12 ms); CJVC waits.
        assert_eq!(wc.next_event(), Some(Time::from_nanos(12_000_000)));
        assert_eq!(nwc.next_event(), Some(Time::from_nanos(100_000_000)));
    }

    #[test]
    fn still_meets_virtual_deadline_plus_psi() {
        let mut s = CJVc::new(Rate::from_bps(150_000), Bits::from_bytes(1500));
        let psi = s.error_term();
        for k in 0..10u64 {
            let vt = k * 240_000_000;
            s.enqueue(
                Time::from_nanos(vt.saturating_sub(50_000_000)),
                stamped(k, 50_000, vt),
            );
        }
        while let Some(t) = s.next_event() {
            if let Some(p) = s.dequeue(t) {
                let dl = virtual_finish(HopKind::RateBased, p.state(), p.size) + psi;
                assert!(t <= dl, "CJVC departure {t} missed deadline {dl}");
            }
        }
    }
}
