//! Property-based tests: schedulers honor their error-term contract.
//!
//! The VTRS abstraction reduces a scheduler to one promise — every packet
//! departs by `ν̃ + Ψ`. These tests generate random conformant traffic
//! (shaped through a real edge conditioner, so virtual time stamps are
//! genuine) and assert the promise for every core-stateless scheduler,
//! under any admissible mix of reservations.

use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use sched::{CJVc, CsVc, Scheduler, VtEdf};
use vtrs::conditioner::EdgeConditioner;
use vtrs::packet::{FlowId, Packet};
use vtrs::reference::virtual_finish;

/// One synthetic flow: a reserved rate (as a share of capacity) and a
/// burst length.
#[derive(Debug, Clone)]
struct GenFlow {
    rate: Rate,
    delay: Nanos,
    burst: usize,
    jitter_ns: u64,
}

fn gen_flows(max_flows: usize) -> impl Strategy<Value = Vec<GenFlow>> {
    prop::collection::vec(
        (
            20_000u64..100_000,
            50u64..500,
            1usize..12,
            0u64..100_000_000,
        )
            .prop_map(|(r, d_ms, burst, jitter_ns)| GenFlow {
                rate: Rate::from_bps(r),
                delay: Nanos::from_millis(d_ms),
                burst,
                jitter_ns,
            }),
        1..max_flows,
    )
}

/// Shapes each flow's burst through a private edge conditioner, producing
/// genuinely stamped packets with their core entry times.
fn condition(flows: &[GenFlow], rate_hops: u64) -> Vec<(Time, Packet)> {
    let mut out = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        let mut cond = EdgeConditioner::new(f.rate, f.delay, rate_hops);
        for k in 0..f.burst {
            let at = Time::from_nanos(f.jitter_ns + k as u64);
            cond.arrive(
                at,
                Packet::new(FlowId(i as u64), k as u64, Bits::from_bytes(1500), at),
            );
        }
        while let Some(due) = cond.next_release_time() {
            let p = cond.release(due).unwrap();
            out.push((due, p));
        }
    }
    // Merge by core entry time; stable order keeps determinism.
    out.sort_by_key(|(t, p)| (*t, p.flow, p.seq));
    out
}

/// Feeds the conditioned arrivals to `sched` and asserts every departure
/// meets `ν̃ + Ψ`.
fn assert_deadlines<S: Scheduler>(mut sched: S, arrivals: Vec<(Time, Packet)>) {
    let psi = sched.error_term();
    let kind = sched.kind();
    let mut idx = 0;
    loop {
        // Interleave arrivals and departures in event order.
        let next_arrival = arrivals.get(idx).map(|(t, _)| *t);
        let next_dep = sched.next_event();
        match (next_arrival, next_dep) {
            (Some(ta), Some(td)) if ta <= td => {
                let (t, p) = arrivals[idx];
                sched.enqueue(t, p);
                idx += 1;
            }
            (_, Some(td)) => {
                if let Some(p) = sched.dequeue(td) {
                    let dl = virtual_finish(kind, p.state(), p.size) + psi;
                    assert!(
                        td <= dl,
                        "{} seq {} departed {} after deadline {}",
                        p.flow,
                        p.seq,
                        td,
                        dl
                    );
                }
            }
            (Some(ta), None) => {
                let (_, p) = arrivals[idx];
                sched.enqueue(ta, p);
                idx += 1;
            }
            (None, None) => break,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CsVC: any flow set with Σr ≤ C receives its rate guarantee.
    #[test]
    fn csvc_meets_deadlines(flows in gen_flows(10)) {
        let total: u64 = flows.iter().map(|f| f.rate.as_bps()).sum();
        let cap = Rate::from_bps(total.max(1)); // exactly full reservation
        let arrivals = condition(&flows, 1);
        assert_deadlines(CsVc::new(cap, Bits::from_bytes(1500)), arrivals);
    }

    /// CJVC: same guarantee despite holding packets for jitter control.
    #[test]
    fn cjvc_meets_deadlines(flows in gen_flows(10)) {
        let total: u64 = flows.iter().map(|f| f.rate.as_bps()).sum();
        let cap = Rate::from_bps(total.max(1));
        let arrivals = condition(&flows, 1);
        assert_deadlines(CJVc::new(cap, Bits::from_bytes(1500)), arrivals);
    }

    /// VT-EDF: any flow set passing the schedulability condition (eq. 5)
    /// receives its per-hop delay guarantee.
    #[test]
    fn vtedf_meets_deadlines(flows in gen_flows(10)) {
        let cap = Rate::from_bps(2_000_000);
        let set: Vec<_> = flows
            .iter()
            .map(|f| sched::schedulability::EdfFlow {
                rate: f.rate,
                delay: f.delay,
                l_max: Bits::from_bytes(1500),
            })
            .collect();
        prop_assume!(sched::schedulability::edf_schedulable(&set, cap));
        let arrivals = condition(&flows, 0);
        assert_deadlines(VtEdf::new(cap, Bits::from_bytes(1500)), arrivals);
    }

    /// CJVC never departs a packet before its work-conserving sibling
    /// would be *forced* to by the deadline contract, and both meet it.
    #[test]
    fn cjvc_departures_not_earlier_than_virtual_arrival(flows in gen_flows(6)) {
        let total: u64 = flows.iter().map(|f| f.rate.as_bps()).sum();
        let cap = Rate::from_bps(total.max(1));
        let arrivals = condition(&flows, 1);
        let mut s = CJVc::new(cap, Bits::from_bytes(1500));
        let mut idx = 0;
        loop {
            let next_arrival = arrivals.get(idx).map(|(t, _)| *t);
            let next_dep = s.next_event();
            match (next_arrival, next_dep) {
                (Some(ta), Some(td)) if ta <= td => {
                    let (t, p) = arrivals[idx];
                    s.enqueue(t, p);
                    idx += 1;
                }
                (_, Some(td)) => {
                    if let Some(p) = s.dequeue(td) {
                        // Jitter regulation: service begins no earlier
                        // than ω̃, so departure ≥ ω̃ + L/C.
                        let min_dep = p.state().virtual_time
                            + p.size.tx_time_floor(cap);
                        prop_assert!(td >= min_dep,
                            "CJVC departed {td} before regulated minimum {min_dep}");
                    }
                }
                (Some(ta), None) => {
                    let (_, p) = arrivals[idx];
                    s.enqueue(ta, p);
                    idx += 1;
                }
                (None, None) => break,
            }
        }
    }
}

/// Reference model for the serving engine: a direct simulation that, at
/// every service completion, picks the smallest-(key, seq) packet among
/// those whose eligibility has passed, or idles until the next
/// eligibility. The engine must reproduce it exactly.
mod engine_oracle {
    use proptest::prelude::*;
    use qos_units::{Bits, Rate, Time};
    use sched::engine::PrioServer;
    use vtrs::packet::{FlowId, Packet};

    #[derive(Debug, Clone, Copy)]
    struct Job {
        arrival: u64,
        eligible: u64,
        key: u64,
        bytes: u64,
    }

    fn gen_jobs() -> impl Strategy<Value = Vec<Job>> {
        prop::collection::vec(
            (0u64..1_000_000, 0u64..1_000_000, 0u64..100, 64u64..1500).prop_map(
                |(arrival, extra, key, bytes)| Job {
                    arrival,
                    eligible: arrival + extra,
                    key,
                    bytes,
                },
            ),
            1..30,
        )
    }

    /// Golden-model completion order. Ties on the service key break by
    /// engine insertion order (arrival order, then original index), so
    /// the pending list carries its post-sort position as the seq.
    fn oracle(jobs: &[Job], cap_bps: u64) -> Vec<(u64, u64)> {
        let mut pending: Vec<(usize, Job)> = jobs.iter().copied().enumerate().collect();
        pending.sort_by_key(|(i, j)| (j.arrival, *i));
        // (original index, job, insertion seq)
        let pending: Vec<(usize, Job, usize)> = pending
            .into_iter()
            .enumerate()
            .map(|(seq, (i, j))| (i, j, seq))
            .collect();
        let mut free_at = 0u64;
        let mut out = Vec::new();
        let mut waiting: Vec<(usize, Job, usize)> = Vec::new();
        let mut next = 0usize;
        while out.len() < jobs.len() {
            // Admit arrivals up to the current notion of time.
            let now = free_at;
            while next < pending.len() && pending[next].1.arrival <= now {
                waiting.push(pending[next]);
                next += 1;
            }
            // Choose among eligible-at-`now` waiters.
            let choice = waiting
                .iter()
                .enumerate()
                .filter(|(_, (_, j, _))| j.eligible <= now)
                .min_by_key(|(_, (_, j, seq))| (j.key, *seq))
                .map(|(pos, _)| pos);
            match choice {
                Some(pos) => {
                    let (i, j, _) = waiting.remove(pos);
                    let start = now.max(j.eligible);
                    let finish = start
                        + j.bytes * 8 * 1_000_000_000 / cap_bps
                        + u64::from(j.bytes * 8 * 1_000_000_000 % cap_bps != 0);
                    out.push((finish, i as u64));
                    free_at = finish;
                }
                None => {
                    // Idle: jump to the next arrival or eligibility.
                    let next_arrival = pending.get(next).map(|(_, j, _)| j.arrival);
                    let next_elig = waiting.iter().map(|(_, j, _)| j.eligible).min();
                    free_at = match (next_arrival, next_elig) {
                        (Some(a), Some(e)) => a.min(e),
                        (Some(a), None) => a,
                        (None, Some(e)) => e,
                        (None, None) => break,
                    }
                    .max(free_at);
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn engine_matches_the_oracle(jobs in gen_jobs(), cap_kbps in 100u64..10_000) {
            let cap = Rate::from_bps(cap_kbps * 1_000);
            let mut server = PrioServer::new(cap);
            let mut ordered: Vec<(usize, Job)> = jobs.iter().copied().enumerate().collect();
            ordered.sort_by_key(|(i, j)| (j.arrival, *i));
            let mut out = Vec::new();
            let mut idx = 0usize;
            loop {
                let next_arrival = ordered.get(idx).map(|(_, j)| Time::from_nanos(j.arrival));
                let next_event = server.next_event();
                match (next_arrival, next_event) {
                    (Some(a), Some(e)) if a <= e => {
                        let (i, j) = ordered[idx];
                        idx += 1;
                        server.insert(
                            a,
                            j.key,
                            Time::from_nanos(j.eligible),
                            Packet::new(FlowId(1), i as u64, Bits::from_bytes(j.bytes), a),
                        );
                    }
                    (_, Some(e)) => {
                        if let Some(p) = server.complete(e) {
                            out.push((e.as_nanos(), p.seq));
                        }
                    }
                    (Some(a), None) => {
                        let (i, j) = ordered[idx];
                        idx += 1;
                        server.insert(
                            a,
                            j.key,
                            Time::from_nanos(j.eligible),
                            Packet::new(FlowId(1), i as u64, Bits::from_bytes(j.bytes), a),
                        );
                    }
                    (None, None) => break,
                }
            }
            let expect = oracle(&jobs, cap.as_bps());
            prop_assert_eq!(out, expect);
        }
    }
}
