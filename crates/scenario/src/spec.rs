//! The JSON scenario specification.
//!
//! A spec file is the complete, self-contained description of one
//! scenario run: the subscriber tree's shape and capacities, the
//! diurnal base load, churn intensity, flash-crowd and link-failure
//! schedules, and the resident-flow ramp target. Two runs given the
//! same spec produce the same trace — the spec (plus its embedded
//! seed) is the experiment.

use serde::{Deserialize, Serialize};

/// Shape and per-tier capacities of the subscriber tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeSpec {
    /// Number of sites (one pod — and so one potential shard — each).
    pub sites: usize,
    /// Access points per site.
    pub aps_per_site: usize,
    /// Subscriber clients per access point.
    pub clients_per_ap: usize,
    /// Capacity of each client's leaf link, b/s.
    pub client_rate_bps: u64,
    /// AP-uplink oversubscription: each of the AP's two parallel
    /// uplinks carries `clients_per_ap × client_rate_bps / ap_oversub`.
    pub ap_oversub: f64,
    /// Site-link oversubscription: the site ingress link carries
    /// `aps_per_site × ap_uplink_bps / site_oversub`.
    pub site_oversub: f64,
}

impl TreeSpec {
    /// Total subscriber clients in the tree.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.sites * self.aps_per_site * self.clients_per_ap
    }

    /// Capacity of one AP uplink, b/s.
    #[must_use]
    pub fn ap_uplink_bps(&self) -> u64 {
        let raw = self.clients_per_ap as f64 * self.client_rate_bps as f64 / self.ap_oversub;
        raw.round() as u64
    }

    /// Capacity of the site ingress link, b/s.
    #[must_use]
    pub fn site_link_bps(&self) -> u64 {
        let raw = self.aps_per_site as f64 * self.ap_uplink_bps() as f64 / self.site_oversub;
        raw.round() as u64
    }
}

/// The diurnal base load and the per-flow traffic profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSpec {
    /// Scenario horizon, seconds of scenario time.
    pub horizon_s: f64,
    /// Diurnal trough: aggregate arrival rate at t = 0, arrivals/s.
    pub trough_hz: f64,
    /// Diurnal peak: aggregate arrival rate at mid-horizon, arrivals/s.
    pub peak_hz: f64,
    /// Mean flow holding time (exponential), seconds.
    pub mean_holding_s: f64,
    /// Per-flow sustained rate ρ, b/s.
    pub flow_rho_bps: u64,
    /// Per-flow peak rate P, b/s.
    pub flow_peak_bps: u64,
    /// Per-flow burst σ, bytes.
    pub flow_sigma_bytes: u64,
    /// Per-flow maximum packet, bytes.
    pub flow_lmax_bytes: u64,
    /// Per-flow end-to-end delay requirement, milliseconds.
    pub d_req_ms: u64,
}

/// Class-join/leave churn riding on the base load (§4.2 contingency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Fraction of base arrivals that join their AP's delay-service
    /// class instead of requesting per-flow service, in `[0, 1]`.
    pub class_fraction: f64,
    /// Mean holding time of class members (short — this is the churn),
    /// seconds.
    pub mean_holding_s: f64,
    /// The class's end-to-end delay bound, milliseconds.
    pub class_d_req_ms: u64,
    /// The class's fixed per-hop delay parameter, milliseconds.
    pub class_cd_ms: u64,
}

/// A step burst of extra arrivals aimed at one site's subtree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowdSpec {
    /// Burst start, seconds of scenario time.
    pub at_s: f64,
    /// Burst duration, seconds.
    pub duration_s: f64,
    /// Target site; the burst's arrivals pick clients of this site only.
    pub site: u32,
    /// Extra arrival rate during the burst, arrivals/s (on top of the
    /// diurnal base).
    pub extra_hz: f64,
}

/// A scheduled failure of one AP's primary uplink.
///
/// While the link is down, new admissions for its clients re-route to
/// the AP's backup uplink; the primary's existing reservations ride
/// out the outage (the broker rejects new work, it does not revoke).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFailureSpec {
    /// Failure instant, seconds of scenario time.
    pub at_s: f64,
    /// Outage duration, seconds.
    pub duration_s: f64,
    /// Site of the failed AP uplink.
    pub site: u32,
    /// AP index within the site.
    pub ap: u32,
}

/// A complete scenario: tree, load, churn, and event schedules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (reported, not semantic).
    pub name: String,
    /// PRNG seed; the whole trace is a pure function of spec + seed.
    pub seed: u64,
    /// Subscriber-tree shape and capacities.
    pub tree: TreeSpec,
    /// Diurnal base load and per-flow profile.
    pub load: LoadSpec,
    /// Class-churn intensity.
    pub churn: ChurnSpec,
    /// Flash-crowd schedule.
    #[serde(default)]
    pub flash_crowds: Vec<FlashCrowdSpec>,
    /// Link-failure schedule.
    #[serde(default)]
    pub link_failures: Vec<LinkFailureSpec>,
    /// Resident-flow ramp target: flows admitted (round-robin over all
    /// clients, per-flow service) and *held* before the event trace
    /// replays. `0` skips the ramp.
    #[serde(default)]
    pub resident_target: u64,
}

impl ScenarioSpec {
    /// Parses a spec from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error text on malformed input, plus
    /// validation failures for structurally impossible scenarios.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let spec: ScenarioSpec = serde::json::from_str(text).map_err(|e| e.to_string())?;
        spec.validate()?;
        Ok(spec)
    }

    /// Renders the spec as pretty JSON (the inverse of
    /// [`ScenarioSpec::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    fn validate(&self) -> Result<(), String> {
        // Strictly positive and not NaN (a bare `> 0.0` inverted with
        // `!` would also reject NaN, but reads as its negation).
        fn positive(v: f64) -> bool {
            v.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater)
        }
        let t = &self.tree;
        if t.sites == 0 || t.aps_per_site == 0 || t.clients_per_ap == 0 {
            return Err("tree tiers must all be non-empty".into());
        }
        if t.client_rate_bps == 0 {
            return Err("client_rate_bps must be positive".into());
        }
        if !positive(t.ap_oversub) || !positive(t.site_oversub) {
            return Err("oversubscription ratios must be positive".into());
        }
        let l = &self.load;
        if !positive(l.horizon_s) {
            return Err("horizon_s must be positive".into());
        }
        if l.trough_hz < 0.0 || l.peak_hz < l.trough_hz {
            return Err("need 0 ≤ trough_hz ≤ peak_hz".into());
        }
        if !positive(l.mean_holding_s) {
            return Err("mean_holding_s must be positive".into());
        }
        if l.flow_rho_bps == 0 || l.flow_peak_bps < l.flow_rho_bps {
            return Err("need 0 < flow_rho_bps ≤ flow_peak_bps".into());
        }
        if !(0.0..=1.0).contains(&self.churn.class_fraction) {
            return Err("churn class_fraction must be in [0, 1]".into());
        }
        if self.churn.class_fraction > 0.0 && !positive(self.churn.mean_holding_s) {
            return Err("churn mean_holding_s must be positive".into());
        }
        for f in &self.flash_crowds {
            if f.site as usize >= t.sites {
                return Err(format!("flash crowd targets unknown site {}", f.site));
            }
            if !positive(f.duration_s) || f.at_s < 0.0 || f.extra_hz < 0.0 {
                return Err("flash crowd needs at_s ≥ 0, duration > 0, extra_hz ≥ 0".into());
            }
        }
        for lf in &self.link_failures {
            if lf.site as usize >= t.sites || lf.ap as usize >= t.aps_per_site {
                return Err(format!(
                    "link failure targets unknown AP {}/{}",
                    lf.site, lf.ap
                ));
            }
            if !positive(lf.duration_s) || lf.at_s < 0.0 {
                return Err("link failure needs at_s ≥ 0 and duration > 0".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "unit".into(),
            seed: 7,
            tree: TreeSpec {
                sites: 2,
                aps_per_site: 2,
                clients_per_ap: 4,
                client_rate_bps: 1_000_000,
                ap_oversub: 2.0,
                site_oversub: 1.5,
            },
            load: LoadSpec {
                horizon_s: 60.0,
                trough_hz: 2.0,
                peak_hz: 20.0,
                mean_holding_s: 10.0,
                flow_rho_bps: 16_000,
                flow_peak_bps: 64_000,
                flow_sigma_bytes: 2_000,
                flow_lmax_bytes: 125,
                d_req_ms: 2_440,
            },
            churn: ChurnSpec {
                class_fraction: 0.25,
                mean_holding_s: 2.0,
                class_d_req_ms: 2_440,
                class_cd_ms: 100,
            },
            flash_crowds: vec![FlashCrowdSpec {
                at_s: 20.0,
                duration_s: 10.0,
                site: 1,
                extra_hz: 30.0,
            }],
            link_failures: vec![LinkFailureSpec {
                at_s: 30.0,
                duration_s: 15.0,
                site: 0,
                ap: 1,
            }],
            resident_target: 0,
        }
    }

    #[test]
    fn json_round_trips() {
        let spec = small_spec();
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text).expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn optional_schedules_default_empty() {
        // A spec with no flash_crowds / link_failures / resident_target
        // keys at all still parses: those fields are #[serde(default)].
        let text = r#"{
            "name": "minimal",
            "seed": 1,
            "tree": {
                "sites": 1, "aps_per_site": 1, "clients_per_ap": 2,
                "client_rate_bps": 1000000,
                "ap_oversub": 1.0, "site_oversub": 1.0
            },
            "load": {
                "horizon_s": 10.0, "trough_hz": 1.0, "peak_hz": 2.0,
                "mean_holding_s": 5.0,
                "flow_rho_bps": 16000, "flow_peak_bps": 64000,
                "flow_sigma_bytes": 2000, "flow_lmax_bytes": 125,
                "d_req_ms": 2440
            },
            "churn": {
                "class_fraction": 0.0, "mean_holding_s": 1.0,
                "class_d_req_ms": 2440, "class_cd_ms": 100
            }
        }"#;
        let lenient = ScenarioSpec::from_json(text).expect("minimal spec parses");
        assert!(lenient.flash_crowds.is_empty());
        assert!(lenient.link_failures.is_empty());
        assert_eq!(lenient.resident_target, 0);
    }

    #[test]
    fn validation_rejects_impossible_specs() {
        let mut spec = small_spec();
        spec.tree.sites = 0;
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());

        let mut spec = small_spec();
        spec.flash_crowds[0].site = 9;
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());

        let mut spec = small_spec();
        spec.link_failures[0].ap = 5;
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());

        let mut spec = small_spec();
        spec.churn.class_fraction = 1.5;
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());

        let mut spec = small_spec();
        spec.load.peak_hz = spec.load.trough_hz - 1.0;
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());
    }

    #[test]
    fn tier_capacities_follow_the_oversubscription_ratios() {
        let t = small_spec().tree;
        // 4 clients × 1 Mb/s / 2.0 = 2 Mb/s per AP uplink.
        assert_eq!(t.ap_uplink_bps(), 2_000_000);
        // 2 APs × 2 Mb/s / 1.5 ≈ 2.667 Mb/s site link.
        assert_eq!(t.site_link_bps(), 2_666_667);
        assert_eq!(t.clients(), 16);
    }
}
