//! The deterministic scenario event engine.
//!
//! [`ScenarioTrace::generate`] composes four processes into one totally
//! ordered event sequence, all drawn from a single seeded PRNG stream
//! so the trace is a pure function of the spec:
//!
//! 1. **Diurnal base load** — a non-homogeneous Poisson arrival process
//!    whose intensity follows a raised-cosine day curve
//!    ([`workload::IntensityCurve::diurnal`]) from `trough_hz` up to
//!    `peak_hz` and back over the horizon, each arrival aimed at a
//!    uniformly random client;
//! 2. **Class churn** — a spec-given fraction of base arrivals join
//!    their AP's delay-service class instead of requesting per-flow
//!    service, holding only briefly — the §4.2 join/leave traffic that
//!    drives contingency grants, expiries, and resets at scale;
//! 3. **Flash crowds** — step bursts of extra per-flow arrivals
//!    confined to one site's clients;
//! 4. **Link failures** — scheduled down/up flips of one AP's primary
//!    uplink, under which the driver re-routes new admissions to the
//!    backup uplink.
//!
//! Every arrival gets a departure at `arrival + Exp(mean_holding)`,
//! possibly beyond the horizon — replay drains the full trace, so the
//! flow population always returns to its starting point.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::intensity::{sample_arrivals_rng, IntensityCurve};

use crate::spec::ScenarioSpec;

/// Flow ids in a trace start here, clear of the resident-flow ramp's
/// id range (`0..resident_target`) and of the broker's macroflow
/// top-half space.
pub const TRACE_FLOW_BASE: u64 = 1 << 33;

/// One scenario event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioEvent {
    /// Scenario-time instant, nanoseconds from trace start.
    pub at_ns: u64,
    /// What happens.
    pub kind: EventKind,
}

/// What a [`ScenarioEvent`] does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A flow requests admission at `client`'s leaf.
    Arrival {
        /// Trace-wide unique flow id (from [`TRACE_FLOW_BASE`]).
        flow: u64,
        /// Target client (global index).
        client: u32,
        /// True: join the client's AP class; false: per-flow service.
        class: bool,
        /// True when this arrival belongs to a flash-crowd burst.
        flash: bool,
    },
    /// The flow terminates (DRQ), if it was admitted.
    Departure {
        /// The departing flow.
        flow: u64,
        /// The client it arrived at.
        client: u32,
        /// Whether the arrival was a class join.
        class: bool,
    },
    /// An AP's primary uplink fails.
    LinkDown {
        /// Site of the AP.
        site: u32,
        /// AP index within the site.
        ap: u32,
    },
    /// The failed uplink recovers.
    LinkUp {
        /// Site of the AP.
        site: u32,
        /// AP index within the site.
        ap: u32,
    },
}

/// Per-kind totals of a trace, for rate checks and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioCounts {
    /// All arrivals (base + flash, per-flow + class).
    pub arrivals: u64,
    /// Arrivals that are class joins.
    pub class_arrivals: u64,
    /// Arrivals belonging to flash-crowd bursts.
    pub flash_arrivals: u64,
    /// Departures (always equals `arrivals`: the trace drains fully).
    pub departures: u64,
    /// Link-failure events.
    pub link_downs: u64,
    /// Link-recovery events.
    pub link_ups: u64,
}

/// A generated, totally ordered scenario trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioTrace {
    events: Vec<ScenarioEvent>,
}

impl ScenarioTrace {
    /// Generates the trace for `spec` — deterministic: the same spec
    /// (seed included) yields a byte-identical trace
    /// ([`ScenarioTrace::trace_bytes`]).
    #[must_use]
    pub fn generate(spec: &ScenarioSpec) -> Self {
        let mut rng = SmallRng::seed_from_u64(spec.seed);
        let clients = spec.tree.clients() as u64;
        let mut events = Vec::new();
        let mut next_flow = TRACE_FLOW_BASE;

        // 1 + 2: diurnal base arrivals, a fraction churning as class
        // joins. One day cycle spans the horizon.
        let curve = IntensityCurve::diurnal(
            spec.load.trough_hz,
            spec.load.peak_hz,
            spec.load.horizon_s,
            48,
        );
        for t in sample_arrivals_rng(&mut rng, &curve, spec.load.horizon_s) {
            let client = rng.gen_range(0..clients) as u32;
            let class = rng.gen_range(0.0..1.0) < spec.churn.class_fraction;
            let mean_hold = if class {
                spec.churn.mean_holding_s
            } else {
                spec.load.mean_holding_s
            };
            push_flow(
                &mut events,
                &mut next_flow,
                t,
                client,
                class,
                false,
                mean_hold,
                &mut rng,
            );
        }

        // 3: flash crowds — extra per-flow arrivals confined to a site.
        for crowd in &spec.flash_crowds {
            let site_clients = {
                let per_site = (spec.tree.aps_per_site * spec.tree.clients_per_ap) as u64;
                let lo = u64::from(crowd.site) * per_site;
                lo..lo + per_site
            };
            let flat = IntensityCurve::flat(crowd.extra_hz);
            for dt in sample_arrivals_rng(&mut rng, &flat, crowd.duration_s) {
                let t = crowd.at_s + dt;
                let client = rng.gen_range(site_clients.clone()) as u32;
                push_flow(
                    &mut events,
                    &mut next_flow,
                    t,
                    client,
                    false,
                    true,
                    spec.load.mean_holding_s,
                    &mut rng,
                );
            }
        }

        // 4: link failures.
        for f in &spec.link_failures {
            events.push(ScenarioEvent {
                at_ns: to_ns(f.at_s),
                kind: EventKind::LinkDown {
                    site: f.site,
                    ap: f.ap,
                },
            });
            events.push(ScenarioEvent {
                at_ns: to_ns(f.at_s + f.duration_s),
                kind: EventKind::LinkUp {
                    site: f.site,
                    ap: f.ap,
                },
            });
        }

        events.sort_by_key(|e| (e.at_ns, rank(&e.kind), ids(&e.kind)));
        ScenarioTrace { events }
    }

    /// The ordered event sequence.
    #[must_use]
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Per-kind totals.
    #[must_use]
    pub fn counts(&self) -> ScenarioCounts {
        let mut c = ScenarioCounts::default();
        for e in &self.events {
            match e.kind {
                EventKind::Arrival { class, flash, .. } => {
                    c.arrivals += 1;
                    c.class_arrivals += u64::from(class);
                    c.flash_arrivals += u64::from(flash);
                }
                EventKind::Departure { .. } => c.departures += 1,
                EventKind::LinkDown { .. } => c.link_downs += 1,
                EventKind::LinkUp { .. } => c.link_ups += 1,
            }
        }
        c
    }

    /// A canonical byte encoding of the trace — the determinism
    /// fingerprint the property tests compare. Little-endian, one
    /// record per event: `at_ns:u64, tag:u8, fields…`.
    #[must_use]
    pub fn trace_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 22);
        for e in &self.events {
            out.extend_from_slice(&e.at_ns.to_le_bytes());
            match e.kind {
                EventKind::Arrival {
                    flow,
                    client,
                    class,
                    flash,
                } => {
                    out.push(0);
                    out.extend_from_slice(&flow.to_le_bytes());
                    out.extend_from_slice(&client.to_le_bytes());
                    out.push(u8::from(class) | (u8::from(flash) << 1));
                }
                EventKind::Departure {
                    flow,
                    client,
                    class,
                } => {
                    out.push(1);
                    out.extend_from_slice(&flow.to_le_bytes());
                    out.extend_from_slice(&client.to_le_bytes());
                    out.push(u8::from(class));
                }
                EventKind::LinkDown { site, ap } => {
                    out.push(2);
                    out.extend_from_slice(&site.to_le_bytes());
                    out.extend_from_slice(&ap.to_le_bytes());
                }
                EventKind::LinkUp { site, ap } => {
                    out.push(3);
                    out.extend_from_slice(&site.to_le_bytes());
                    out.extend_from_slice(&ap.to_le_bytes());
                }
            }
        }
        out
    }
}

fn to_ns(t_s: f64) -> u64 {
    (t_s * 1e9).round() as u64
}

#[allow(clippy::too_many_arguments)]
fn push_flow(
    events: &mut Vec<ScenarioEvent>,
    next_flow: &mut u64,
    t_s: f64,
    client: u32,
    class: bool,
    flash: bool,
    mean_hold_s: f64,
    rng: &mut SmallRng,
) {
    let flow = *next_flow;
    *next_flow += 1;
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let hold_s = -u.ln() * mean_hold_s;
    events.push(ScenarioEvent {
        at_ns: to_ns(t_s),
        kind: EventKind::Arrival {
            flow,
            client,
            class,
            flash,
        },
    });
    events.push(ScenarioEvent {
        at_ns: to_ns(t_s + hold_s),
        kind: EventKind::Departure {
            flow,
            client,
            class,
        },
    });
}

/// Same-instant tie-break: departures first (free capacity before new
/// demand claims it), then arrivals, then link flips.
fn rank(k: &EventKind) -> u8 {
    match k {
        EventKind::Departure { .. } => 0,
        EventKind::Arrival { .. } => 1,
        EventKind::LinkDown { .. } => 2,
        EventKind::LinkUp { .. } => 3,
    }
}

fn ids(k: &EventKind) -> u64 {
    match k {
        EventKind::Arrival { flow, .. } | EventKind::Departure { flow, .. } => *flow,
        EventKind::LinkDown { site, ap } | EventKind::LinkUp { site, ap } => {
            (u64::from(*site) << 32) | u64::from(*ap)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{
        ChurnSpec, FlashCrowdSpec, LinkFailureSpec, LoadSpec, ScenarioSpec, TreeSpec,
    };

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "events-unit".into(),
            seed: 11,
            tree: TreeSpec {
                sites: 2,
                aps_per_site: 2,
                clients_per_ap: 8,
                client_rate_bps: 1_000_000,
                ap_oversub: 2.0,
                site_oversub: 1.0,
            },
            load: LoadSpec {
                horizon_s: 120.0,
                trough_hz: 2.0,
                peak_hz: 30.0,
                mean_holding_s: 20.0,
                flow_rho_bps: 16_000,
                flow_peak_bps: 64_000,
                flow_sigma_bytes: 2_000,
                flow_lmax_bytes: 125,
                d_req_ms: 2_440,
            },
            churn: ChurnSpec {
                class_fraction: 0.3,
                mean_holding_s: 2.0,
                class_d_req_ms: 2_440,
                class_cd_ms: 100,
            },
            flash_crowds: vec![FlashCrowdSpec {
                at_s: 40.0,
                duration_s: 20.0,
                site: 1,
                extra_hz: 25.0,
            }],
            link_failures: vec![LinkFailureSpec {
                at_s: 60.0,
                duration_s: 30.0,
                site: 0,
                ap: 1,
            }],
            resident_target: 0,
        }
    }

    #[test]
    fn trace_is_time_ordered_and_balanced() {
        let t = ScenarioTrace::generate(&spec());
        assert!(!t.events().is_empty());
        for w in t.events().windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
        let c = t.counts();
        assert_eq!(c.arrivals, c.departures, "trace drains fully");
        assert_eq!(c.link_downs, 1);
        assert_eq!(c.link_ups, 1);
        assert!(c.class_arrivals > 0);
        assert!(c.flash_arrivals > 0);
    }

    #[test]
    fn every_departure_follows_its_arrival() {
        let t = ScenarioTrace::generate(&spec());
        let mut seen = std::collections::HashMap::new();
        for e in t.events() {
            match e.kind {
                EventKind::Arrival {
                    flow,
                    client,
                    class,
                    ..
                } => {
                    assert!(seen.insert(flow, (e.at_ns, client, class)).is_none());
                }
                EventKind::Departure {
                    flow,
                    client,
                    class,
                } => {
                    let (at, a_client, a_class) = seen.remove(&flow).expect("arrival first");
                    assert!(e.at_ns >= at);
                    assert_eq!(client, a_client);
                    assert_eq!(class, a_class);
                }
                _ => {}
            }
        }
        assert!(seen.is_empty(), "unmatched arrivals");
    }

    #[test]
    fn flash_arrivals_stay_in_their_site_and_window() {
        let s = spec();
        let t = ScenarioTrace::generate(&s);
        let per_site = (s.tree.aps_per_site * s.tree.clients_per_ap) as u32;
        for e in t.events() {
            if let EventKind::Arrival {
                client,
                flash: true,
                class,
                ..
            } = e.kind
            {
                assert!(!class, "flash arrivals are per-flow");
                assert!((per_site..2 * per_site).contains(&client), "site-1 client");
                let t_s = e.at_ns as f64 / 1e9;
                assert!((40.0..60.0).contains(&t_s), "inside the burst window");
            }
        }
    }

    #[test]
    fn flow_ids_start_above_the_ramp_space() {
        let t = ScenarioTrace::generate(&spec());
        for e in t.events() {
            if let EventKind::Arrival { flow, .. } = e.kind {
                assert!(flow >= TRACE_FLOW_BASE);
            }
        }
    }

    #[test]
    fn same_instant_departures_precede_arrivals() {
        // Ranks are fixed by construction; assert the comparator.
        assert!(
            rank(&EventKind::Departure {
                flow: 0,
                client: 0,
                class: false
            }) < rank(&EventKind::Arrival {
                flow: 0,
                client: 0,
                class: false,
                flash: false
            })
        );
    }

    #[test]
    fn trace_bytes_round_determinism() {
        let a = ScenarioTrace::generate(&spec());
        let b = ScenarioTrace::generate(&spec());
        assert_eq!(a.trace_bytes(), b.trace_bytes());
        let mut other = spec();
        other.seed += 1;
        assert_ne!(
            a.trace_bytes(),
            ScenarioTrace::generate(&other).trace_bytes()
        );
    }
}
