//! The subscriber-tree topology generator.
//!
//! ISP access networks are trees: a site (head-end) feeds
//! access points, each access point feeds subscriber clients, and every
//! tier is oversubscribed relative to the sum of its children — the
//! shape LibreQoS mirrors in its HTB hierarchy. [`SubscriberTree`]
//! emits that shape as a [`netsim::Topology`]:
//!
//! ```text
//!   ingress(p) ──site link──▶ site(p) ══two parallel uplinks══▶ ap(p,j)
//!                                            (primary+backup)     │ leaf
//!                                                                 ▼
//!                                                             client(p,j,k)
//! ```
//!
//! Every node of site `p` is annotated with pod `p`, so each site is a
//! link-disjoint pod and the daemon shards the tree site-wise
//! ([`bb_core::shard`]). Each client gets two registered routes —
//! through the primary and the backup AP uplink — at consecutive path
//! ids, so a link-failure event re-routes new admissions by flipping
//! one path-id bit. Each AP carries one delay-service class
//! ([`ClassSpec`], id = global AP index) for the churn workload's
//! class joins.

use bb_core::admission::aggregate::ClassSpec;
use bb_core::PathId;
use netsim::topology::{LinkId, SchedulerSpec, Topology, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate};

use crate::spec::{ChurnSpec, TreeSpec};

/// A generated subscriber tree: topology, per-client routes, per-AP
/// classes, and the index arithmetic tying them together.
#[derive(Debug, Clone)]
pub struct SubscriberTree {
    /// The tree topology (sites pod-annotated).
    pub topo: Topology,
    /// Registered routes, two per client: `2c` through the primary AP
    /// uplink, `2c + 1` through the backup.
    pub routes: Vec<Vec<LinkId>>,
    /// One delay-service class per AP, id = global AP index.
    pub classes: Vec<ClassSpec>,
    /// Primary site→AP uplink per global AP index.
    pub ap_primary_uplink: Vec<LinkId>,
    /// Backup site→AP uplink per global AP index.
    pub ap_backup_uplink: Vec<LinkId>,
    sites: usize,
    aps_per_site: usize,
    clients_per_ap: usize,
}

impl SubscriberTree {
    /// Builds the tree for `spec`, with churn's class parameters.
    ///
    /// # Panics
    ///
    /// Panics on an empty tier or a zero computed capacity — validated
    /// specs (see [`crate::ScenarioSpec::from_json`]) never do.
    #[must_use]
    pub fn build(spec: &TreeSpec, churn: &ChurnSpec) -> Self {
        assert!(
            spec.sites > 0 && spec.aps_per_site > 0 && spec.clients_per_ap > 0,
            "tree tiers must be non-empty"
        );
        let client_rate = Rate::from_bps(spec.client_rate_bps);
        let ap_rate = Rate::from_bps(spec.ap_uplink_bps());
        let site_rate = Rate::from_bps(spec.site_link_bps());
        let lmax = Bits::from_bytes(1500);
        let sched = SchedulerSpec::CsVc;

        let mut b = TopologyBuilder::new();
        let mut routes = Vec::with_capacity(spec.clients() * 2);
        let mut ap_primary_uplink = Vec::with_capacity(spec.sites * spec.aps_per_site);
        let mut ap_backup_uplink = Vec::with_capacity(spec.sites * spec.aps_per_site);
        for p in 0..spec.sites {
            let ingress = b.node_in_pod(format!("i{p}"), p);
            let site = b.node_in_pod(format!("s{p}"), p);
            let site_link = b.link(ingress, site, site_rate, Nanos::ZERO, sched, lmax);
            for j in 0..spec.aps_per_site {
                let ap = b.node_in_pod(format!("a{p}_{j}"), p);
                let primary = b.link(site, ap, ap_rate, Nanos::ZERO, sched, lmax);
                let backup = b.link(site, ap, ap_rate, Nanos::ZERO, sched, lmax);
                ap_primary_uplink.push(primary);
                ap_backup_uplink.push(backup);
                for k in 0..spec.clients_per_ap {
                    let client = b.node_in_pod(format!("c{p}_{j}_{k}"), p);
                    let leaf = b.link(ap, client, client_rate, Nanos::ZERO, sched, lmax);
                    routes.push(vec![site_link, primary, leaf]);
                    routes.push(vec![site_link, backup, leaf]);
                }
            }
        }

        let classes = (0..spec.sites * spec.aps_per_site)
            .map(|ap| ClassSpec {
                id: ap as u32,
                d_req: Nanos::from_millis(churn.class_d_req_ms),
                cd: Nanos::from_millis(churn.class_cd_ms),
            })
            .collect();

        SubscriberTree {
            topo: b.build(),
            routes,
            classes,
            ap_primary_uplink,
            ap_backup_uplink,
            sites: spec.sites,
            aps_per_site: spec.aps_per_site,
            clients_per_ap: spec.clients_per_ap,
        }
    }

    /// Total clients.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.sites * self.aps_per_site * self.clients_per_ap
    }

    /// The client's primary route (through its AP's primary uplink).
    #[must_use]
    pub fn primary_path(&self, client: usize) -> PathId {
        PathId(2 * client as u64)
    }

    /// The client's backup route (through its AP's backup uplink).
    #[must_use]
    pub fn backup_path(&self, client: usize) -> PathId {
        PathId(2 * client as u64 + 1)
    }

    /// Global AP index of a client.
    #[must_use]
    pub fn ap_of_client(&self, client: usize) -> usize {
        client / self.clients_per_ap
    }

    /// Site of a client.
    #[must_use]
    pub fn site_of_client(&self, client: usize) -> usize {
        client / (self.clients_per_ap * self.aps_per_site)
    }

    /// Global AP index of `(site, ap)`.
    #[must_use]
    pub fn ap_index(&self, site: u32, ap: u32) -> usize {
        site as usize * self.aps_per_site + ap as usize
    }

    /// The contiguous range of client indices under one site.
    #[must_use]
    pub fn clients_of_site(&self, site: u32) -> std::ops::Range<usize> {
        let per_site = self.aps_per_site * self.clients_per_ap;
        let lo = site as usize * per_site;
        lo..lo + per_site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChurnSpec, TreeSpec};

    fn tree_spec() -> TreeSpec {
        TreeSpec {
            sites: 3,
            aps_per_site: 2,
            clients_per_ap: 4,
            client_rate_bps: 1_000_000,
            ap_oversub: 2.0,
            site_oversub: 1.0,
        }
    }

    fn churn_spec() -> ChurnSpec {
        ChurnSpec {
            class_fraction: 0.1,
            mean_holding_s: 2.0,
            class_d_req_ms: 2_440,
            class_cd_ms: 100,
        }
    }

    #[test]
    fn shape_counts_add_up() {
        let t = SubscriberTree::build(&tree_spec(), &churn_spec());
        // Per site: ingress + site + 2 APs + 8 clients = 12 nodes.
        assert_eq!(t.topo.node_count(), 3 * 12);
        // Per site: 1 site link + 2×2 uplinks + 8 leaves = 13 links.
        assert_eq!(t.topo.link_count(), 3 * 13);
        assert_eq!(t.clients(), 24);
        assert_eq!(t.routes.len(), 48);
        assert_eq!(t.classes.len(), 6);
        assert_eq!(t.ap_primary_uplink.len(), 6);
        assert_eq!(t.ap_backup_uplink.len(), 6);
    }

    #[test]
    fn every_route_is_pod_confined_to_its_site() {
        let t = SubscriberTree::build(&tree_spec(), &churn_spec());
        for c in 0..t.clients() {
            let site = t.site_of_client(c);
            for path in [t.primary_path(c), t.backup_path(c)] {
                let route = &t.routes[path.0 as usize];
                assert_eq!(route.len(), 3, "site link + uplink + leaf");
                assert_eq!(t.topo.route_pod(route), Some(site));
            }
        }
    }

    #[test]
    fn primary_and_backup_share_only_site_and_leaf_links() {
        let t = SubscriberTree::build(&tree_spec(), &churn_spec());
        for c in 0..t.clients() {
            let p = &t.routes[t.primary_path(c).0 as usize];
            let b = &t.routes[t.backup_path(c).0 as usize];
            assert_eq!(p[0], b[0], "same site link");
            assert_ne!(p[1], b[1], "distinct uplinks");
            assert_eq!(p[2], b[2], "same leaf");
            let ap = t.ap_of_client(c);
            assert_eq!(p[1], t.ap_primary_uplink[ap]);
            assert_eq!(b[1], t.ap_backup_uplink[ap]);
        }
    }

    #[test]
    fn tier_capacities_follow_the_spec() {
        let spec = tree_spec();
        let t = SubscriberTree::build(&spec, &churn_spec());
        let ap0 = t.ap_primary_uplink[0];
        assert_eq!(t.topo.link(ap0).capacity, Rate::from_bps(2_000_000));
        let leaf = *t.routes[0].last().unwrap();
        assert_eq!(t.topo.link(leaf).capacity, Rate::from_bps(1_000_000));
        let site_link = t.routes[0][0];
        assert_eq!(t.topo.link(site_link).capacity, Rate::from_bps(4_000_000));
    }

    #[test]
    fn index_arithmetic_is_consistent() {
        let t = SubscriberTree::build(&tree_spec(), &churn_spec());
        assert_eq!(t.ap_of_client(0), 0);
        assert_eq!(t.ap_of_client(7), 1);
        assert_eq!(t.site_of_client(7), 0);
        assert_eq!(t.site_of_client(8), 1);
        assert_eq!(t.ap_index(1, 1), 3);
        assert_eq!(t.clients_of_site(1), 8..16);
        // Classes are per-AP, ids dense from 0.
        for (i, c) in t.classes.iter().enumerate() {
            assert_eq!(c.id, i as u32);
        }
    }
}
