//! ISP-scale scenario engine for the bandwidth-broker benchmarks.
//!
//! The paper's evaluation (§5) drives constant-rate Poisson arrivals
//! over symmetric chains; a broker claiming ISP scale has to survive
//! what an ISP actually sees. This crate supplies that workload in
//! three deterministic, seedable pieces:
//!
//! * [`spec`] — the JSON scenario specification consumed by
//!   `bb-loadgen --scenario <spec.json>`;
//! * [`tree`] — a LibreQoS-style subscriber-tree generator: site →
//!   access-point → client tiers with per-tier capacity and
//!   oversubscription ratios, emitted as a [`netsim::Topology`] with
//!   per-client primary/backup routes and a per-AP delay-service class
//!   so admissions exercise the hierarchical/macroflow path (§4);
//! * [`events`] — an event engine layered on [`workload`] composing
//!   diurnal load curves, flash-crowd spikes targeting one subtree,
//!   heavy class-join/leave churn (driving the §4.2 contingency
//!   machinery), and mid-load link-failure/re-route events into one
//!   totally ordered trace.
//!
//! Everything is a pure function of the spec and its seed: the same
//! spec replays byte-for-byte (see `trace_bytes`), so scheme and
//! version comparisons stay paired.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod spec;
pub mod tree;

pub use events::{EventKind, ScenarioCounts, ScenarioEvent, ScenarioTrace};
pub use spec::{ChurnSpec, FlashCrowdSpec, LinkFailureSpec, LoadSpec, ScenarioSpec, TreeSpec};
pub use tree::SubscriberTree;
