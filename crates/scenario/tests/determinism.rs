//! Property tests for workload determinism: the scenario trace is a
//! pure function of its spec, and the composed processes hit the rates
//! the spec declares.

use bb_scenario::{
    ChurnSpec, EventKind, FlashCrowdSpec, LinkFailureSpec, LoadSpec, ScenarioSpec, ScenarioTrace,
    TreeSpec,
};
use proptest::prelude::*;

/// Builds a structurally valid spec from sampled knobs.
#[allow(clippy::too_many_arguments)]
fn spec(
    seed: u64,
    sites: usize,
    aps: usize,
    clients: usize,
    trough_hz: f64,
    peak_hz: f64,
    class_fraction: f64,
    flash: Option<(f64, f64, u32, f64)>,
    failure: Option<(f64, f64, u32, u32)>,
) -> ScenarioSpec {
    ScenarioSpec {
        name: "prop".into(),
        seed,
        tree: TreeSpec {
            sites,
            aps_per_site: aps,
            clients_per_ap: clients,
            client_rate_bps: 1_000_000,
            ap_oversub: 2.0,
            site_oversub: 1.0,
        },
        load: LoadSpec {
            horizon_s: 200.0,
            trough_hz,
            peak_hz,
            mean_holding_s: 15.0,
            flow_rho_bps: 16_000,
            flow_peak_bps: 64_000,
            flow_sigma_bytes: 2_000,
            flow_lmax_bytes: 125,
            d_req_ms: 2_440,
        },
        churn: ChurnSpec {
            class_fraction,
            mean_holding_s: 2.0,
            class_d_req_ms: 2_440,
            class_cd_ms: 100,
        },
        flash_crowds: flash
            .map(|(at_s, duration_s, site, extra_hz)| {
                vec![FlashCrowdSpec {
                    at_s,
                    duration_s,
                    site: site % sites as u32,
                    extra_hz,
                }]
            })
            .unwrap_or_default(),
        link_failures: failure
            .map(|(at_s, duration_s, site, ap)| {
                vec![LinkFailureSpec {
                    at_s,
                    duration_s,
                    site: site % sites as u32,
                    ap: ap % aps as u32,
                }]
            })
            .unwrap_or_default(),
        resident_target: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The same spec + seed yields a byte-identical event trace; a
    /// different seed diverges (for any workload that has events).
    #[test]
    fn same_spec_and_seed_is_byte_identical(
        seed in 0u64..1_000_000,
        sites in 1usize..4,
        aps in 1usize..4,
        clients in 1usize..9,
        trough in 1.0f64..5.0,
        extra in 2.0f64..40.0,
    ) {
        let peak = trough * 4.0;
        let s = spec(seed, sites, aps, clients, trough, peak, 0.2,
            Some((50.0, 30.0, 0, extra)), Some((80.0, 40.0, 0, 0)));
        let a = ScenarioTrace::generate(&s).trace_bytes();
        let b = ScenarioTrace::generate(&s).trace_bytes();
        prop_assert_eq!(&a, &b);

        let mut reseeded = s.clone();
        reseeded.seed = seed.wrapping_add(1);
        let c = ScenarioTrace::generate(&reseeded).trace_bytes();
        prop_assert_ne!(&a, &c);
    }

    /// Flash-crowd arrival counts match the burst's declared rate ×
    /// duration (within Poisson tolerance), stay inside the burst
    /// window, and target only the named site's clients.
    #[test]
    fn flash_crowd_counts_match_declared_rates(
        seed in 0u64..1_000_000,
        extra_hz in 5.0f64..60.0,
        duration in 20.0f64..80.0,
        site in 0u32..3,
    ) {
        let s = spec(seed, 3, 2, 8, 0.5, 2.0, 0.0,
            Some((60.0, duration, site, extra_hz)), None);
        let trace = ScenarioTrace::generate(&s);
        let c = trace.counts();
        let expected = extra_hz * duration;
        let tol = 5.0 * expected.sqrt() + 1.0;
        prop_assert!(
            ((c.flash_arrivals as f64) - expected).abs() < tol,
            "flash arrivals {} vs expected {:.0} ± {:.0}",
            c.flash_arrivals, expected, tol
        );
        let per_site = 16u32;
        let target = site % 3;
        for e in trace.events() {
            if let EventKind::Arrival { client, flash: true, .. } = e.kind {
                prop_assert_eq!(client / per_site, target);
            }
        }
    }

    /// The class-join share of base arrivals matches the churn spec's
    /// declared fraction, and link events mirror the failure schedule.
    #[test]
    fn churn_fraction_and_link_schedule_match_the_spec(
        seed in 0u64..1_000_000,
        class_fraction in 0.05f64..0.95,
    ) {
        let s = spec(seed, 2, 2, 8, 4.0, 16.0, class_fraction,
            None, Some((100.0, 50.0, 1, 1)));
        let trace = ScenarioTrace::generate(&s);
        let c = trace.counts();
        prop_assert_eq!(c.link_downs, 1);
        prop_assert_eq!(c.link_ups, 1);
        prop_assert_eq!(c.arrivals, c.departures);
        prop_assert!(c.arrivals > 100, "enough samples for a fraction test");
        let share = c.class_arrivals as f64 / c.arrivals as f64;
        // Binomial tolerance: 5 standard errors.
        let se = (class_fraction * (1.0 - class_fraction) / c.arrivals as f64).sqrt();
        prop_assert!(
            (share - class_fraction).abs() < 5.0 * se + 0.01,
            "class share {share:.3} vs declared {class_fraction:.3}"
        );
    }
}
