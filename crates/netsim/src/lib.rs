//! A deterministic discrete-event packet-level network simulator.
//!
//! `netsim` is the testbed substrate for the bandwidth-broker evaluation:
//! it wires [`sched`] schedulers into a [`topology`], attaches [`source`]
//! models and VTRS edge conditioners to ingress nodes, and runs an
//! event-driven simulation with nanosecond resolution. Everything is
//! seeded and deterministic — two runs of the same configuration produce
//! byte-identical statistics.
//!
//! Design notes (following the smoltcp school of simulation substrates):
//!
//! * **Sans-IO, single-threaded, no wall clock.** The simulator advances
//!   a logical [`qos_units::Time`]; nothing blocks, sleeps, or reads the
//!   host clock.
//! * **Lazy event invalidation.** Components (conditioners, schedulers)
//!   are re-queried on event pop, so stale heap entries are skipped
//!   rather than deleted — the standard calendar-queue discipline.
//! * **Validation mode.** When enabled, every packet arrival at every hop
//!   is checked against the VTRS virtual-spacing and reality-check
//!   properties, turning the simulator into an executable proof-checker
//!   for the delay-bound theorems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;
pub mod source;
pub mod stats;
pub mod topology;
pub mod trace;

pub use sim::Simulator;
pub use source::SourceModel;
pub use stats::FlowStats;
pub use topology::{LinkId, NodeId, SchedulerSpec, Topology, TopologyBuilder};
