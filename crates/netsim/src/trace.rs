//! Per-packet event tracing.
//!
//! When enabled, the simulator records a bounded log of packet lifecycle
//! events — creation, conditioner release (core entry), per-hop
//! departure, delivery — with their timestamps and, where available, the
//! packet's virtual time stamp at that point. Traces turn bound
//! violations from a single aggregate number into a packet-level story,
//! and they are how the examples print "a packet's journey".

use qos_units::Time;
use vtrs::packet::FlowId;

/// What happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The source emitted the packet into the edge conditioner.
    Created,
    /// The conditioner released it into the core (dynamic packet state
    /// stamped).
    EnteredCore,
    /// It departed the scheduler of the given hop (index along the
    /// flow's route).
    DepartedHop(usize),
    /// It left the domain at the egress.
    Delivered,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (simulation clock).
    pub at: Time,
    /// The flow.
    pub flow: FlowId,
    /// Sequence number within the flow.
    pub seq: u64,
    /// The event.
    pub kind: TraceEventKind,
    /// The packet's virtual time stamp `ω̃` at this point, when the
    /// packet carries state (`None` before conditioning).
    pub virtual_time: Option<Time>,
}

/// A bounded in-memory trace buffer.
///
/// Keeps the **first** `capacity` events (simulations are deterministic,
/// so the interesting prefix is reproducible; re-run with a larger
/// capacity to see more).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding up to `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (dropped once full).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// All recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one packet, in order.
    #[must_use]
    pub fn packet_journey(&self, flow: FlowId, seq: u64) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.flow == flow && e.seq == seq)
            .copied()
            .collect()
    }

    /// How many events were dropped after the buffer filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders a packet's journey as one line per event.
    #[must_use]
    pub fn render_journey(&self, flow: FlowId, seq: u64) -> String {
        let mut out = String::new();
        for e in self.packet_journey(flow, seq) {
            let vt = e
                .virtual_time
                .map(|v| format!(" (ω̃ = {:.6}s)", v.as_secs_f64()))
                .unwrap_or_default();
            let what = match e.kind {
                TraceEventKind::Created => "created at source".to_owned(),
                TraceEventKind::EnteredCore => "entered core (conditioned)".to_owned(),
                TraceEventKind::DepartedHop(h) => format!("departed hop {h}"),
                TraceEventKind::Delivered => "delivered at egress".to_owned(),
            };
            out.push_str(&format!(
                "t={:>12.6}s  {} seq {}  {}{}\n",
                e.at.as_secs_f64(),
                e.flow,
                e.seq,
                what,
                vt
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, seq: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at: Time::from_nanos(at_ns),
            flow: FlowId(1),
            seq,
            kind,
            virtual_time: None,
        }
    }

    #[test]
    fn records_in_order_and_bounds_capacity() {
        let mut t = TraceBuffer::new(3);
        for k in 0..5 {
            t.record(ev(k, k, TraceEventKind::Created));
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn journey_filters_one_packet() {
        let mut t = TraceBuffer::new(10);
        t.record(ev(0, 0, TraceEventKind::Created));
        t.record(ev(1, 1, TraceEventKind::Created));
        t.record(ev(2, 0, TraceEventKind::EnteredCore));
        t.record(ev(3, 0, TraceEventKind::DepartedHop(0)));
        t.record(ev(4, 0, TraceEventKind::Delivered));
        let j = t.packet_journey(FlowId(1), 0);
        assert_eq!(j.len(), 4);
        assert_eq!(j[3].kind, TraceEventKind::Delivered);
        let s = t.render_journey(FlowId(1), 0);
        assert!(s.contains("entered core"));
        assert!(s.contains("departed hop 0"));
    }
}
