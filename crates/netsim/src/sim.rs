//! The event-driven simulator core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use qos_units::{Bits, Nanos, Rate, Time};
use sched::{CJVc, CsVc, Fifo, Scheduler, VtEdf};
use vtrs::conditioner::EdgeConditioner;
use vtrs::packet::{FlowId, Packet};
use vtrs::reference::{advance, RealityChecker, SpacingChecker};

use crate::source::{SourceModel, SourceState};
use crate::stats::FlowStats;
use crate::topology::{LinkId, SchedulerSpec, Topology};
use crate::trace::{TraceBuffer, TraceEvent, TraceEventKind};

/// What an event refers to. Events are lazily validated: on pop the owning
/// component is re-queried, so stale entries are skipped harmlessly.
#[derive(Debug)]
enum EventKind {
    /// A source may emit its next packet.
    Source(usize),
    /// A flow's edge conditioner may release its head packet.
    Conditioner(FlowId),
    /// A link's scheduler may complete a departure (or an eligibility
    /// instant passed).
    Link(LinkId),
    /// A packet in flight arrives at the head of `link`'s queue (after
    /// the upstream propagation delay).
    Arrive(LinkId, Box<Packet>),
    /// A packet leaves the network at its egress.
    Deliver(Box<Packet>),
}

#[derive(Debug)]
struct Event {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Per-flow runtime state.
#[derive(Debug)]
struct FlowRt {
    route: Vec<LinkId>,
    conditioner: EdgeConditioner,
    stats: FlowStats,
    /// Per-hop VTRS validators (validation mode only); index 0 is the
    /// conditioner output, index i ≥ 1 the arrival at route hop i−1.
    spacing: Vec<SpacingChecker>,
    reality: Vec<RealityChecker>,
    next_seq: u64,
}

/// Per-source runtime record.
#[derive(Debug)]
struct SourceRt {
    flow: FlowId,
    state: SourceState,
}

/// Telemetry for one link.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    /// Packets that departed the link's scheduler.
    pub packets: u64,
    /// Bits carried.
    pub bits: u64,
    /// Time of the last departure.
    pub last_departure: Time,
}

impl LinkStats {
    /// Mean utilization of a link of `capacity` over `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, capacity: Rate, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        let carried = self.bits as f64;
        let could = capacity.as_bps() as f64 * horizon.as_secs_f64();
        (carried / could).min(1.0)
    }
}

/// The discrete-event simulator.
///
/// Construct with a [`Topology`], add flows (each with a reserved rate,
/// delay parameter and route) and sources, then [`Simulator::run_until`]
/// or [`Simulator::run_to_completion`]. Control-plane actions (the
/// bandwidth broker re-rating a macroflow, granting or withdrawing
/// contingency bandwidth) are applied between `run_until` calls through
/// [`Simulator::set_flow_rate`] and [`Simulator::set_flow_contingency`] —
/// exactly the BB → edge-conditioner signaling path of the paper, with
/// the simulator standing in for the wire.
#[derive(Debug)]
pub struct Simulator {
    topo: Topology,
    links: Vec<Box<dyn Scheduler>>,
    /// Per-link counters: (packets forwarded, bits forwarded, busy time).
    link_stats: Vec<LinkStats>,
    flows: HashMap<FlowId, FlowRt>,
    sources: Vec<SourceRt>,
    queue: BinaryHeap<Reverse<Event>>,
    now: Time,
    seq: u64,
    validate: bool,
    trace: Option<TraceBuffer>,
}

impl Simulator {
    /// Creates a simulator over `topo`, instantiating each link's
    /// scheduler.
    #[must_use]
    pub fn new(topo: Topology) -> Self {
        let links: Vec<Box<dyn Scheduler>> = topo
            .links()
            .iter()
            .map(|l| -> Box<dyn Scheduler> {
                match l.scheduler {
                    SchedulerSpec::CsVc => Box::new(CsVc::new(l.capacity, l.max_packet)),
                    SchedulerSpec::CJVc => Box::new(CJVc::new(l.capacity, l.max_packet)),
                    SchedulerSpec::VtEdf => Box::new(VtEdf::new(l.capacity, l.max_packet)),
                    SchedulerSpec::Fifo { assumed_psi } => {
                        Box::new(Fifo::new(l.capacity, assumed_psi))
                    }
                }
            })
            .collect();
        let link_stats = vec![LinkStats::default(); links.len()];
        Simulator {
            topo,
            links,
            link_stats,
            flows: HashMap::new(),
            sources: Vec::new(),
            queue: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
            validate: false,
            trace: None,
        }
    }

    /// Enables VTRS invariant checking on every hop arrival (slower;
    /// counts land in [`FlowStats`]).
    pub fn enable_validation(&mut self) {
        self.validate = true;
    }

    /// Enables per-packet event tracing, keeping the first `capacity`
    /// events (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// The trace buffer, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    fn record_trace(&mut self, at: Time, pkt: &Packet, kind: TraceEventKind) {
        if let Some(t) = &mut self.trace {
            t.record(TraceEvent {
                at,
                flow: pkt.flow,
                seq: pkt.seq,
                kind,
                virtual_time: pkt.state.as_ref().map(|s| s.virtual_time),
            });
        }
    }

    /// The simulation clock.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read access to the topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Registers a flow with reserved rate `rate` and delay parameter
    /// `delay` over `route` (ordered link ids forming a path). An edge
    /// conditioner is created at the route head.
    ///
    /// # Panics
    ///
    /// Panics if the route is empty, discontinuous, or the flow id is
    /// already registered.
    pub fn add_flow(&mut self, id: FlowId, rate: Rate, delay: Nanos, route: Vec<LinkId>) {
        assert!(!route.is_empty(), "flow route must have at least one hop");
        for w in route.windows(2) {
            assert_eq!(
                self.topo.link(w[0]).to,
                self.topo.link(w[1]).from,
                "flow route is discontinuous"
            );
        }
        let q = self.topo.path_spec(&route).q();
        let hops = route.len();
        let prev = self.flows.insert(
            id,
            FlowRt {
                route,
                conditioner: EdgeConditioner::new(rate, delay, q),
                stats: FlowStats::default(),
                spacing: vec![SpacingChecker::new(); hops + 1],
                reality: vec![RealityChecker::new(); hops + 1],
                next_seq: 0,
            },
        );
        assert!(prev.is_none(), "flow {id} registered twice");
    }

    /// Removes a flow (its in-flight packets still drain). Returns its
    /// statistics.
    pub fn remove_flow(&mut self, id: FlowId) -> Option<FlowStats> {
        self.flows.remove(&id).map(|f| f.stats)
    }

    /// Attaches a source feeding `flow`. `start`/`stop`/`limit` bound the
    /// emission schedule.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    pub fn add_source(
        &mut self,
        flow: FlowId,
        model: SourceModel,
        start: Time,
        stop: Option<Time>,
        limit: Option<u64>,
    ) {
        assert!(self.flows.contains_key(&flow), "unknown flow {flow}");
        let state = SourceState::new(model, start, stop, limit);
        let idx = self.sources.len();
        if let Some(at) = state.next_emission() {
            self.push(at, EventKind::Source(idx));
        }
        self.sources.push(SourceRt { flow, state });
    }

    /// Re-configures a flow's reserved rate (BB → edge signaling).
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    pub fn set_flow_rate(&mut self, flow: FlowId, rate: Rate) {
        let f = self
            .flows
            .get_mut(&flow)
            .unwrap_or_else(|| panic!("unknown flow {flow}"));
        f.conditioner.set_reserved_rate(rate);
        self.reschedule_conditioner(flow);
    }

    /// Sets a flow's total contingency bandwidth (BB → edge signaling).
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    pub fn set_flow_contingency(&mut self, flow: FlowId, extra: Rate) {
        let f = self
            .flows
            .get_mut(&flow)
            .unwrap_or_else(|| panic!("unknown flow {flow}"));
        f.conditioner.set_contingency(extra);
        self.reschedule_conditioner(flow);
    }

    /// The flow's edge-conditioner backlog (the `Q(t)` feeding the
    /// contingency feedback scheme).
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    #[must_use]
    pub fn flow_backlog(&self, flow: FlowId) -> Bits {
        self.flows
            .get(&flow)
            .unwrap_or_else(|| panic!("unknown flow {flow}"))
            .conditioner
            .backlog()
    }

    /// Maximum edge-conditioning delay any packet of the flow has seen.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    #[must_use]
    pub fn flow_max_edge_delay(&self, flow: FlowId) -> Nanos {
        self.flows
            .get(&flow)
            .unwrap_or_else(|| panic!("unknown flow {flow}"))
            .conditioner
            .max_delay()
    }

    /// Sets the statistics threshold for a flow: packets created at or
    /// after `t` are additionally tracked in the `*_post` maxima of
    /// [`FlowStats`].
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    pub fn set_flow_threshold(&mut self, flow: FlowId, t: Time) {
        self.flows
            .get_mut(&flow)
            .unwrap_or_else(|| panic!("unknown flow {flow}"))
            .stats
            .threshold = t;
    }

    /// Telemetry for a link (packets/bits forwarded, last departure).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range link id.
    #[must_use]
    pub fn link_stats(&self, link: LinkId) -> &LinkStats {
        &self.link_stats[link.0]
    }

    /// Delivery statistics for a flow.
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown.
    #[must_use]
    pub fn flow_stats(&self, flow: FlowId) -> &FlowStats {
        &self
            .flows
            .get(&flow)
            .unwrap_or_else(|| panic!("unknown flow {flow}"))
            .stats
    }

    /// Runs until the event queue is exhausted (all sources done, all
    /// packets delivered). Returns the final clock.
    pub fn run_to_completion(&mut self) -> Time {
        self.run_until(Time::MAX)
    }

    /// Processes every event with timestamp ≤ `deadline`, advancing the
    /// clock. Events beyond the deadline stay queued.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let Reverse(ev) = self.queue.pop().expect("peeked event exists");
            debug_assert!(ev.at >= self.now, "event time went backwards");
            self.now = ev.at;
            self.dispatch(ev);
        }
        self.now = self.now.max(match deadline {
            Time::MAX => self.now,
            d => d,
        });
        self.now
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { at, seq, kind }));
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Source(idx) => self.on_source(ev.at, idx),
            EventKind::Conditioner(flow) => self.on_conditioner(ev.at, flow),
            EventKind::Link(link) => self.on_link(ev.at, link),
            EventKind::Arrive(link, pkt) => self.on_arrive(ev.at, link, *pkt),
            EventKind::Deliver(pkt) => self.on_deliver(ev.at, *pkt),
        }
    }

    fn on_source(&mut self, now: Time, idx: usize) {
        let src = &mut self.sources[idx];
        // Lazy validation: only act if this event matches the schedule.
        let Some(due) = src.state.next_emission() else {
            return;
        };
        if due != now {
            return;
        }
        let size = src.state.emit();
        let flow_id = src.flow;
        if let Some(at) = src.state.next_emission() {
            self.push(at, EventKind::Source(idx));
        }
        let f = self
            .flows
            .get_mut(&flow_id)
            .expect("source references registered flow");
        let seq = f.next_seq;
        f.next_seq += 1;
        let pkt = Packet::new(flow_id, seq, size, now);
        self.record_trace(now, &pkt, TraceEventKind::Created);
        let f = self
            .flows
            .get_mut(&flow_id)
            .expect("source references registered flow");
        f.conditioner.arrive(now, pkt);
        self.reschedule_conditioner(flow_id);
    }

    fn reschedule_conditioner(&mut self, flow: FlowId) {
        if let Some(at) = self
            .flows
            .get(&flow)
            .and_then(|f| f.conditioner.next_release_time())
        {
            self.push(at.max(self.now), EventKind::Conditioner(flow));
        }
    }

    fn on_conditioner(&mut self, now: Time, flow: FlowId) {
        let Some(f) = self.flows.get_mut(&flow) else {
            return;
        };
        let mut released = Vec::new();
        while let Some(pkt) = f.conditioner.release(now) {
            released.push(pkt);
        }
        if self.validate {
            for pkt in &released {
                if !f.spacing[0].observe(pkt.state(), pkt.size) {
                    f.stats.spacing_violations += 1;
                }
            }
        }
        let first_hop = f.route[0];
        if let Some(at) = f.conditioner.next_release_time() {
            self.push(at, EventKind::Conditioner(flow));
        }
        for pkt in released {
            // The conditioner is co-located with the first-hop router:
            // release == arrival at the first scheduler.
            self.record_trace(now, &pkt, TraceEventKind::EnteredCore);
            self.push(now, EventKind::Arrive(first_hop, Box::new(pkt)));
        }
    }

    fn on_arrive(&mut self, now: Time, link: LinkId, mut pkt: Packet) {
        if self.validate {
            // Core routers work off header bytes: in validation mode the
            // dynamic packet state is round-tripped through its wire
            // encoding at every hop, so a codec defect (or any reliance
            // on non-header state) would surface as corruption here.
            let mut wire = bytes::BytesMut::with_capacity(vtrs::packet::PacketState::WIRE_SIZE);
            pkt.state().encode(&mut wire);
            let mut rd = wire.freeze();
            let decoded = vtrs::packet::PacketState::decode(&mut rd).expect("own encoding decodes");
            debug_assert_eq!(&decoded, pkt.state());
            *pkt.state_mut() = decoded;
        }
        if self.validate {
            if let Some(f) = self.flows.get_mut(&pkt.flow) {
                if let Some(hop_idx) = f.route.iter().position(|l| *l == link) {
                    if !f.spacing[hop_idx + 1].observe(pkt.state(), pkt.size) {
                        f.stats.spacing_violations += 1;
                    }
                    if !f.reality[hop_idx + 1].observe(now, pkt.state()) {
                        f.stats.reality_violations += 1;
                    }
                }
            }
        }
        self.links[link.0].enqueue(now, pkt);
        if let Some(at) = self.links[link.0].next_event() {
            self.push(at, EventKind::Link(link));
        }
    }

    fn on_link(&mut self, now: Time, link: LinkId) {
        loop {
            let Some(at) = self.links[link.0].next_event() else {
                return;
            };
            if at > now {
                self.push(at, EventKind::Link(link));
                return;
            }
            let Some(mut pkt) = self.links[link.0].dequeue(at) else {
                // Eligibility instant (non-work-conserving scheduler):
                // state advanced internally, re-arm and continue.
                self.push(at, EventKind::Link(link));
                return;
            };
            // Departure: account, apply the per-hop virtual time update
            // (concatenation rule) and forward across the wire.
            let ls = &mut self.link_stats[link.0];
            ls.packets += 1;
            ls.bits += pkt.size.as_bits();
            ls.last_departure = at;
            let hop = self.topo.link(link).hop_spec();
            let size = pkt.size;
            advance(pkt.state_mut(), &hop, size);
            let arrive_at = at + self.topo.link(link).prop_delay;
            let hop_and_next = self.flows.get(&pkt.flow).and_then(|f| {
                let i = f.route.iter().position(|l| *l == link)?;
                Some((i, f.route.get(i + 1).copied()))
            });
            if let Some((i, _)) = hop_and_next {
                self.record_trace(at, &pkt, TraceEventKind::DepartedHop(i));
            }
            let next = hop_and_next.and_then(|(_, n)| n);
            match next {
                Some(next_link) => {
                    self.push(arrive_at, EventKind::Arrive(next_link, Box::new(pkt)));
                }
                None => {
                    self.push(arrive_at, EventKind::Deliver(Box::new(pkt)));
                }
            }
        }
    }

    fn on_deliver(&mut self, now: Time, pkt: Packet) {
        self.record_trace(now, &pkt, TraceEventKind::Delivered);
        if let Some(f) = self.flows.get_mut(&pkt.flow) {
            let entered = pkt
                .entered_core_at
                .expect("delivered packet passed the conditioner");
            f.stats.record(pkt.created_at, entered, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use vtrs::profile::TrafficProfile;

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    /// A 5-hop all-CsVC line: I → R2 → R3 → R4 → R5 → E.
    fn line_topology() -> (Topology, Vec<LinkId>) {
        let mut b = TopologyBuilder::new();
        let names = ["I", "R2", "R3", "R4", "R5", "E"];
        let nodes: Vec<_> = names.iter().map(|n| b.node(*n)).collect();
        let links: Vec<_> = (0..5)
            .map(|i| {
                b.link(
                    nodes[i],
                    nodes[i + 1],
                    Rate::from_bps(1_500_000),
                    Nanos::ZERO,
                    SchedulerSpec::CsVc,
                    Bits::from_bytes(1500),
                )
            })
            .collect();
        (b.build(), links)
    }

    #[test]
    fn single_flow_delivers_all_packets() {
        let (topo, links) = line_topology();
        let mut sim = Simulator::new(topo);
        sim.enable_validation();
        let id = FlowId(1);
        sim.add_flow(id, Rate::from_bps(50_000), Nanos::ZERO, links);
        sim.add_source(
            id,
            SourceModel::Cbr {
                rate: Rate::from_bps(50_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(20),
        );
        sim.run_to_completion();
        let st = sim.flow_stats(id);
        assert_eq!(st.delivered, 20);
        assert_eq!(st.spacing_violations, 0);
        assert_eq!(st.reality_violations, 0);
        // Uncontended: per-packet core delay is 5 × 8 ms = 40 ms exactly.
        assert_eq!(st.max_core, Nanos::from_millis(40));
    }

    #[test]
    fn greedy_type0_flow_respects_e2e_bound_at_mean_rate() {
        // The paper's single-flow sanity point: a greedy type-0 flow at
        // r = ρ on the 5-hop path must never exceed 2.44 s end to end.
        let (topo, links) = line_topology();
        let path = topo.path_spec(&links);
        let profile = type0();
        let bound = vtrs::delay::e2e_delay_bound(
            &profile,
            &path,
            profile.l_max,
            Rate::from_bps(50_000),
            Nanos::ZERO,
        )
        .unwrap();
        assert_eq!(bound, Nanos::from_millis(2_440));

        let mut sim = Simulator::new(topo);
        sim.enable_validation();
        let id = FlowId(1);
        sim.add_flow(id, Rate::from_bps(50_000), Nanos::ZERO, links);
        sim.add_source(
            id,
            SourceModel::Greedy {
                profile,
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(100),
        );
        sim.run_to_completion();
        let st = sim.flow_stats(id);
        assert_eq!(st.delivered, 100);
        assert!(
            st.max_e2e <= bound,
            "observed {} exceeds bound {}",
            st.max_e2e,
            bound
        );
        assert_eq!(st.spacing_violations, 0);
        assert_eq!(st.reality_violations, 0);
    }

    #[test]
    fn thirty_flows_fill_the_link_without_bound_violations() {
        // 30 type-0 flows at mean rate exactly fill 1.5 Mb/s; every flow
        // must stay within the 2.44 s bound (the Table-2 boundary case,
        // observed in the packet plane).
        let (topo, links) = line_topology();
        let path = topo.path_spec(&links);
        let profile = type0();
        let bound = vtrs::delay::e2e_delay_bound(
            &profile,
            &path,
            profile.l_max,
            Rate::from_bps(50_000),
            Nanos::ZERO,
        )
        .unwrap();
        let mut sim = Simulator::new(topo);
        sim.enable_validation();
        for i in 0..30 {
            let id = FlowId(i);
            sim.add_flow(id, Rate::from_bps(50_000), Nanos::ZERO, links.clone());
            sim.add_source(
                id,
                SourceModel::Greedy {
                    profile,
                    packet: Bits::from_bytes(1500),
                },
                Time::ZERO,
                None,
                Some(30),
            );
        }
        sim.run_to_completion();
        for i in 0..30 {
            let st = sim.flow_stats(FlowId(i));
            assert_eq!(st.delivered, 30);
            assert!(
                st.max_e2e <= bound,
                "flow {i}: observed {} exceeds bound {}",
                st.max_e2e,
                bound
            );
            assert_eq!(st.spacing_violations, 0, "flow {i} spacing violations");
            assert_eq!(st.reality_violations, 0, "flow {i} reality violations");
        }
    }

    #[test]
    fn mixed_path_vtedf_hops_meet_delay_class_bound() {
        // 3 CsVC hops + 2 VT-EDF hops (the paper's mixed setting shape).
        let mut b = TopologyBuilder::new();
        let nodes: Vec<_> = ["I", "R2", "R3", "R4", "R5", "E"]
            .iter()
            .map(|n| b.node(*n))
            .collect();
        let cap = Rate::from_bps(1_500_000);
        let lmax = Bits::from_bytes(1500);
        let specs = [
            SchedulerSpec::CsVc,
            SchedulerSpec::CsVc,
            SchedulerSpec::VtEdf,
            SchedulerSpec::VtEdf,
            SchedulerSpec::CsVc,
        ];
        let links: Vec<_> = (0..5)
            .map(|i| b.link(nodes[i], nodes[i + 1], cap, Nanos::ZERO, specs[i], lmax))
            .collect();
        let topo = b.build();
        let path = topo.path_spec(&links);
        assert_eq!(path.q(), 3);

        let profile = type0();
        let d = Nanos::from_millis(240);
        let r = Rate::from_bps(50_000);
        let bound = vtrs::delay::e2e_delay_bound(&profile, &path, profile.l_max, r, d).unwrap();

        let mut sim = Simulator::new(topo);
        sim.enable_validation();
        for i in 0..10 {
            let id = FlowId(i);
            sim.add_flow(id, r, d, links.clone());
            sim.add_source(
                id,
                SourceModel::Greedy {
                    profile,
                    packet: Bits::from_bytes(1500),
                },
                Time::ZERO,
                None,
                Some(25),
            );
        }
        sim.run_to_completion();
        for i in 0..10 {
            let st = sim.flow_stats(FlowId(i));
            assert_eq!(st.delivered, 25);
            assert!(
                st.max_e2e <= bound,
                "flow {i}: {} > bound {}",
                st.max_e2e,
                bound
            );
            assert_eq!(st.spacing_violations + st.reality_violations, 0);
        }
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let (topo, links) = line_topology();
        let mut sim = Simulator::new(topo);
        let id = FlowId(1);
        sim.add_flow(id, Rate::from_bps(50_000), Nanos::ZERO, links);
        sim.add_source(
            id,
            SourceModel::Cbr {
                rate: Rate::from_bps(50_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(10),
        );
        sim.run_until(Time::from_secs_f64(0.5));
        let mid = sim.flow_stats(id).delivered;
        assert!(mid > 0 && mid < 10, "partial progress, got {mid}");
        sim.run_to_completion();
        assert_eq!(sim.flow_stats(id).delivered, 10);
    }

    #[test]
    fn rate_change_mid_flight_keeps_invariants() {
        // Double a flow's rate mid-run (the Theorem-4 data-plane path);
        // validation must stay clean and delivery complete.
        let (topo, links) = line_topology();
        let mut sim = Simulator::new(topo);
        sim.enable_validation();
        let id = FlowId(1);
        sim.add_flow(id, Rate::from_bps(50_000), Nanos::ZERO, links);
        sim.add_source(
            id,
            SourceModel::Greedy {
                profile: type0(),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(40),
        );
        sim.run_until(Time::from_secs_f64(2.0));
        sim.set_flow_rate(id, Rate::from_bps(100_000));
        sim.run_to_completion();
        let st = sim.flow_stats(id);
        assert_eq!(st.delivered, 40);
        assert_eq!(
            st.spacing_violations, 0,
            "spacing violated across rate change"
        );
        assert_eq!(
            st.reality_violations, 0,
            "reality check violated across rate change"
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use vtrs::profile::TrafficProfile;

    fn two_hop(spec: SchedulerSpec) -> (Topology, Vec<LinkId>) {
        let mut b = TopologyBuilder::new();
        let n: Vec<_> = (0..3).map(|i| b.node(format!("n{i}"))).collect();
        let route = (0..2)
            .map(|i| {
                b.link(
                    n[i],
                    n[i + 1],
                    Rate::from_mbps(1),
                    Nanos::from_micros(100),
                    spec,
                    Bits::from_bytes(1500),
                )
            })
            .collect();
        (b.build(), route)
    }

    #[test]
    fn remove_flow_returns_stats_and_frees_id() {
        let (topo, route) = two_hop(SchedulerSpec::CsVc);
        let mut sim = Simulator::new(topo);
        let f = FlowId(5);
        sim.add_flow(f, Rate::from_bps(100_000), Nanos::ZERO, route.clone());
        sim.add_source(
            f,
            SourceModel::Cbr {
                rate: Rate::from_bps(100_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(3),
        );
        sim.run_to_completion();
        let stats = sim.remove_flow(f).expect("flow existed");
        assert_eq!(stats.delivered, 3);
        assert!(sim.remove_flow(f).is_none());
        // The id can be registered again.
        sim.add_flow(f, Rate::from_bps(100_000), Nanos::ZERO, route);
    }

    #[test]
    fn fifo_links_forward_conditioned_traffic() {
        let (topo, route) = two_hop(SchedulerSpec::Fifo {
            assumed_psi: Nanos::from_millis(12),
        });
        let mut sim = Simulator::new(topo);
        let f = FlowId(1);
        sim.add_flow(f, Rate::from_bps(200_000), Nanos::ZERO, route);
        sim.add_source(
            f,
            SourceModel::Cbr {
                rate: Rate::from_bps(200_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(5),
        );
        sim.run_to_completion();
        let st = sim.flow_stats(f);
        assert_eq!(st.delivered, 5);
        // Uncontended FIFO at 1 Mb/s: 2 × 12 ms transmission + 2 × 100 µs
        // propagation per packet of core delay.
        assert_eq!(st.max_core, Nanos::from_micros(24_200));
    }

    #[test]
    fn poisson_source_drives_flows_deterministically() {
        let (topo, route) = two_hop(SchedulerSpec::CsVc);
        let run = |seed: u64| {
            let mut sim = Simulator::new(topo.clone());
            let f = FlowId(1);
            sim.add_flow(f, Rate::from_bps(300_000), Nanos::ZERO, route.clone());
            sim.add_source(
                f,
                SourceModel::Poisson {
                    mean_rate: Rate::from_bps(200_000),
                    packet: Bits::from_bytes(1500),
                    seed,
                },
                Time::ZERO,
                Some(Time::from_secs_f64(5.0)),
                None,
            );
            sim.run_to_completion();
            (sim.flow_stats(f).delivered, sim.flow_stats(f).max_e2e)
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
        assert!(run(3).0 > 10, "Poisson source too quiet");
    }

    #[test]
    fn aggregated_sources_share_one_conditioner_in_arrival_order() {
        // Three microflow sources feeding one macroflow id: sequence
        // numbers are global per flow and all packets are delivered.
        let (topo, route) = two_hop(SchedulerSpec::CsVc);
        let mut sim = Simulator::new(topo);
        let m = FlowId(9);
        sim.add_flow(m, Rate::from_bps(300_000), Nanos::ZERO, route);
        for k in 0..3u64 {
            sim.add_source(
                m,
                SourceModel::Cbr {
                    rate: Rate::from_bps(100_000),
                    packet: Bits::from_bytes(1500),
                },
                Time::from_nanos(k * 1_000),
                None,
                Some(4),
            );
        }
        sim.run_to_completion();
        assert_eq!(sim.flow_stats(m).delivered, 12);
    }

    #[test]
    fn link_stats_count_forwarded_traffic() {
        let (topo, route) = two_hop(SchedulerSpec::CsVc);
        let cap = topo.link(route[0]).capacity;
        let mut sim = Simulator::new(topo);
        let f = FlowId(1);
        sim.add_flow(f, Rate::from_bps(100_000), Nanos::ZERO, route.clone());
        sim.add_source(
            f,
            SourceModel::Cbr {
                rate: Rate::from_bps(100_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(8),
        );
        sim.run_to_completion();
        for l in &route {
            let ls = sim.link_stats(*l);
            assert_eq!(ls.packets, 8);
            assert_eq!(ls.bits, 8 * 12_000);
            assert!(ls.last_departure > Time::ZERO);
            let u = ls.utilization(cap, ls.last_departure);
            assert!(u > 0.0 && u <= 1.0, "utilization {u}");
        }
    }

    #[test]
    fn edge_backlog_never_exceeds_the_dimensioning_bound() {
        // Greedy and on–off sources conformant to type-0: the conditioner
        // backlog must stay within vtrs::delay::edge_backlog_bound at all
        // times (polled at 1 ms).
        let profile = TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap();
        let r = Rate::from_bps(50_000);
        let bound = vtrs::delay::edge_backlog_bound(&profile, r).unwrap();
        for greedy in [true, false] {
            let (topo, route) = two_hop(SchedulerSpec::CsVc);
            let mut sim = Simulator::new(topo);
            let f = FlowId(1);
            sim.add_flow(f, r, Nanos::ZERO, route);
            let model = if greedy {
                SourceModel::Greedy {
                    profile,
                    packet: Bits::from_bytes(1500),
                }
            } else {
                // 5 packets (60 kb = σ) per 1.2 s period (ρ = 50 kb/s),
                // paced at the peak rate: exactly the type-0 envelope.
                SourceModel::OnOff {
                    burst: 5,
                    peak: Rate::from_bps(100_000),
                    period: Nanos::from_millis(1_200),
                    packet: Bits::from_bytes(1500),
                }
            };
            sim.add_source(f, model, Time::ZERO, Some(Time::from_secs_f64(6.0)), None);
            let mut t = Time::ZERO;
            let mut max_backlog = Bits::ZERO;
            while t < Time::from_secs_f64(10.0) {
                t += Nanos::from_millis(1);
                sim.run_until(t);
                max_backlog = max_backlog.max(sim.flow_backlog(f));
            }
            assert!(
                max_backlog <= bound,
                "greedy={greedy}: backlog {max_backlog} exceeded bound {bound}"
            );
            assert!(
                max_backlog > Bits::ZERO,
                "greedy={greedy}: test never queued anything"
            );
        }
    }

    #[test]
    fn trace_records_full_packet_journeys() {
        let (topo, route) = two_hop(SchedulerSpec::CsVc);
        let mut sim = Simulator::new(topo);
        sim.enable_trace(1_000);
        let f = FlowId(1);
        sim.add_flow(f, Rate::from_bps(100_000), Nanos::ZERO, route);
        sim.add_source(
            f,
            SourceModel::Cbr {
                rate: Rate::from_bps(100_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(2),
        );
        sim.run_to_completion();
        let trace = sim.trace().expect("tracing enabled");
        let journey = trace.packet_journey(f, 0);
        use crate::trace::TraceEventKind as K;
        let kinds: Vec<K> = journey.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                K::Created,
                K::EnteredCore,
                K::DepartedHop(0),
                K::DepartedHop(1),
                K::Delivered
            ]
        );
        // Times are non-decreasing, and the conditioned events carry ω̃.
        for w in journey.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(journey[0].virtual_time.is_none());
        assert!(journey[2].virtual_time.is_some());
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "route is discontinuous")]
    fn discontinuous_route_is_rejected() {
        let mut b = TopologyBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.node(format!("n{i}"))).collect();
        let l0 = b.link(
            n[0],
            n[1],
            Rate::from_mbps(1),
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        // Gap: next link starts at n2, not n1.
        let l1 = b.link(
            n[2],
            n[3],
            Rate::from_mbps(1),
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        let mut sim = Simulator::new(b.build());
        sim.add_flow(FlowId(1), Rate::from_bps(1_000), Nanos::ZERO, vec![l0, l1]);
    }
}
