//! Traffic source models.
//!
//! A source emits packets for one (micro)flow into the flow's edge
//! conditioner. All models are deterministic given their configuration
//! (the Poisson model carries its own seeded RNG), so simulations
//! replay exactly.

use qos_units::ratio::mul_div_ceil;
use qos_units::{Bits, Nanos, Rate, Time, NANOS_PER_SEC};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vtrs::profile::TrafficProfile;

/// How a source generates packets.
#[derive(Debug, Clone)]
pub enum SourceModel {
    /// A *greedy* source: at every instant it has emitted exactly the
    /// maximum its dual-token-bucket envelope `E(t)` allows — the
    /// worst-case sender the delay bounds are proved against, and the
    /// adversary of the Figure-7 transient scenario.
    Greedy {
        /// The flow's declared traffic profile.
        profile: TrafficProfile,
        /// Size of every emitted packet.
        packet: Bits,
    },
    /// Constant bit rate: one packet every `packet/rate`.
    Cbr {
        /// Emission rate.
        rate: Rate,
        /// Size of every emitted packet.
        packet: Bits,
    },
    /// Poisson packet arrivals with exponential inter-arrival times at
    /// `mean_rate` (non-conformant background traffic; also useful to
    /// exercise conditioner queueing).
    Poisson {
        /// Long-run average emission rate.
        mean_rate: Rate,
        /// Size of every emitted packet.
        packet: Bits,
        /// RNG seed (determinism).
        seed: u64,
    },
    /// Deterministic on–off: `burst` packets back-to-back at `peak`
    /// pacing, then silence until the period ends. Conformant to a
    /// dual-token-bucket with `σ = burst·packet`, `ρ =
    /// burst·packet/period`, `P = peak` — the classic voice/video shape.
    OnOff {
        /// Packets per burst.
        burst: u64,
        /// Pacing rate within the burst.
        peak: Rate,
        /// Full cycle length (burst + idle).
        period: Nanos,
        /// Size of every emitted packet.
        packet: Bits,
    },
}

/// Runtime state of a source.
#[derive(Debug)]
pub(crate) struct SourceState {
    model: SourceModel,
    start: Time,
    /// Emit no packets at or after this time.
    stop: Option<Time>,
    /// Emit at most this many packets.
    limit: Option<u64>,
    emitted: u64,
    sent_bits: Bits,
    rng: Option<SmallRng>,
    next_at: Option<Time>,
}

impl SourceState {
    pub(crate) fn new(
        model: SourceModel,
        start: Time,
        stop: Option<Time>,
        limit: Option<u64>,
    ) -> Self {
        let rng = match &model {
            SourceModel::Poisson { seed, .. } => Some(SmallRng::seed_from_u64(*seed)),
            _ => None,
        };
        if let SourceModel::OnOff {
            burst,
            peak,
            period,
            packet,
        } = &model
        {
            assert!(*burst > 0, "OnOff: empty burst");
            let burst_len = packet.tx_time_ceil(*peak).scale(*burst - 1);
            assert!(burst_len < *period, "OnOff: burst longer than the period");
        }
        let mut s = SourceState {
            model,
            start,
            stop,
            limit,
            emitted: 0,
            sent_bits: Bits::ZERO,
            rng,
            next_at: None,
        };
        s.next_at = s.compute_next();
        s
    }

    /// Time of the next emission, if the source has more to send.
    pub(crate) fn next_emission(&self) -> Option<Time> {
        self.next_at
    }

    /// Records an emission at the scheduled time and returns the packet
    /// size; advances the schedule.
    pub(crate) fn emit(&mut self) -> Bits {
        let size = self.packet_size();
        self.emitted += 1;
        self.sent_bits += size;
        self.next_at = self.compute_next();
        size
    }

    fn packet_size(&self) -> Bits {
        match &self.model {
            SourceModel::Greedy { packet, .. }
            | SourceModel::Cbr { packet, .. }
            | SourceModel::Poisson { packet, .. }
            | SourceModel::OnOff { packet, .. } => *packet,
        }
    }

    fn compute_next(&mut self) -> Option<Time> {
        if let Some(limit) = self.limit {
            if self.emitted >= limit {
                return None;
            }
        }
        let at = match &self.model {
            SourceModel::Greedy { profile, packet } => {
                // Earliest t with E(t) ≥ sent + L: invert both envelope
                // branches and take the later one (E is their min).
                let target = self.sent_bits + *packet;
                let by_peak = envelope_inverse(target, profile.peak, profile.l_max);
                let by_sustained = envelope_inverse(target, profile.rho, profile.sigma);
                self.start + by_peak.max(by_sustained)
            }
            SourceModel::Cbr { rate, packet } => {
                let gap = packet.tx_time_ceil(*rate);
                self.start + gap.scale(self.emitted)
            }
            SourceModel::OnOff {
                burst,
                peak,
                period,
                packet,
            } => {
                let cycle = self.emitted / burst;
                let within = self.emitted % burst;
                self.start + period.scale(cycle) + packet.tx_time_ceil(*peak).scale(within)
            }
            SourceModel::Poisson {
                mean_rate, packet, ..
            } => {
                let mean_gap = packet.tx_time_ceil(*mean_rate).as_nanos() as f64;
                let rng = self.rng.as_mut().expect("poisson source has rng");
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap = (-u.ln() * mean_gap).min(u64::MAX as f64 / 2.0) as u64;
                let base = if self.emitted == 0 {
                    self.start
                } else {
                    self.last_scheduled()
                };
                base + Nanos::from_nanos(gap)
            }
        };
        if let Some(stop) = self.stop {
            if at >= stop {
                return None;
            }
        }
        Some(at)
    }

    /// For Poisson the next gap chains off the previous emission time.
    fn last_scheduled(&self) -> Time {
        self.next_at.unwrap_or(self.start)
    }
}

/// Earliest `t` (relative) with `rate·t + offset ≥ target`; zero when the
/// offset alone covers it.
fn envelope_inverse(target: Bits, rate: Rate, offset: Bits) -> Nanos {
    let Some(deficit) = target.checked_sub(offset) else {
        return Nanos::ZERO;
    };
    if deficit == Bits::ZERO {
        return Nanos::ZERO;
    }
    Nanos::from_nanos(mul_div_ceil(
        deficit.as_bits(),
        NANOS_PER_SEC,
        rate.as_bps(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    fn emissions(mut s: SourceState, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(t) = s.next_emission() {
            out.push(t.as_nanos());
            s.emit();
            if out.len() >= max {
                break;
            }
        }
        out
    }

    #[test]
    fn cbr_spacing_is_exact() {
        let s = SourceState::new(
            SourceModel::Cbr {
                rate: Rate::from_bps(50_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(4),
        );
        assert_eq!(
            emissions(s, 10),
            vec![0, 240_000_000, 480_000_000, 720_000_000]
        );
    }

    #[test]
    fn greedy_source_tracks_envelope() {
        // Type 0: burst of σ = 60000 bits = 5 packets allowed "instantly"
        // but paced by the peak-rate branch: packets at 0, 0.12, 0.24,
        // 0.36, 0.48 (12000 bits each at P = 100 kb/s)... the 5th packet
        // (cumulative 60000) needs E(t) ≥ 60000: peak branch t = 0.48 s,
        // sustained branch t = 0 → 0.48 s. After T_on = 0.96 s the
        // sustained branch dominates: packet 6 (72000 bits) at
        // max(0.60, 0.24) = 0.60 s; packet 9 (108000) at
        // max(0.96, 0.96) = 0.96 s; packet 10 (120000) at
        // max(1.08, 1.2) = 1.2 s — sustained now binds.
        let s = SourceState::new(
            SourceModel::Greedy {
                profile: type0(),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(10),
        );
        let e = emissions(s, 10);
        assert_eq!(e[0], 0);
        assert_eq!(e[1], 120_000_000);
        assert_eq!(e[4], 480_000_000);
        assert_eq!(e[8], 960_000_000);
        assert_eq!(e[9], 1_200_000_000);
    }

    #[test]
    fn greedy_emissions_never_violate_envelope() {
        let profile = type0();
        let s = SourceState::new(
            SourceModel::Greedy {
                profile,
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(50),
        );
        let times = emissions(s, 50);
        let mut sent = Bits::ZERO;
        for t in &times {
            sent += Bits::from_bytes(1500);
            let allowed = profile.envelope(Nanos::from_nanos(*t));
            assert!(sent <= allowed, "at {t}ns sent {sent} > E(t) {allowed}");
        }
    }

    #[test]
    fn limit_and_stop_are_honored() {
        let s = SourceState::new(
            SourceModel::Cbr {
                rate: Rate::from_bps(50_000),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            Some(Time::from_nanos(300_000_000)),
            None,
        );
        // Packets at 0 and 0.24 s; 0.48 s ≥ stop → cut off.
        assert_eq!(emissions(s, 10), vec![0, 240_000_000]);
    }

    #[test]
    fn on_off_cycles_exactly() {
        // 3 packets at 1 Mb/s pacing (12 ms apart), 1 s period.
        let s = SourceState::new(
            SourceModel::OnOff {
                burst: 3,
                peak: Rate::from_mbps(1),
                period: Nanos::from_secs(1),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(7),
        );
        assert_eq!(
            emissions(s, 10),
            vec![
                0,
                12_000_000,
                24_000_000,
                1_000_000_000,
                1_012_000_000,
                1_024_000_000,
                2_000_000_000,
            ]
        );
    }

    #[test]
    #[should_panic(expected = "burst longer than the period")]
    fn on_off_rejects_impossible_shape() {
        let _ = SourceState::new(
            SourceModel::OnOff {
                burst: 100,
                peak: Rate::from_bps(1_000),
                period: Nanos::from_millis(1),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            None,
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let mk = || {
            SourceState::new(
                SourceModel::Poisson {
                    mean_rate: Rate::from_bps(50_000),
                    packet: Bits::from_bytes(1500),
                    seed: 42,
                },
                Time::ZERO,
                None,
                Some(20),
            )
        };
        assert_eq!(emissions(mk(), 20), emissions(mk(), 20));
    }

    #[test]
    fn start_offset_shifts_schedule() {
        let s = SourceState::new(
            SourceModel::Cbr {
                rate: Rate::from_bps(50_000),
                packet: Bits::from_bytes(1500),
            },
            Time::from_nanos(1_000),
            None,
            Some(2),
        );
        assert_eq!(emissions(s, 10), vec![1_000, 240_001_000]);
    }
}
