//! Per-flow simulation statistics.

use qos_units::{Nanos, Time};

/// Delivery statistics for one flow, accumulated by the simulator.
///
/// Besides whole-run maxima, the stats track a second set of maxima
/// restricted to packets *created at or after a threshold instant* —
/// the Figure-7 transient experiment uses this to isolate the delay of
/// packets that arrived after a microflow joined the macroflow.
#[derive(Debug, Clone, Default)]
pub struct FlowStats {
    /// Packets delivered to the egress.
    pub delivered: u64,
    /// Maximum end-to-end delay (delivery − creation), including edge
    /// conditioning delay. Compare against `d_e2e` (eq. 4).
    pub max_e2e: Nanos,
    /// Maximum edge-conditioning delay (core entry − creation). Compare
    /// against `d_edge` (eq. 3).
    pub max_edge: Nanos,
    /// Maximum core delay (delivery − core entry). Compare against
    /// `d_core` (eq. 2) / the modified bound (Theorem 4).
    pub max_core: Nanos,
    /// Sum of end-to-end delays (for means).
    pub sum_e2e: Nanos,
    /// Time of the last delivery.
    pub last_delivery: Time,
    /// Threshold for the `*_post` maxima (set via
    /// [`crate::Simulator::set_flow_threshold`]).
    pub threshold: Time,
    /// Max end-to-end delay among packets created at/after `threshold`.
    pub max_e2e_post: Nanos,
    /// Max edge delay among packets created at/after `threshold`.
    pub max_edge_post: Nanos,
    /// VTRS virtual-spacing violations observed (validation mode).
    pub spacing_violations: u64,
    /// VTRS reality-check violations observed (validation mode).
    pub reality_violations: u64,
}

impl FlowStats {
    /// Records a delivery.
    pub(crate) fn record(&mut self, created: Time, entered_core: Time, delivered: Time) {
        self.delivered += 1;
        let e2e = delivered.saturating_since(created);
        let edge = entered_core.saturating_since(created);
        let core = delivered.saturating_since(entered_core);
        self.max_e2e = self.max_e2e.max(e2e);
        self.max_edge = self.max_edge.max(edge);
        self.max_core = self.max_core.max(core);
        self.sum_e2e = self.sum_e2e.saturating_add(e2e);
        self.last_delivery = delivered;
        if created >= self.threshold {
            self.max_e2e_post = self.max_e2e_post.max(e2e);
            self.max_edge_post = self.max_edge_post.max(edge);
        }
    }

    /// Mean end-to-end delay over delivered packets, or zero if none.
    #[must_use]
    pub fn mean_e2e(&self) -> Nanos {
        if self.delivered == 0 {
            Nanos::ZERO
        } else {
            self.sum_e2e / self.delivered
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_max_and_mean() {
        let mut s = FlowStats::default();
        s.record(Time::ZERO, Time::from_nanos(10), Time::from_nanos(110));
        s.record(
            Time::from_nanos(100),
            Time::from_nanos(150),
            Time::from_nanos(400),
        );
        assert_eq!(s.delivered, 2);
        assert_eq!(s.max_e2e, Nanos::from_nanos(300));
        assert_eq!(s.max_edge, Nanos::from_nanos(50));
        assert_eq!(s.max_core, Nanos::from_nanos(250));
        assert_eq!(s.mean_e2e(), Nanos::from_nanos(205));
        assert_eq!(s.last_delivery, Time::from_nanos(400));
    }

    #[test]
    fn threshold_partitions_maxima() {
        let mut s = FlowStats {
            threshold: Time::from_nanos(50),
            ..FlowStats::default()
        };
        // Created before the threshold: huge delay, excluded from post.
        s.record(Time::ZERO, Time::from_nanos(900), Time::from_nanos(1000));
        // Created after: small delay, tracked in both.
        s.record(
            Time::from_nanos(100),
            Time::from_nanos(120),
            Time::from_nanos(160),
        );
        assert_eq!(s.max_e2e, Nanos::from_nanos(1000));
        assert_eq!(s.max_e2e_post, Nanos::from_nanos(60));
        assert_eq!(s.max_edge_post, Nanos::from_nanos(20));
    }

    #[test]
    fn empty_stats_mean_is_zero() {
        assert_eq!(FlowStats::default().mean_e2e(), Nanos::ZERO);
    }
}
