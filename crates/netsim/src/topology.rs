//! Network topology: nodes, unidirectional links, and path computation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use qos_units::{Bits, Nanos, Rate};
use vtrs::reference::{HopKind, HopSpec, PathSpec};

/// Identifies a node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifies a unidirectional link (and the scheduler on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// Which scheduler runs a link's output queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// Core-stateless virtual clock (rate-based, work-conserving).
    CsVc,
    /// Core-jitter virtual clock (rate-based, non-work-conserving).
    CJVc,
    /// Virtual-time EDF (delay-based).
    VtEdf,
    /// FIFO with a caller-asserted error term (see [`sched::Fifo`]).
    Fifo {
        /// The error term asserted for this hop.
        assumed_psi: Nanos,
    },
}

impl SchedulerSpec {
    /// The VTRS hop kind of this scheduler.
    #[must_use]
    pub fn kind(self) -> HopKind {
        match self {
            SchedulerSpec::CsVc | SchedulerSpec::CJVc | SchedulerSpec::Fifo { .. } => {
                HopKind::RateBased
            }
            SchedulerSpec::VtEdf => HopKind::DelayBased,
        }
    }

    /// The error term `Ψ` the scheduler will report for a link of the
    /// given capacity and maximum packet size.
    #[must_use]
    pub fn psi(self, capacity: Rate, max_packet: Bits) -> Nanos {
        match self {
            SchedulerSpec::Fifo { assumed_psi } => assumed_psi,
            _ => max_packet.tx_time_ceil(capacity),
        }
    }
}

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Upstream node (owner of the output queue).
    pub from: NodeId,
    /// Downstream node.
    pub to: NodeId,
    /// Link capacity.
    pub capacity: Rate,
    /// Propagation delay `π` to the downstream node.
    pub prop_delay: Nanos,
    /// Scheduler on the output queue.
    pub scheduler: SchedulerSpec,
    /// Largest packet admitted on this link (sets `Ψ`).
    pub max_packet: Bits,
}

impl Link {
    /// The link's contribution to a path's QoS characterization.
    #[must_use]
    pub fn hop_spec(&self) -> HopSpec {
        HopSpec {
            kind: self.scheduler.kind(),
            psi: self.scheduler.psi(self.capacity, self.max_packet),
            prop_delay: self.prop_delay,
        }
    }
}

/// An immutable network topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    names: Vec<String>,
    links: Vec<Link>,
    /// Outgoing link ids per node.
    out: Vec<Vec<LinkId>>,
    /// Pod membership per node (`None` = not in any pod). Pods partition
    /// a domain into link-disjoint regions, which lets a broker shard its
    /// MIBs: admission decisions for paths confined to one pod never
    /// touch another pod's state.
    pods: Vec<Option<usize>>,
}

impl Topology {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node name (for reporting).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Looks a node up by name.
    #[must_use]
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId)
    }

    /// The link record.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.0]
    }

    /// All links.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Outgoing links of a node.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn outgoing(&self, n: NodeId) -> &[LinkId] {
        &self.out[n.0]
    }

    /// Minimum-hop path from `from` to `to` (Dijkstra on hop count with
    /// deterministic tie-breaking by link id), as an ordered list of link
    /// ids. Returns `None` if unreachable.
    #[must_use]
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<LinkId>> {
        self.shortest_path_excluding(from, to, &[])
    }

    /// Like [`Topology::shortest_path`], but treating `banned` links as
    /// absent — the building block for alternate-path computation.
    #[must_use]
    pub fn shortest_path_excluding(
        &self,
        from: NodeId,
        to: NodeId,
        banned: &[LinkId],
    ) -> Option<Vec<LinkId>> {
        if from == to {
            return Some(Vec::new());
        }
        let n = self.node_count();
        let mut dist = vec![usize::MAX; n];
        let mut prev: Vec<Option<LinkId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.0] = 0;
        heap.push(Reverse((0usize, from.0)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            if u == to.0 {
                break;
            }
            for &lid in &self.out[u] {
                if banned.contains(&lid) {
                    continue;
                }
                let link = &self.links[lid.0];
                let v = link.to.0;
                let nd = d + 1;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = Some(lid);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        if dist[to.0] == usize::MAX {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to.0;
        while let Some(lid) = prev[cur] {
            path.push(lid);
            cur = self.links[lid.0].from.0;
        }
        path.reverse();
        Some(path)
    }

    /// Up to `k` loop-free candidate paths from `from` to `to`, shortest
    /// first: the minimum-hop path plus single-link-deviation
    /// alternatives (a lightweight Yen variant). Deterministic; paths
    /// are deduplicated.
    #[must_use]
    pub fn k_paths(&self, from: NodeId, to: NodeId, k: usize) -> Vec<Vec<LinkId>> {
        let Some(primary) = self.shortest_path(from, to) else {
            return Vec::new();
        };
        let mut out = vec![primary.clone()];
        for banned in &primary {
            if out.len() >= k {
                break;
            }
            if let Some(alt) = self.shortest_path_excluding(from, to, &[*banned]) {
                if !out.contains(&alt) {
                    out.push(alt);
                }
            }
        }
        out.truncate(k);
        out
    }

    /// The QoS characterization of an explicit route.
    ///
    /// # Panics
    ///
    /// Panics if a link id is out of range.
    #[must_use]
    pub fn path_spec(&self, route: &[LinkId]) -> PathSpec {
        PathSpec::new(route.iter().map(|l| self.links[l.0].hop_spec()).collect())
    }

    /// Largest `max_packet` over the route — the `L^{P,max}` of §4.1.
    #[must_use]
    pub fn path_max_packet(&self, route: &[LinkId]) -> Bits {
        route
            .iter()
            .map(|l| self.links[l.0].max_packet)
            .max()
            .unwrap_or(Bits::ZERO)
    }

    /// The pod a node belongs to, if any.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn pod_of(&self, n: NodeId) -> Option<usize> {
        self.pods[n.0]
    }

    /// Number of distinct pods (max pod index + 1; 0 when no node is
    /// pod-annotated).
    #[must_use]
    pub fn pod_count(&self) -> usize {
        self.pods
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }

    /// The pod a route is confined to: `Some(p)` when every endpoint of
    /// every link on the route is in pod `p`, `None` for empty,
    /// pod-crossing, or unannotated routes.
    ///
    /// # Panics
    ///
    /// Panics if a link id is out of range.
    #[must_use]
    pub fn route_pod(&self, route: &[LinkId]) -> Option<usize> {
        let mut pod = None;
        for l in route {
            let link = &self.links[l.0];
            for n in [link.from, link.to] {
                let p = self.pods[n.0]?;
                match pod {
                    None => pod = Some(p),
                    Some(q) if q != p => return None,
                    Some(_) => {}
                }
            }
        }
        pod
    }

    /// Builds the standard sharded-domain benchmark topology: `pods`
    /// link-disjoint chains of `hops` identical links, every node
    /// annotated with its pod. Returns the topology and the per-pod
    /// route (ingress to egress along each chain).
    ///
    /// # Panics
    ///
    /// Panics when `pods` or `hops` is zero, or on zero capacity.
    #[must_use]
    pub fn pod_chains(
        pods: usize,
        hops: usize,
        capacity: Rate,
        prop_delay: Nanos,
        scheduler: SchedulerSpec,
        max_packet: Bits,
    ) -> (Topology, Vec<Vec<LinkId>>) {
        assert!(pods > 0, "need at least one pod");
        assert!(hops > 0, "need at least one hop per pod");
        let mut b = TopologyBuilder::new();
        let mut routes = Vec::with_capacity(pods);
        for p in 0..pods {
            let nodes: Vec<NodeId> = (0..=hops)
                .map(|i| b.node_in_pod(format!("p{p}n{i}"), p))
                .collect();
            routes.push(
                (0..hops)
                    .map(|i| {
                        b.link(
                            nodes[i],
                            nodes[i + 1],
                            capacity,
                            prop_delay,
                            scheduler,
                            max_packet,
                        )
                    })
                    .collect(),
            );
        }
        (b.build(), routes)
    }
}

/// Builder for [`Topology`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    topo: Topology,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.topo.names.len());
        self.topo.names.push(name.into());
        self.topo.out.push(Vec::new());
        self.topo.pods.push(None);
        id
    }

    /// Adds a node annotated with its pod (see [`Topology::pod_of`]).
    pub fn node_in_pod(&mut self, name: impl Into<String>, pod: usize) -> NodeId {
        let id = self.node(name);
        self.topo.pods[id.0] = Some(pod);
        id
    }

    /// Adds a unidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range or capacity is zero.
    pub fn link(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: Rate,
        prop_delay: Nanos,
        scheduler: SchedulerSpec,
        max_packet: Bits,
    ) -> LinkId {
        assert!(from.0 < self.topo.names.len(), "unknown `from` node");
        assert!(to.0 < self.topo.names.len(), "unknown `to` node");
        assert!(!capacity.is_zero(), "zero link capacity");
        let id = LinkId(self.topo.links.len());
        self.topo.links.push(Link {
            from,
            to,
            capacity,
            prop_delay,
            scheduler,
            max_packet,
        });
        self.topo.out[from.0].push(id);
        id
    }

    /// Finalizes the topology.
    #[must_use]
    pub fn build(self) -> Topology {
        self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| b.node(format!("n{i}"))).collect();
        let links: Vec<LinkId> = (1..n)
            .map(|i| {
                b.link(
                    nodes[i - 1],
                    nodes[i],
                    Rate::from_bps(1_500_000),
                    Nanos::ZERO,
                    SchedulerSpec::CsVc,
                    Bits::from_bytes(1500),
                )
            })
            .collect();
        (b.build(), nodes, links)
    }

    #[test]
    fn shortest_path_on_a_line() {
        let (t, nodes, links) = line(5);
        let p = t.shortest_path(nodes[0], nodes[4]).unwrap();
        assert_eq!(p, links);
        assert_eq!(t.shortest_path(nodes[2], nodes[2]), Some(vec![]));
        // No reverse links: unreachable.
        assert_eq!(t.shortest_path(nodes[4], nodes[0]), None);
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let m = b.node("m");
        let z = b.node("z");
        let cap = Rate::from_mbps(1);
        let l_direct = b.link(
            a,
            z,
            cap,
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        b.link(
            a,
            m,
            cap,
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        b.link(
            m,
            z,
            cap,
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        let t = b.build();
        assert_eq!(t.shortest_path(a, z).unwrap(), vec![l_direct]);
    }

    #[test]
    fn path_spec_reflects_link_properties() {
        let (t, _, links) = line(4);
        let spec = t.path_spec(&links);
        assert_eq!(spec.h(), 3);
        assert_eq!(spec.q(), 3);
        // Ψ = 8 ms per CsVC hop at 1.5 Mb/s with 1500 B packets.
        assert_eq!(spec.d_tot(), Nanos::from_millis(24));
        assert_eq!(t.path_max_packet(&links), Bits::from_bytes(1500));
    }

    #[test]
    fn excluding_links_reroutes() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let m = b.node("m");
        let z = b.node("z");
        let cap = Rate::from_mbps(1);
        let lmax = Bits::from_bytes(1500);
        let direct = b.link(a, z, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
        let via1 = b.link(a, m, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
        let via2 = b.link(m, z, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
        let t = b.build();
        assert_eq!(
            t.shortest_path_excluding(a, z, &[direct]).unwrap(),
            vec![via1, via2]
        );
        // Banning everything out of `a` disconnects it.
        assert_eq!(t.shortest_path_excluding(a, z, &[direct, via1]), None);
    }

    #[test]
    fn k_paths_enumerates_single_deviations() {
        let mut b = TopologyBuilder::new();
        let a = b.node("a");
        let m = b.node("m");
        let z = b.node("z");
        let cap = Rate::from_mbps(1);
        let lmax = Bits::from_bytes(1500);
        let direct = b.link(a, z, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
        let via1 = b.link(a, m, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
        let via2 = b.link(m, z, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
        let t = b.build();
        let ps = t.k_paths(a, z, 5);
        assert_eq!(ps, vec![vec![direct], vec![via1, via2]]);
        // k = 1 returns just the primary; unreachable pairs yield none.
        assert_eq!(t.k_paths(a, z, 1).len(), 1);
        assert!(t.k_paths(z, a, 3).is_empty());
    }

    #[test]
    fn node_lookup_by_name() {
        let (t, nodes, _) = line(3);
        assert_eq!(t.node_by_name("n1"), Some(nodes[1]));
        assert_eq!(t.node_by_name("nope"), None);
        assert_eq!(t.node_name(nodes[2]), "n2");
    }

    #[test]
    fn pod_chains_annotate_and_partition() {
        let (t, routes) = Topology::pod_chains(
            3,
            5,
            Rate::from_bps(1_500_000),
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        assert_eq!(t.pod_count(), 3);
        assert_eq!(t.node_count(), 3 * 6);
        assert_eq!(routes.len(), 3);
        for (p, route) in routes.iter().enumerate() {
            assert_eq!(route.len(), 5);
            assert_eq!(t.route_pod(route), Some(p));
            for l in route {
                assert_eq!(t.pod_of(t.link(*l).from), Some(p));
                assert_eq!(t.pod_of(t.link(*l).to), Some(p));
            }
        }
        // A synthetic pod-crossing route has no confining pod.
        let crossing = vec![routes[0][0], routes[1][0]];
        assert_eq!(t.route_pod(&crossing), None);
        // Unannotated topologies have no pods.
        let (plain, _, links) = line(3);
        assert_eq!(plain.pod_count(), 0);
        assert_eq!(plain.route_pod(&links), None);
    }

    #[test]
    fn scheduler_spec_kinds_and_psi() {
        assert_eq!(SchedulerSpec::CsVc.kind(), HopKind::RateBased);
        assert_eq!(SchedulerSpec::VtEdf.kind(), HopKind::DelayBased);
        let psi = SchedulerSpec::VtEdf.psi(Rate::from_bps(1_500_000), Bits::from_bytes(1500));
        assert_eq!(psi, Nanos::from_millis(8));
        let f = SchedulerSpec::Fifo {
            assumed_psi: Nanos::from_millis(3),
        };
        assert_eq!(
            f.psi(Rate::from_bps(1), Bits::from_bits(1)),
            Nanos::from_millis(3)
        );
    }
}
