//! CJVC vs. C̄SVC: jitter control in the core.
//!
//! CJVC holds each packet until its virtual arrival time before serving
//! it, re-normalizing the flow at every hop; C̄SVC is its work-conserving
//! sibling and lets packets bunch up when upstream contention clears.
//! Both meet the same delay bound — the difference is downstream
//! *spacing*, which this test observes at the egress.

use netsim::topology::{SchedulerSpec, TopologyBuilder};
use netsim::{Simulator, SourceModel};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

/// Runs `n_flows` greedy flows over 4 hops of `spec` and returns the
/// minimum observed inter-delivery gap of flow 0 at the egress.
fn min_delivery_gap(spec: SchedulerSpec, n_flows: u64) -> Nanos {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..5).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<_> = (0..4)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                spec,
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let mut sim = Simulator::new(topo);
    sim.enable_validation();
    for f in 0..n_flows {
        sim.add_flow(
            FlowId(f),
            Rate::from_bps(50_000),
            Nanos::ZERO,
            route.clone(),
        );
        sim.add_source(
            FlowId(f),
            SourceModel::Greedy {
                profile: type0(),
                packet: Bits::from_bytes(1500),
            },
            Time::ZERO,
            None,
            Some(25),
        );
    }
    // Track flow 0's deliveries by stepping and diffing `delivered`.
    let mut gaps = Nanos::MAX;
    let mut last: Option<Time> = None;
    let mut seen = 0;
    let mut t = Time::ZERO;
    loop {
        t += Nanos::from_millis(1);
        sim.run_until(t);
        let st = sim.flow_stats(FlowId(0));
        if st.delivered > seen {
            seen = st.delivered;
            let at = st.last_delivery;
            if let Some(prev) = last {
                gaps = gaps.min(at.saturating_since(prev));
            }
            last = Some(at);
        }
        if seen >= 25 {
            break;
        }
        assert!(t < Time::from_secs_f64(60.0), "flows stalled");
    }
    assert_eq!(sim.flow_stats(FlowId(0)).spacing_violations, 0);
    assert_eq!(sim.flow_stats(FlowId(0)).reality_violations, 0);
    gaps
}

#[test]
fn downstream_spacing_respects_the_vtrs_floor() {
    // VTRS theory: departures of a flow at the egress can compress below
    // the reserved spacing L/r by at most h·Ψ in total (each hop's error
    // term), for the work-conserving CsVC; CJVC's per-hop regulation can
    // only widen gaps relative to CsVC (it delays, never hastens). With
    // L/r = 240 ms, h = 4 and Ψ = 8 ms the floor is 208 ms.
    let floor = Nanos::from_millis(240) - Nanos::from_millis(8).scale(4);
    let csvc_gap = min_delivery_gap(SchedulerSpec::CsVc, 20);
    let cjvc_gap = min_delivery_gap(SchedulerSpec::CJVc, 20);
    assert!(
        csvc_gap >= floor,
        "CsVC min gap {csvc_gap} below the VTRS floor {floor}"
    );
    assert!(
        cjvc_gap >= csvc_gap,
        "CJVC gap {cjvc_gap} smaller than CsVC gap {csvc_gap}"
    );
    // CJVC re-regulates at every hop: its egress spacing stays at the
    // full reserved spacing (minus one error term for the final link).
    assert!(
        cjvc_gap >= Nanos::from_millis(232),
        "CJVC min gap {cjvc_gap} should sit at the reserved spacing"
    );
}

#[test]
fn both_meet_the_same_e2e_bound() {
    // Jitter control must not cost correctness: both schedulers keep the
    // greedy flows within the eq.-4 bound.
    for spec in [SchedulerSpec::CsVc, SchedulerSpec::CJVc] {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<_> = (0..5).map(|i| b.node(format!("n{i}"))).collect();
        let route: Vec<_> = (0..4)
            .map(|i| {
                b.link(
                    nodes[i],
                    nodes[i + 1],
                    Rate::from_bps(1_500_000),
                    Nanos::ZERO,
                    spec,
                    Bits::from_bytes(1500),
                )
            })
            .collect();
        let topo = b.build();
        let path = topo.path_spec(&route);
        let profile = type0();
        let bound = vtrs::delay::e2e_delay_bound(
            &profile,
            &path,
            profile.l_max,
            Rate::from_bps(50_000),
            Nanos::ZERO,
        )
        .unwrap();
        let mut sim = Simulator::new(topo);
        sim.enable_validation();
        for f in 0..20u64 {
            sim.add_flow(
                FlowId(f),
                Rate::from_bps(50_000),
                Nanos::ZERO,
                route.clone(),
            );
            sim.add_source(
                FlowId(f),
                SourceModel::Greedy {
                    profile,
                    packet: Bits::from_bytes(1500),
                },
                Time::ZERO,
                None,
                Some(20),
            );
        }
        sim.run_to_completion();
        for f in 0..20u64 {
            let st = sim.flow_stats(FlowId(f));
            assert_eq!(st.delivered, 20);
            assert!(
                st.max_e2e <= bound,
                "{spec:?}: flow {f} observed {} > bound {}",
                st.max_e2e,
                bound
            );
        }
    }
}
