//! The bandwidth broker (BB) — the paper's contribution.
//!
//! Under this architecture **all QoS control state lives here**: core
//! routers run stateless schedulers (see [`sched`]) driven purely by
//! dynamic packet state, while the broker holds the flow, node and path
//! QoS information bases ([`mib`]) and performs every control-plane
//! function — policy control ([`policy`]), path selection ([`routing`]),
//! admission control ([`admission`]) and resource bookkeeping
//! ([`broker`]).
//!
//! Admission is **path-oriented**: because the broker sees the entire
//! path's QoS state at once, it tests all constraints simultaneously
//! instead of hop by hop —
//!
//! * [`admission::rate_based`] — the O(1) test for paths of rate-based
//!   schedulers only (§3.1);
//! * [`admission::mixed`] — the Figure-4 algorithm over the distinct
//!   delay values of the path's delay-based schedulers, returning the
//!   minimal feasible rate–delay pair (§3.2, Theorem 1);
//! * [`admission::aggregate`] — class-based guaranteed services under
//!   dynamic flow aggregation (§4.3), using the contingency-bandwidth
//!   machinery of [`contingency`] (Theorems 2–4) to neutralize the
//!   transient delay-bound hazard of microflow joins and leaves.
//!
//! [`hierarchy`] prototypes the paper's first future-work item — a
//! two-level broker where the parent holds only O(1) per-segment
//! summaries. [`intserv`] implements the comparison baseline of §5: the
//! IntServ/Guaranteed-Service model with hop-by-hop admission, per-router
//! reservation state, and the WFQ-reference delay formula.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod broker;
pub mod contingency;
pub mod cops;
pub mod edge_model;
pub mod hierarchy;
pub mod intserv;
pub mod mib;
pub mod persist;
pub mod policy;
pub mod routing;
pub mod segment;
pub mod shard;
pub mod signaling;
pub mod store;
pub mod summary;

pub use admission::plan::{AdmissionPlan, PlanAction, PlanIntent};
pub use broker::{Broker, BrokerConfig};
pub use mib::{FlowMib, NodeMib, PathId, PathMib};
pub use persist::BrokerImage;
pub use segment::{
    end_to_end_rate, ChainStats, LocalSegment, SegmentAdmitter, SegmentChain, SegmentPlan,
    SegmentSummary,
};
pub use shard::{build_shards, plan_shards, shard_of_path, BrokerShard, FastDecideHandle};
pub use signaling::{FlowRequest, Reject, Reservation, ServiceKind};
pub use store::{FlowIdx, Interner, LinkIdx, MacroIdx, PathIdx, Slab};
