//! Serializable snapshot images of the broker's MIBs.
//!
//! The paper's architecture concentrates **all** of a domain's QoS
//! reservation state in the broker (§2); core routers keep none. That
//! makes the broker process the single point whose crash would void
//! every admitted flow's guarantee — so the dense stores must be
//! exportable to (and rebuildable from) stable storage. This module
//! defines the image types a snapshot serializes:
//!
//! * [`BrokerImage`] — the full dynamic state of one [`crate::Broker`]:
//!   per-link reservation totals and EDF class tables, the flow arena
//!   (slots, generations, free list), the macroflow arena and its
//!   `(path × class)` registry, the macroflow id allocator cursor, and
//!   the admission counters.
//! * The per-store images ([`LinkImage`], [`FlowSlotImage`],
//!   [`MacroSlotImage`], …), each a plain serde-derivable struct.
//!
//! Design constraints the shapes encode:
//!
//! * **Generation counters are part of the state.** Arena slots are
//!   exported vacant-or-occupied with their generations and the free
//!   list verbatim, so a restored broker mints exactly the handles the
//!   original would have — stale handles keep missing, and the
//!   recovered arena's layout is byte-equivalent (which is what lets
//!   the recovery-equivalence test compare images with `==`).
//! * **Interners are not serialized.** Every occupied slot carries its
//!   wire id, so the wire-id → handle tables are rebuilt losslessly on
//!   import; a `HashMap` has no canonical serialized order anyway.
//! * **`u128` aggregates are split.** The vendored serde speaks `u64`
//!   at widest, so [`crate::mib::EdfClass`]'s 128-bit prefix sums
//!   travel as `(hi, lo)` pairs.
//! * **Derived state is recomputed.** Path summary caches, epoch
//!   stamps, and dense class rows are rebuilt or start cold: none of
//!   them is reservation state, and no in-flight `AdmissionPlan`
//!   survives a restart to observe the difference.

use qos_units::{Nanos, Rate};
use serde::{Deserialize, Serialize};
use vtrs::profile::TrafficProfile;

use crate::broker::BrokerStats;
use crate::contingency::Grant;
use crate::mib::{EdfClass, FlowRecord, FlowService, PathId};
use crate::store::MacroIdx;

/// Splits a `u128` aggregate into `(hi, lo)` words for serialization.
#[must_use]
pub fn split_u128(v: u128) -> (u64, u64) {
    ((v >> 64) as u64, v as u64)
}

/// Reassembles a `u128` from its `(hi, lo)` words.
#[must_use]
pub fn join_u128(hi: u64, lo: u64) -> u128 {
    (u128::from(hi) << 64) | u128::from(lo)
}

/// One EDF delay-class aggregate of a link, serialization form of
/// `(Nanos, EdfClass)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdfEntryImage {
    /// The class's delay value `d`.
    pub delay: Nanos,
    /// Σ r over reservations of this delay.
    pub rate: Rate,
    /// High word of `Σ r·d` (bps·ns).
    pub rate_delay_hi: u64,
    /// Low word of `Σ r·d`.
    pub rate_delay_lo: u64,
    /// High word of `Σ L · 10⁹`.
    pub lmax_hi: u64,
    /// Low word of `Σ L · 10⁹`.
    pub lmax_lo: u64,
    /// Reservations in the class.
    pub count: u64,
}

impl EdfEntryImage {
    /// Captures one `(delay, class)` aggregate.
    #[must_use]
    pub fn from_class(delay: Nanos, class: &EdfClass) -> Self {
        let (rate_delay_hi, rate_delay_lo) = split_u128(class.rate_delay);
        let (lmax_hi, lmax_lo) = split_u128(class.lmax_scaled);
        EdfEntryImage {
            delay,
            rate: class.rate,
            rate_delay_hi,
            rate_delay_lo,
            lmax_hi,
            lmax_lo,
            count: class.count,
        }
    }

    /// Rebuilds the `(delay, class)` aggregate.
    #[must_use]
    pub fn to_entry(&self) -> (Nanos, EdfClass) {
        (
            self.delay,
            EdfClass {
                rate: self.rate,
                rate_delay: join_u128(self.rate_delay_hi, self.rate_delay_lo),
                lmax_scaled: join_u128(self.lmax_hi, self.lmax_lo),
                count: self.count,
            },
        )
    }
}

/// Dynamic reservation state of one link (static parameters come from
/// the topology the restoring broker is built with).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkImage {
    /// Total reserved bandwidth, contingency included.
    pub reserved: Rate,
    /// EDF class table in ascending delay order.
    pub edf: Vec<EdfEntryImage>,
}

/// How a snapshotted flow is served, with dense handles flattened to
/// their bit representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowServiceImage {
    /// Dedicated per-flow reservation.
    PerFlow {
        /// Reserved rate.
        rate: Rate,
        /// Delay parameter at delay-based hops.
        delay: Nanos,
    },
    /// Member of a macroflow.
    ClassMember {
        /// The macroflow handle's `Handle::to_bits` image.
        macroflow: u64,
    },
}

/// One flow record of the flow MIB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecordImage {
    /// Declared traffic profile.
    pub profile: TrafficProfile,
    /// End-to-end delay requirement.
    pub d_req: Nanos,
    /// Path the flow is routed over.
    pub path: PathId,
    /// Granted service.
    pub service: FlowServiceImage,
}

impl FlowRecordImage {
    /// Captures a flow record.
    #[must_use]
    pub fn from_record(record: &FlowRecord) -> Self {
        FlowRecordImage {
            profile: record.profile,
            d_req: record.d_req,
            path: record.path,
            service: match record.service {
                FlowService::PerFlow { rate, delay } => FlowServiceImage::PerFlow { rate, delay },
                FlowService::ClassMember { macroflow } => FlowServiceImage::ClassMember {
                    macroflow: macroflow.to_bits(),
                },
            },
        }
    }

    /// Rebuilds the flow record.
    #[must_use]
    pub fn to_record(&self) -> FlowRecord {
        FlowRecord {
            profile: self.profile,
            d_req: self.d_req,
            path: self.path,
            service: match self.service {
                FlowServiceImage::PerFlow { rate, delay } => FlowService::PerFlow { rate, delay },
                FlowServiceImage::ClassMember { macroflow } => FlowService::ClassMember {
                    macroflow: MacroIdx::from_bits(macroflow),
                },
            },
        }
    }
}

/// One slot of the flow arena, generation counters intact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowSlotImage {
    /// Vacant slot awaiting reuse.
    Vacant {
        /// Generation its next occupant will be minted at.
        next_generation: u32,
    },
    /// Occupied slot.
    Occupied {
        /// Generation of the live handle.
        generation: u32,
        /// The flow's wire id.
        flow: u64,
        /// The flow record.
        record: FlowRecordImage,
    },
}

/// One macroflow's control state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacroImage {
    /// The macroflow's wire id (top-half `FlowId` space).
    pub id: u64,
    /// Wire-level service class number (the dense class row is
    /// re-interned on restore).
    pub class: u32,
    /// Path the macroflow is pinned to.
    pub path: PathId,
    /// Aggregate member profile.
    pub profile: TrafficProfile,
    /// Reserved rate `r^α` (excluding contingency).
    pub reserved: Rate,
    /// Member microflows.
    pub members: u64,
    /// Active contingency grants, in grant order.
    pub grants: Vec<Grant>,
    /// Whether the macroflow is dissolving.
    pub dissolving: bool,
}

/// One slot of the macroflow arena.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacroSlotImage {
    /// Vacant slot awaiting reuse.
    Vacant {
        /// Generation its next occupant will be minted at.
        next_generation: u32,
    },
    /// Occupied slot.
    Occupied {
        /// Generation of the live handle.
        generation: u32,
        /// The macroflow's control state.
        state: MacroImage,
    },
}

/// The full dynamic state of one broker — everything
/// [`crate::Broker::restore_image`] needs to rebuild the MIBs exactly,
/// given the same topology, routes, and configuration the original was
/// constructed with.
///
/// Equality is meaningful: two brokers that evolved through the same
/// operation sequence export equal images (arena layouts, free lists,
/// and EDF tables are all deterministic), which is the property the
/// recovery-equivalence test checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerImage {
    /// Per-link dynamic state, indexed by link row.
    pub links: Vec<LinkImage>,
    /// Flow-arena slots in slot order.
    pub flow_slots: Vec<FlowSlotImage>,
    /// Flow-arena LIFO free list.
    pub flow_free: Vec<u32>,
    /// Macroflow-arena slots in slot order.
    pub macro_slots: Vec<MacroSlotImage>,
    /// Macroflow-arena LIFO free list.
    pub macro_free: Vec<u32>,
    /// The dense `(path row × class row)` → serving-macroflow registry,
    /// handles as `Handle::to_bits` images.
    pub macro_registry: Vec<Option<u64>>,
    /// Next macroflow wire id to mint (shard-offset cursor).
    pub next_macro: u64,
    /// Admission counters.
    pub stats: BrokerStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_words_roundtrip() {
        for v in [
            0u128,
            1,
            u128::from(u64::MAX),
            u128::MAX,
            1 << 64,
            (1 << 100) + 17,
        ] {
            let (hi, lo) = split_u128(v);
            assert_eq!(join_u128(hi, lo), v);
        }
    }

    #[test]
    fn edf_entry_roundtrips_wide_aggregates() {
        let class = EdfClass {
            rate: Rate::from_bps(123_456),
            rate_delay: (1 << 90) + 42,
            lmax_scaled: (1 << 70) + 7,
            count: 3,
        };
        let img = EdfEntryImage::from_class(Nanos::from_millis(240), &class);
        let json = serde::json::to_string(&img);
        let back: EdfEntryImage = serde::json::from_str(&json).unwrap();
        assert_eq!(back.to_entry(), (Nanos::from_millis(240), class));
    }
}
