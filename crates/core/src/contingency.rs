//! Contingency bandwidth management (§4.2.1, Theorems 2 & 3).
//!
//! When a microflow joins or leaves a macroflow, the backlog already
//! queued at the edge conditioner can push later packets past the new
//! edge-delay bound. The fix: alongside the rate change, allocate
//! **contingency bandwidth** `Δr` for a **contingency period** `τ` long
//! enough to flush that backlog — `Δr ≥ Pν − rν` on a join (Theorem 2),
//! `Δr ≥ rν` on a leave (Theorem 3), with `τ ≥ Q(t*)/Δr` in both cases.
//!
//! Two ways to end the period:
//!
//! * [`ContingencyPolicy::Bounding`] — the broker computes the worst-case
//!   period `τ̂ = d_edge^old · (r^α + Δr^α(t*)) / Δr` (eq. 17) from the
//!   backlog bound (eq. 16) and deallocates on that timer. Conservative:
//!   bandwidth is tied up for the full theoretical period.
//! * [`ContingencyPolicy::Feedback`] — the edge conditioner reports its
//!   actual buffer occupancy; the grant is released as soon as the buffer
//!   drains (usually almost immediately). Additionally, *any* buffer-empty
//!   report resets all of a macroflow's outstanding contingency (§4.2.1's
//!   early-reset observation).

use qos_units::ratio::mul_div_ceil;
use qos_units::{Nanos, Rate, Time};
use serde::{Deserialize, Serialize};

/// How the broker decides when a contingency grant ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContingencyPolicy {
    /// Theoretical worst-case period (eq. 17).
    Bounding,
    /// Edge-driven release on actual buffer drain.
    Feedback,
}

/// One active contingency grant on a macroflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// Extra bandwidth held.
    pub amount: Rate,
    /// When it was granted.
    pub granted_at: Time,
    /// Timer expiry (bounding policy); `None` for feedback-managed
    /// grants, which end on an edge report.
    pub expires: Option<Time>,
}

/// The contingency bandwidth required by a microflow **join**
/// (Theorem 2): `Δr = Pν − rν` where `rν = r^{α'} − r^α`.
#[must_use]
pub fn join_delta(peak_nu: Rate, increment: Rate) -> Rate {
    peak_nu.saturating_sub(increment)
}

/// The contingency bandwidth required by a microflow **leave**
/// (Theorem 3): `Δr = rν = r^α − r^{α'}`.
#[must_use]
pub fn leave_delta(decrement: Rate) -> Rate {
    decrement
}

/// The worst-case contingency period `τ̂` (eq. 17):
/// `τ̂ = d_edge^old · (r^α + Δr^α(t*)) / Δr`,
/// where `d_edge^old` bounds the backlog age, `base` is the macroflow's
/// reserved rate, `active` the contingency bandwidth already allocated at
/// `t*`, and `delta` the new grant.
///
/// Returns [`Nanos::ZERO`] when `delta` is zero (no grant, no period).
#[must_use]
pub fn bounding_period(d_edge_old: Nanos, base: Rate, active: Rate, delta: Rate) -> Nanos {
    if delta.is_zero() {
        return Nanos::ZERO;
    }
    Nanos::from_nanos(mul_div_ceil(
        d_edge_old.as_nanos(),
        base.saturating_add(active).as_bps(),
        delta.as_bps(),
    ))
}

/// The exact contingency period given a measured backlog (Theorems 2/3):
/// `τ = Q(t*)/Δr`. Used by the feedback path when the edge reports its
/// occupancy instead of an empty-buffer event.
#[must_use]
pub fn measured_period(backlog_bits: u64, delta: Rate) -> Nanos {
    if delta.is_zero() || backlog_bits == 0 {
        return Nanos::ZERO;
    }
    Nanos::from_nanos(mul_div_ceil(
        backlog_bits,
        qos_units::NANOS_PER_SEC,
        delta.as_bps(),
    ))
}

/// Active contingency grants of one macroflow.
#[derive(Debug, Clone, Default)]
pub struct ContingencySet {
    grants: Vec<Grant>,
}

impl ContingencySet {
    /// No grants.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a grant; zero-amount grants are ignored.
    pub fn add(&mut self, grant: Grant) {
        if !grant.amount.is_zero() {
            self.grants.push(grant);
        }
    }

    /// Total contingency bandwidth currently held — the `Δr^α(t*)` of
    /// eq. 16.
    #[must_use]
    pub fn total(&self) -> Rate {
        self.grants
            .iter()
            .fold(Rate::ZERO, |acc, g| acc.saturating_add(g.amount))
    }

    /// Removes grants whose timer has expired by `now`; returns the
    /// bandwidth released.
    pub fn expire(&mut self, now: Time) -> Rate {
        let mut released = Rate::ZERO;
        self.grants.retain(|g| match g.expires {
            Some(t) if t <= now => {
                released = released.saturating_add(g.amount);
                false
            }
            _ => true,
        });
        released
    }

    /// Releases everything (the §4.2.1 early reset on an empty edge
    /// buffer); returns the bandwidth released.
    pub fn reset(&mut self) -> Rate {
        let total = self.total();
        self.grants.clear();
        total
    }

    /// Earliest pending timer expiry, if any.
    #[must_use]
    pub fn next_expiry(&self) -> Option<Time> {
        self.grants.iter().filter_map(|g| g.expires).min()
    }

    /// Number of active grants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Whether no grants are active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// The active grants, in grant order — exported by MIB snapshots.
    #[must_use]
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }

    /// Rebuilds a set from snapshotted grants, preserving order (order
    /// matters only for image-equality checks, not semantics).
    /// Zero-amount grants are dropped, mirroring [`ContingencySet::add`].
    #[must_use]
    pub fn from_grants(grants: impl IntoIterator<Item = Grant>) -> Self {
        let mut set = Self::new();
        for g in grants {
            set.add(g);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_follow_the_theorems() {
        // Join: Δr = Pν − rν.
        assert_eq!(
            join_delta(Rate::from_bps(100_000), Rate::from_bps(50_000)),
            Rate::from_bps(50_000)
        );
        // Over-incremented joins clamp to zero.
        assert_eq!(
            join_delta(Rate::from_bps(100_000), Rate::from_bps(120_000)),
            Rate::ZERO
        );
        // Leave: Δr = rν.
        assert_eq!(leave_delta(Rate::from_bps(30_000)), Rate::from_bps(30_000));
    }

    #[test]
    fn bounding_period_matches_eq_17() {
        // d_edge_old = 1.2 s, r = 50 kb/s, no prior contingency,
        // Δr = 50 kb/s → τ̂ = 1.2 s.
        assert_eq!(
            bounding_period(
                Nanos::from_millis(1_200),
                Rate::from_bps(50_000),
                Rate::ZERO,
                Rate::from_bps(50_000)
            ),
            Nanos::from_millis(1_200)
        );
        // Prior contingency inflates the bound proportionally.
        assert_eq!(
            bounding_period(
                Nanos::from_millis(1_200),
                Rate::from_bps(50_000),
                Rate::from_bps(50_000),
                Rate::from_bps(50_000)
            ),
            Nanos::from_millis(2_400)
        );
        assert_eq!(
            bounding_period(
                Nanos::from_secs(1),
                Rate::from_bps(1),
                Rate::ZERO,
                Rate::ZERO
            ),
            Nanos::ZERO
        );
    }

    #[test]
    fn measured_period_is_backlog_over_delta() {
        // 48000 bits at Δr = 50 kb/s → 0.96 s.
        assert_eq!(
            measured_period(48_000, Rate::from_bps(50_000)),
            Nanos::from_millis(960)
        );
        assert_eq!(measured_period(0, Rate::from_bps(50_000)), Nanos::ZERO);
    }

    #[test]
    fn set_bookkeeping() {
        let mut s = ContingencySet::new();
        s.add(Grant {
            amount: Rate::from_bps(100),
            granted_at: Time::ZERO,
            expires: Some(Time::from_nanos(10)),
        });
        s.add(Grant {
            amount: Rate::from_bps(200),
            granted_at: Time::ZERO,
            expires: Some(Time::from_nanos(20)),
        });
        s.add(Grant {
            amount: Rate::ZERO,
            granted_at: Time::ZERO,
            expires: None,
        });
        assert_eq!(s.len(), 2);
        assert_eq!(s.total(), Rate::from_bps(300));
        assert_eq!(s.next_expiry(), Some(Time::from_nanos(10)));
        assert_eq!(s.expire(Time::from_nanos(10)), Rate::from_bps(100));
        assert_eq!(s.total(), Rate::from_bps(200));
        assert_eq!(s.reset(), Rate::from_bps(200));
        assert!(s.is_empty());
    }
}
