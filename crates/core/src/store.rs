//! Dense, generation-checked state storage for the broker's MIBs.
//!
//! §5's scalability argument turns on how the MIBs are organized: the
//! broker holds *all* of a domain's QoS state, so the admission hot
//! path must read and write that state without chasing hash buckets
//! sized by sparse wire-level identifiers. This module supplies the two
//! building blocks the MIBs and the broker registry are rebuilt on:
//!
//! * [`Slab`] — a typed arena of contiguous slots addressed by
//!   generational [`Handle`]s ([`FlowIdx`], [`MacroIdx`], …). Lookup is
//!   a bounds check plus a generation compare; freed slots are recycled
//!   with a bumped generation so stale handles resolve to `None`
//!   instead of aliasing a new occupant.
//! * [`Interner`] — the **single translation point** between external
//!   wire identifiers (`FlowId`/`PathId`/class u64s, chosen by edge
//!   routers) and dense handles. A wire id is hashed exactly once, at
//!   the COPS boundary; everything inboard of [`crate::cops`] — broker,
//!   admission, hierarchy, shard — passes handles and never re-hashes a
//!   wire id on the decide or commit hot paths.
//!
//! [`LinkIdx`] is an alias for [`crate::mib::LinkRef`]: links are
//! registered once at import and never deallocated, so their handles
//! need no generation.

use std::collections::HashMap;
use std::marker::PhantomData;

use qos_units::handle::Handle;

/// Tag for handles into the flow arena ([`crate::mib::FlowMib`]).
pub enum FlowTag {}
/// Tag for handles naming path MIB rows ([`crate::mib::PathMib`]).
pub enum PathTag {}
/// Tag for handles into the broker's macroflow arena.
pub enum MacroTag {}

/// Dense handle to a flow record.
pub type FlowIdx = Handle<FlowTag>;
/// Dense handle to a path row.
pub type PathIdx = Handle<PathTag>;
/// Dense handle to a macroflow's control state.
pub type MacroIdx = Handle<MacroTag>;
/// Dense handle to a link row. Links live for the broker's lifetime,
/// so the plain index is already generation-safe.
pub type LinkIdx = crate::mib::LinkRef;

/// One arena slot: occupied with the generation it was minted at, or
/// vacant carrying the generation its *next* occupant will get.
#[derive(Debug, Clone)]
enum Slot<T> {
    Vacant { next_generation: u32 },
    Occupied { generation: u32, value: T },
}

/// The exportable image of one slab slot: the persistence view of a
/// slot with its generation counter intact, so a slab rebuilt from raw
/// slots resolves (and rejects) exactly the same handles as the
/// original. Produced by [`Slab::export_raw`], consumed by
/// [`Slab::from_raw`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawSlot<T> {
    /// A vacant slot, carrying the generation its next occupant will
    /// be minted at.
    Vacant {
        /// Generation the next [`Slab::insert`] reusing this slot gets.
        next_generation: u32,
    },
    /// An occupied slot.
    Occupied {
        /// Generation of the live handle addressing this slot.
        generation: u32,
        /// The stored value.
        value: T,
    },
}

/// A typed slab arena: contiguous slots, O(1) insert/remove/lookup by
/// generational handle, vacant slots recycled LIFO.
pub struct Slab<M, T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    _tag: PhantomData<fn() -> M>,
}

// Manual impls: derives would demand bounds on the phantom tag `M`.
impl<M, T: std::fmt::Debug> std::fmt::Debug for Slab<M, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("slots", &self.slots)
            .field("free", &self.free)
            .field("live", &self.live)
            .finish()
    }
}

impl<M, T: Clone> Clone for Slab<M, T> {
    fn clone(&self) -> Self {
        Slab {
            slots: self.slots.clone(),
            free: self.free.clone(),
            live: self.live,
            _tag: PhantomData,
        }
    }
}

impl<M, T> Default for Slab<M, T> {
    fn default() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            _tag: PhantomData,
        }
    }
}

impl<M, T> Slab<M, T> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a value, returning its handle. Reuses the most recently
    /// freed slot if any, else appends a new one.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX` slots.
    pub fn insert(&mut self, value: T) -> Handle<M> {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            let generation = match *slot {
                Slot::Vacant { next_generation } => next_generation,
                Slot::Occupied { .. } => unreachable!("free list points at an occupied slot"),
            };
            *slot = Slot::Occupied { generation, value };
            return Handle::new(index, generation);
        }
        let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
        self.slots.push(Slot::Occupied {
            generation: 0,
            value,
        });
        Handle::new(index, 0)
    }

    /// Removes the value a live handle points at. Stale handles (wrong
    /// generation, already freed, out of range) return `None`.
    pub fn remove(&mut self, handle: Handle<M>) -> Option<T> {
        let slot = self.slots.get_mut(handle.index())?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == handle.generation() => {
                let next_generation = handle.generation().wrapping_add(1);
                let old = std::mem::replace(slot, Slot::Vacant { next_generation });
                #[allow(clippy::cast_possible_truncation)]
                self.free.push(handle.index() as u32);
                self.live -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// Resolves a handle, `None` if stale.
    #[must_use]
    pub fn get(&self, handle: Handle<M>) -> Option<&T> {
        match self.slots.get(handle.index())? {
            Slot::Occupied { generation, value } if *generation == handle.generation() => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Mutable counterpart of [`Slab::get`].
    pub fn get_mut(&mut self, handle: Handle<M>) -> Option<&mut T> {
        match self.slots.get_mut(handle.index())? {
            Slot::Occupied { generation, value } if *generation == handle.generation() => {
                Some(value)
            }
            _ => None,
        }
    }

    /// Number of live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no value is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots allocated (live + vacant) — the arena's footprint,
    /// exposed as an occupancy gauge by the daemon's telemetry.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Iterates over live `(handle, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle<M>, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            #[allow(clippy::cast_possible_truncation)]
            match slot {
                Slot::Occupied { generation, value } => {
                    Some((Handle::new(i as u32, *generation), value))
                }
                Slot::Vacant { .. } => None,
            }
        })
    }

    /// Live handles in slot order (detached from the borrow, for
    /// mutate-while-iterating patterns like timer sweeps).
    #[must_use]
    pub fn handles(&self) -> Vec<Handle<M>> {
        self.iter().map(|(h, _)| h).collect()
    }

    /// Exports the arena's full layout — every slot (vacant ones
    /// included, with their pending generations) plus the LIFO free
    /// list — so a snapshot can reconstruct a byte-for-byte equivalent
    /// arena with [`Slab::from_raw`].
    #[must_use]
    pub fn export_raw(&self) -> (Vec<RawSlot<T>>, Vec<u32>)
    where
        T: Clone,
    {
        let slots = self
            .slots
            .iter()
            .map(|slot| match slot {
                Slot::Vacant { next_generation } => RawSlot::Vacant {
                    next_generation: *next_generation,
                },
                Slot::Occupied { generation, value } => RawSlot::Occupied {
                    generation: *generation,
                    value: value.clone(),
                },
            })
            .collect();
        (slots, self.free.clone())
    }

    /// Rebuilds an arena from an [`Slab::export_raw`] image. Slot
    /// order, generations, and free-list order are preserved, so every
    /// handle minted by the original arena resolves identically here —
    /// including stale handles, which still miss.
    ///
    /// # Panics
    ///
    /// Panics when the image is internally inconsistent (a free-list
    /// entry that is out of range, points at an occupied slot, or a
    /// vacant slot missing from the free list). Images come from
    /// checksummed snapshots, so an inconsistency is a logic bug, not
    /// disk corruption.
    #[must_use]
    pub fn from_raw(raw_slots: Vec<RawSlot<T>>, free: Vec<u32>) -> Self {
        let mut on_free_list = vec![false; raw_slots.len()];
        for &index in &free {
            let slot = on_free_list
                .get_mut(index as usize)
                .expect("slab image: free-list entry out of range");
            assert!(!*slot, "slab image: duplicate free-list entry {index}");
            *slot = true;
        }
        let mut live = 0usize;
        let slots: Vec<Slot<T>> = raw_slots
            .into_iter()
            .zip(on_free_list)
            .map(|(raw, freed)| match raw {
                RawSlot::Vacant { next_generation } => {
                    assert!(freed, "slab image: vacant slot missing from free list");
                    Slot::Vacant { next_generation }
                }
                RawSlot::Occupied { generation, value } => {
                    assert!(
                        !freed,
                        "slab image: free-list entry points at occupied slot"
                    );
                    live += 1;
                    Slot::Occupied { generation, value }
                }
            })
            .collect();
        Slab {
            slots,
            free,
            live,
            _tag: PhantomData,
        }
    }
}

/// The wire-id → dense-value translation table.
///
/// One hash probe per *boundary crossing* — a request, release or
/// report arriving from an edge router — is the entire hashing budget
/// of the admission pipeline; the value stored here (a [`Handle`] or a
/// dense row number) is what travels inboard.
#[derive(Debug, Clone)]
pub struct Interner<V> {
    map: HashMap<u64, V>,
}

impl<V> Default for Interner<V> {
    fn default() -> Self {
        Interner {
            map: HashMap::new(),
        }
    }
}

impl<V: Copy> Interner<V> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a wire id to a dense value, returning the previous binding
    /// if the id was already interned.
    pub fn bind(&mut self, wire: u64, value: V) -> Option<V> {
        self.map.insert(wire, value)
    }

    /// The single sanctioned wire-id hash: resolves an external id to
    /// its dense value.
    #[must_use]
    pub fn resolve(&self, wire: u64) -> Option<V> {
        self.map.get(&wire).copied()
    }

    /// Unbinds a wire id (when its flow/macroflow leaves the domain).
    pub fn unbind(&mut self, wire: u64) -> Option<V> {
        self.map.remove(&wire)
    }

    /// Number of interned wire ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All `(wire id, dense value)` bindings, in unspecified order.
    /// Snapshot export sorts these before serializing so images are
    /// deterministic.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, V)> {
        self.map
            .iter()
            .map(|(&wire, &value)| (wire, value))
            .collect()
    }

    /// Rebuilds a table from exported bindings.
    #[must_use]
    pub fn from_entries(entries: impl IntoIterator<Item = (u64, V)>) -> Self {
        Interner {
            map: entries.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_get_remove_roundtrip() {
        let mut slab: Slab<FlowTag, &'static str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None, "freed handle must not resolve");
        assert_eq!(slab.remove(a), None, "double free is a no-op");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn recycled_slots_bump_the_generation() {
        let mut slab: Slab<MacroTag, u64> = Slab::new();
        let first = slab.insert(1);
        slab.remove(first).unwrap();
        let second = slab.insert(2);
        // Same dense row, new generation: the stale handle misses.
        assert_eq!(second.index(), first.index());
        assert_ne!(second.generation(), first.generation());
        assert_eq!(slab.get(first), None);
        assert_eq!(slab.get(second), Some(&2));
        assert_eq!(slab.slot_count(), 1, "the slot was reused, not grown");
    }

    #[test]
    fn iteration_skips_vacant_slots() {
        let mut slab: Slab<FlowTag, u32> = Slab::new();
        let handles: Vec<_> = (0..5u32).map(|v| slab.insert(v)).collect();
        slab.remove(handles[1]).unwrap();
        slab.remove(handles[3]).unwrap();
        let seen: Vec<u32> = slab.iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, vec![0, 2, 4]);
        assert_eq!(slab.handles().len(), 3);
    }

    #[test]
    fn interner_binds_resolves_unbinds() {
        let mut interner: Interner<FlowIdx> = Interner::new();
        let h = Handle::new(3, 1);
        assert!(interner.bind(42, h).is_none());
        assert_eq!(interner.resolve(42), Some(h));
        assert_eq!(interner.resolve(7), None);
        assert_eq!(interner.unbind(42), Some(h));
        assert!(interner.is_empty());
    }
}
