//! Fluid model of a macroflow's edge-conditioner backlog.
//!
//! The contingency **feedback** policy needs to know when the edge buffer
//! drains. In the packet-level simulator the real
//! [`vtrs::conditioner::EdgeConditioner`] provides that signal exactly;
//! for the large-scale blocking experiments (Figure 10) running thousands
//! of flow arrivals, this fluid approximation captures the same dynamics
//! at negligible cost: the backlog integrates `arrival_rate −
//! service_rate` between events, microflow joins may dump a burst, and
//! the drain instant is predicted in closed form.
//!
//! The approximation is conservative in the direction that matters for
//! the experiment: it never predicts a drain earlier than the fluid
//! dynamics allow, so feedback-released contingency bandwidth is never
//! freed too early.

use qos_units::ratio::mul_div_ceil;
use qos_units::{Bits, Rate, Time, NANOS_PER_SEC};

/// Fluid backlog state of one macroflow's edge conditioner.
#[derive(Debug, Clone)]
pub struct FluidEdge {
    backlog: u64, // bits
    arrival: Rate,
    service: Rate,
    last: Time,
}

impl FluidEdge {
    /// A fresh, empty conditioner.
    #[must_use]
    pub fn new(now: Time) -> Self {
        FluidEdge {
            backlog: 0,
            arrival: Rate::ZERO,
            service: Rate::ZERO,
            last: now,
        }
    }

    /// Integrates the fluid dynamics up to `now`.
    pub fn advance(&mut self, now: Time) {
        if now <= self.last {
            return;
        }
        let dt = now - self.last;
        let inflow = self.arrival.bits_in_ceil(dt).as_bits();
        let outflow = self.service.bits_in_floor(dt).as_bits();
        self.backlog = (self.backlog + inflow).saturating_sub(outflow);
        self.last = now;
    }

    /// Sets the aggregate arrival rate (Σρ of active microflows) after
    /// advancing to `now`.
    pub fn set_arrival(&mut self, now: Time, rate: Rate) {
        self.advance(now);
        self.arrival = rate;
    }

    /// Sets the service (shaping) rate — reserved plus contingency —
    /// after advancing to `now`.
    pub fn set_service(&mut self, now: Time, rate: Rate) {
        self.advance(now);
        self.service = rate;
    }

    /// Adds an instantaneous burst (a joining microflow dumping up to its
    /// bucket depth).
    pub fn add_burst(&mut self, now: Time, bits: Bits) {
        self.advance(now);
        self.backlog += bits.as_bits();
    }

    /// Current backlog in bits (advance first for an up-to-date value).
    #[must_use]
    pub fn backlog(&self) -> u64 {
        self.backlog
    }

    /// Predicted drain instant under current rates: `None` if the buffer
    /// never drains (service ≤ arrival with backlog, or rates equal);
    /// `Some(last)` if already empty.
    #[must_use]
    pub fn empty_at(&self) -> Option<Time> {
        if self.backlog == 0 {
            return Some(self.last);
        }
        let drain = self.service.checked_sub(self.arrival)?;
        if drain.is_zero() {
            return None;
        }
        let dt = mul_div_ceil(self.backlog, NANOS_PER_SEC, drain.as_bps());
        Some(self.last + qos_units::Nanos::from_nanos(dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_units::Nanos;

    #[test]
    fn integrates_net_rate() {
        let mut e = FluidEdge::new(Time::ZERO);
        e.set_arrival(Time::ZERO, Rate::from_bps(100_000));
        e.set_service(Time::ZERO, Rate::from_bps(60_000));
        e.advance(Time::from_secs_f64(1.0));
        assert_eq!(e.backlog(), 40_000);
        // Flip the imbalance: drains at 40 kb/s.
        e.set_arrival(Time::from_secs_f64(1.0), Rate::from_bps(20_000));
        assert_eq!(
            e.empty_at(),
            Some(Time::from_secs_f64(1.0) + Nanos::from_secs(1))
        );
        e.advance(Time::from_secs_f64(3.0));
        assert_eq!(e.backlog(), 0);
    }

    #[test]
    fn burst_then_drain() {
        let mut e = FluidEdge::new(Time::ZERO);
        e.set_service(Time::ZERO, Rate::from_bps(50_000));
        e.add_burst(Time::ZERO, Bits::from_bits(48_000));
        assert_eq!(e.empty_at(), Some(Time::from_nanos(960_000_000)));
    }

    #[test]
    fn never_drains_when_oversubscribed() {
        let mut e = FluidEdge::new(Time::ZERO);
        e.set_arrival(Time::ZERO, Rate::from_bps(100));
        e.set_service(Time::ZERO, Rate::from_bps(100));
        e.add_burst(Time::ZERO, Bits::from_bits(1));
        assert_eq!(e.empty_at(), None);
    }

    #[test]
    fn empty_buffer_reports_immediately() {
        let e = FluidEdge::new(Time::from_nanos(5));
        assert_eq!(e.empty_at(), Some(Time::from_nanos(5)));
    }
}
