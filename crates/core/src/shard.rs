//! Shard-aware broker API for concurrent deployments.
//!
//! The broker of [`crate::broker`] is a passive, single-threaded state
//! machine — the right shape for the simulator, but a daemon serving
//! many edge routers wants to run admission control on several cores at
//! once. The paper's state layout makes that safe to do without locks:
//! admission for a path touches only that path's rows of the node and
//! path MIBs, so when a domain partitions into **link-disjoint pods**
//! (see [`netsim::topology::Topology::pod_of`]), per-pod state can be
//! owned outright by independent shards.
//!
//! [`BrokerShard`] is one such shard: a full [`Broker`] plus a
//! translation table from *global* path ids (what edge routers put in
//! COPS requests) to the shard-local registration. It is `Send`, so a
//! worker thread can own one, and it keeps the broker's explicit-time,
//! passive semantics — nothing here spawns threads or reads clocks.
//! [`build_shards`] partitions a routed topology into such shards and
//! proves (by assertion) that the partition is link-disjoint, which is
//! the whole correctness argument: a flow's admission outcome depends
//! only on its own shard's state, so any interleaving of requests across
//! shards yields the same per-flow decisions as a serial broker fed the
//! same per-shard request order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netsim::topology::{LinkId, Topology};
use qos_units::{Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::reference::PathSpec;

use crate::admission::plan::{AdmissionPlan, PlanAction, PlanIntent};
use crate::admission::rate_based;
use crate::broker::{Broker, BrokerConfig, UnknownFlow};
use crate::mib::{EpochLane, PathId};
use crate::signaling::{FlowRequest, Reject, Reservation, ServiceKind};
use crate::summary::SummaryTable;

/// One shard of a domain's broker state: an independent [`Broker`]
/// owning the MIB rows of the paths assigned to it.
#[derive(Debug)]
pub struct BrokerShard {
    shard: usize,
    broker: Broker,
    /// Global path id → id under this shard's own path MIB, indexed by
    /// the global id's value. Global ids are route indices (dense by
    /// construction, see [`build_shards`]), so the translation on the
    /// decide hot path is a vector probe, not a hash.
    paths: Vec<Option<PathId>>,
}

impl BrokerShard {
    /// Builds a shard over the (shared, immutable) domain topology,
    /// serving exactly the given `(global id, route)` paths.
    ///
    /// `shards` is the total shard count; it namespaces macroflow ids so
    /// class-service reservations minted by different shards never
    /// collide at the edges.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= shards` or a route references an unknown
    /// link.
    #[must_use]
    pub fn new(
        shard: usize,
        shards: usize,
        topo: &Topology,
        config: &BrokerConfig,
        routes: &[(PathId, Vec<LinkId>)],
    ) -> Self {
        let mut broker = Broker::new(topo.clone(), config.clone());
        broker.set_macro_shard(shard as u64, shards as u64);
        let mut paths = Vec::new();
        for (global, route) in routes {
            let row = usize::try_from(global.0).expect("global path ids fit usize");
            if row >= paths.len() {
                paths.resize(row + 1, None);
            }
            paths[row] = Some(broker.register_route(route));
        }
        BrokerShard {
            shard,
            broker,
            paths,
        }
    }

    /// This shard's index.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Whether a global path id is served here.
    #[must_use]
    pub fn serves(&self, path: PathId) -> bool {
        self.local_path(path).is_some()
    }

    /// Dense translation of a global path id, `None` if not served here.
    fn local_path(&self, path: PathId) -> Option<PathId> {
        self.paths
            .get(usize::try_from(path.0).ok()?)
            .copied()
            .flatten()
    }

    /// Handles a flow request whose `path` field is a **global** path id.
    ///
    /// # Errors
    ///
    /// Returns the broker's [`Reject`] cause.
    ///
    /// # Panics
    ///
    /// Panics when the request's path is not served by this shard — the
    /// dispatcher's responsibility, checked here so a routing bug cannot
    /// silently corrupt another shard's accounting.
    pub fn request(&mut self, now: Time, req: &FlowRequest) -> Result<Reservation, Reject> {
        let plan = self.decide(req);
        self.commit(now, &plan)
    }

    /// Decide phase against this shard's state (global path id
    /// translated), read-only — see [`Broker::decide`]. Concurrent
    /// callers may decide against the same shard; only
    /// [`BrokerShard::commit`] needs exclusive access.
    ///
    /// # Panics
    ///
    /// As [`BrokerShard::request`], when the path is not served here.
    #[must_use]
    pub fn decide(&self, req: &FlowRequest) -> crate::admission::plan::AdmissionPlan {
        let local = self
            .local_path(req.path)
            .expect("request dispatched to the shard owning its path");
        let mut translated = req.clone();
        translated.path = local;
        self.broker.decide(&translated)
    }

    /// Decide phase for an **exact** ⟨rate, delay⟩ pair on a global
    /// path id — the segment-layer half of a federated admission: the
    /// pair was computed by the chain coordinator from the accumulated
    /// segment totals, and this shard only answers whether its own
    /// segment can hold it (see [`Broker::decide_exact`]).
    ///
    /// # Panics
    ///
    /// As [`BrokerShard::request`], when the path is not served here.
    #[must_use]
    pub fn decide_exact(
        &self,
        flow: FlowId,
        profile: &vtrs::profile::TrafficProfile,
        rate: Rate,
        delay: Nanos,
        path: PathId,
    ) -> AdmissionPlan {
        let local = self
            .local_path(path)
            .expect("federated admission dispatched to the shard owning its path");
        self.broker.decide_exact(flow, profile, rate, delay, local)
    }

    /// The static segment cost of a served global path: its hop count
    /// `h` and fixed delay `D^tot` — what a broker-to-broker PEER-DEC
    /// query accumulates as it travels down a federated chain. `None`
    /// when the path is not served here.
    #[must_use]
    pub fn path_cost(&self, path: PathId) -> Option<(u64, Nanos)> {
        let local = self.local_path(path)?;
        let spec = &self.broker.paths().path(local).spec;
        Some((spec.h(), spec.d_tot()))
    }

    /// Commit phase for a plan decided by this shard — see
    /// [`Broker::commit`]. The plan already carries the shard-local
    /// path id.
    ///
    /// # Errors
    ///
    /// Returns the plan's (re-validated) [`Reject`] cause.
    pub fn commit(
        &mut self,
        now: Time,
        plan: &crate::admission::plan::AdmissionPlan,
    ) -> Result<Reservation, Reject> {
        self.broker.commit(now, plan)
    }

    /// Replays a request whose `path` field is already **shard-local**
    /// (the form a committed [`crate::AdmissionPlan`] carries, and
    /// therefore the form a commit journal records). Runs the full
    /// monolithic decide+commit against current state — the
    /// serial-equivalence property of the two-phase pipeline is exactly
    /// what makes this the correct recovery replay.
    ///
    /// # Errors
    ///
    /// Returns the broker's [`Reject`] cause; a replayed rejection is
    /// the expected outcome for journaled rejects and is not an error
    /// of the replay itself.
    pub fn replay_request(&mut self, now: Time, req: &FlowRequest) -> Result<Reservation, Reject> {
        self.broker.request(now, req)
    }

    /// Releases a flow admitted by this shard.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownFlow`] when the id was never admitted here.
    pub fn release(&mut self, now: Time, flow: FlowId) -> Result<Option<Reservation>, UnknownFlow> {
        self.broker.release(now, flow)
    }

    /// Edge feedback for a macroflow owned by this shard.
    pub fn edge_buffer_empty(&mut self, now: Time, macroflow: FlowId) -> qos_units::Rate {
        self.broker.edge_buffer_empty(now, macroflow)
    }

    /// Contingency timer processing (explicit time, as ever).
    pub fn tick(&mut self, now: Time) -> Vec<(FlowId, qos_units::Rate)> {
        self.broker.tick(now)
    }

    /// Flips a link's operational state (see [`Broker::set_link_state`]).
    /// Link references are global: every shard imports the full domain
    /// topology, so `LinkRef(l)` mirrors `netsim::LinkId(l)` here as in
    /// the monolithic broker. Paths of other shards never cross this
    /// shard's links (the partition is link-disjoint), so the epoch
    /// bumps stay local to this shard's rows.
    ///
    /// # Panics
    ///
    /// Panics on a link reference outside the domain topology.
    pub fn set_link_state(&mut self, link: crate::mib::LinkRef, up: bool) {
        self.broker.set_link_state(link, up);
    }

    /// Earliest pending contingency expiry across this shard's
    /// macroflows, for callers deciding whether a [`BrokerShard::tick`]
    /// is due (see [`Broker::next_expiry`]).
    #[must_use]
    pub fn next_expiry(&self) -> Option<Time> {
        self.broker.next_expiry()
    }

    /// Read access to the underlying broker (stats, MIBs).
    #[must_use]
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// This shard's admission counters (convenience passthrough).
    #[must_use]
    pub fn stats(&self) -> &crate::broker::BrokerStats {
        self.broker.stats()
    }

    /// Exports this shard's broker state as a snapshot image — see
    /// [`Broker::export_image`].
    #[must_use]
    pub fn export_image(&self) -> crate::persist::BrokerImage {
        self.broker.export_image()
    }

    /// Restores this shard's broker state from a snapshot image taken
    /// by a shard built over the same topology, routes, and
    /// configuration — see [`Broker::restore_image`].
    ///
    /// # Panics
    ///
    /// As [`Broker::restore_image`], on a dimensionally mismatched
    /// image.
    pub fn restore_image(&mut self, image: &crate::persist::BrokerImage) {
        self.broker.restore_image(image);
    }

    /// The global path ids served here (unordered).
    pub fn served_paths(&self) -> impl Iterator<Item = PathId> + '_ {
        self.paths
            .iter()
            .enumerate()
            .filter(|(_, local)| local.is_some())
            .map(|(row, _)| PathId(row as u64))
    }

    /// Builds a [`FastDecideHandle`] over this shard's current path set:
    /// a lock-free decide front end sharing the shard's summary cells
    /// and epoch lane via `Arc`, plus an immutable snapshot of each
    /// served path's static characterization. Build it **after** all
    /// routes are registered; paths registered later simply fall outside
    /// the handle's view and take the locked path.
    #[must_use]
    pub fn fast_handle(&self) -> FastDecideHandle {
        let paths = self
            .paths
            .iter()
            .map(|local| {
                local.map(|local| {
                    let row = usize::try_from(local.0).expect("local path rows fit usize");
                    let spec = self.broker.paths().path(local).spec.clone();
                    let rate_only = !spec.has_delay_hops();
                    FastPathInfo {
                        local,
                        row,
                        spec,
                        rate_only,
                    }
                })
            })
            .collect();
        FastDecideHandle {
            summaries: self.broker.summary_table(),
            epochs: self.broker.epoch_lane(),
            paths,
            hits: AtomicU64::new(0),
            seqlock_retries: AtomicU64::new(0),
        }
    }
}

/// Static per-path snapshot a [`FastDecideHandle`] decides from: the
/// shard-local id plus the immutable hop characterization. Everything
/// dynamic (residual bandwidth, epoch) comes out of the shared atomic
/// cells at decide time.
#[derive(Debug)]
struct FastPathInfo {
    local: PathId,
    row: usize,
    spec: PathSpec,
    /// Rate-based hops only — the O(1) §3.1 test applies and the whole
    /// decide needs nothing but `(epoch, C_res)` from the summary cell.
    rate_only: bool,
}

/// A lock-free decide front end for one [`BrokerShard`].
///
/// Holds `Arc` views of the shard's seqlock summary cells
/// ([`SummaryTable`]) and path epoch lane ([`EpochLane`]) plus immutable
/// static path info, so the **fast path acquires no lock at all**: a
/// per-flow request on a rate-only path whose summary cell is fresh is
/// decided entirely from atomic loads and the static spec.
///
/// Everything else returns `None` and must take the ordinary locked
/// decide (class joins need the macroflow registry, delay paths the
/// Figure-4 scan, stale cells a recompute from link rows). Skipped
/// global preconditions (duplicate-flow, policy) are safe to omit here
/// because [`Broker::commit`] re-checks them live under the write lock;
/// a stale epoch stamp likewise only causes a commit-time re-decide.
/// Serial equivalence is therefore preserved — the commit phase is the
/// arbiter, exactly as for plans decided under the read lock.
#[derive(Debug)]
pub struct FastDecideHandle {
    summaries: Arc<SummaryTable>,
    epochs: Arc<EpochLane>,
    /// Global path row → static info, same dense translation as the
    /// owning shard's table.
    paths: Vec<Option<FastPathInfo>>,
    hits: AtomicU64,
    seqlock_retries: AtomicU64,
}

impl FastDecideHandle {
    /// Starts a decide batch for one `(path, service)` group: probes
    /// the path's summary cell **once** and, when the fast path
    /// applies, returns a context that decides any number of requests
    /// for that path against the one snapshot. `None` means the group
    /// must be decided under the shard lock (class service, delay
    /// path, unknown path, stale/empty/torn cell).
    #[must_use]
    pub fn begin(&self, path: PathId, service: ServiceKind) -> Option<FastGroup<'_>> {
        if !matches!(service, ServiceKind::PerFlow) {
            return None;
        }
        let info = self
            .paths
            .get(usize::try_from(path.0).ok()?)?
            .as_ref()
            .filter(|info| info.rate_only)?;
        let live = self.epochs.load(info.row)?;
        let cell = self.summaries.cell(info.row)?;
        let (epoch, c_res) = cell.read_rate(&self.seqlock_retries)?;
        // A stale cell means bookkeeping moved since the last publish;
        // fall back to the locked decide, which recomputes and
        // republishes. (Deciding from the stale snapshot would also be
        // *safe* — commit re-decides on the epoch mismatch — but it
        // would turn every request of the group into a plan retry.)
        (epoch == live).then_some(FastGroup {
            handle: self,
            local: info.local,
            spec: &info.spec,
            epoch,
            c_res,
        })
    }

    /// Lock-free decide for a single request; `None` when the fast
    /// path does not apply (caller takes the locked path).
    #[must_use]
    pub fn decide(&self, req: &FlowRequest) -> Option<AdmissionPlan> {
        self.begin(req.path, req.service).map(|g| g.decide(req))
    }

    /// Summary hits served lock-free through this handle.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Torn seqlock snapshots this handle's probes have retried.
    #[must_use]
    pub fn seqlock_retries(&self) -> u64 {
        self.seqlock_retries.load(Ordering::Relaxed)
    }
}

/// One fresh summary snapshot amortized over a batch of same-path
/// requests (see [`FastDecideHandle::begin`]).
#[derive(Debug)]
pub struct FastGroup<'a> {
    handle: &'a FastDecideHandle,
    local: PathId,
    spec: &'a PathSpec,
    epoch: u64,
    c_res: Rate,
}

impl FastGroup<'_> {
    /// Decides one request of the group against the snapshot: the O(1)
    /// §3.1 test on the static spec and the snapshotted `C_res`. The
    /// returned plan carries the shard-local path id and the snapshot's
    /// epoch stamp, exactly as a locked [`BrokerShard::decide`] would.
    #[must_use]
    pub fn decide(&self, req: &FlowRequest) -> AdmissionPlan {
        self.handle.hits.fetch_add(1, Ordering::Relaxed);
        let verdict = rate_based::admit_with_spec(&req.profile, req.d_req, self.spec, self.c_res)
            .map(|range| PlanAction::PerFlow {
                rate: range.low,
                delay: Nanos::ZERO,
            });
        let mut request = req.clone();
        request.path = self.local;
        AdmissionPlan {
            request,
            intent: PlanIntent::Admission,
            epoch: self.epoch,
            verdict,
        }
    }
}

/// Assigns route indices to shards. Routes confined to a pod go to shard
/// `pod % shards`; routes without pod annotation all go to shard 0 (a
/// single unsharded broker is always correct).
#[must_use]
pub fn plan_shards(topo: &Topology, routes: &[Vec<LinkId>], shards: usize) -> Vec<Vec<usize>> {
    let shards = shards.max(1);
    let mut plan = vec![Vec::new(); shards];
    for (i, route) in routes.iter().enumerate() {
        let shard = topo.route_pod(route).map_or(0, |pod| pod % shards);
        plan[shard].push(i);
    }
    plan
}

/// Partitions a routed domain into independent [`BrokerShard`]s, one per
/// plan entry, assigning route `i` the global id `PathId(i)`.
///
/// # Panics
///
/// Panics when two different shards would share a link — the partition
/// must be link-disjoint for lock-free shard ownership to be sound.
#[must_use]
pub fn build_shards(
    topo: &Topology,
    config: &BrokerConfig,
    routes: &[Vec<LinkId>],
    shards: usize,
) -> Vec<BrokerShard> {
    let plan = plan_shards(topo, routes, shards);
    let mut link_owner: HashMap<LinkId, usize> = HashMap::new();
    for (shard, members) in plan.iter().enumerate() {
        for &i in members {
            for l in &routes[i] {
                let owner = *link_owner.entry(*l).or_insert(shard);
                assert!(
                    owner == shard,
                    "link {l:?} appears in shards {owner} and {shard}: partition not link-disjoint"
                );
            }
        }
    }
    let total = plan.len();
    plan.iter()
        .enumerate()
        .map(|(shard, members)| {
            let shard_routes: Vec<(PathId, Vec<LinkId>)> = members
                .iter()
                .map(|&i| (PathId(i as u64), routes[i].clone()))
                .collect();
            BrokerShard::new(shard, total, topo, config, &shard_routes)
        })
        .collect()
}

/// Maps a macroflow id back to the shard that minted it, inverting the
/// block partition of [`Broker::set_macro_shard`]. Returns `None` for
/// ids outside the macroflow space (i.e. ordinary microflow ids).
#[must_use]
pub fn shard_of_macroflow(id: FlowId, shards: usize) -> Option<usize> {
    const MACRO_BASE: u64 = 1 << 63;
    if id.0 < MACRO_BASE || shards == 0 {
        return None;
    }
    let block = (1u64 << 63) / shards as u64;
    Some((((id.0 - MACRO_BASE) / block) as usize).min(shards - 1))
}

/// Maps a global path id to its owning shard under [`plan_shards`]'
/// assignment, without building anything.
#[must_use]
pub fn shard_of_path(
    topo: &Topology,
    routes: &[Vec<LinkId>],
    shards: usize,
    path: PathId,
) -> usize {
    let shards = shards.max(1);
    routes
        .get(path.0 as usize)
        .and_then(|r| topo.route_pod(r))
        .map_or(0, |pod| pod % shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signaling::ServiceKind;
    use netsim::topology::SchedulerSpec;
    use qos_units::{Bits, Nanos, Rate};
    use vtrs::profile::TrafficProfile;

    fn type0ish() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bytes(2_000),
            Rate::from_bps(16_000),
            Rate::from_bps(64_000),
            Bits::from_bytes(125),
        )
        .expect("valid profile")
    }

    fn pod_domain(pods: usize) -> (Topology, Vec<Vec<LinkId>>) {
        Topology::pod_chains(
            pods,
            5,
            Rate::from_bps(1_500_000),
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        )
    }

    #[test]
    fn broker_shard_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        // Sync matters too: the server's readers run the decide phase
        // through a shared reference while workers serialize commits.
        fn assert_sync<T: Sync>() {}
        assert_send::<BrokerShard>();
        assert_send::<Broker>();
        assert_sync::<BrokerShard>();
        assert_sync::<Broker>();
    }

    #[test]
    fn plan_is_link_disjoint_and_covers_all_routes() {
        let (topo, routes) = pod_domain(8);
        let plan = plan_shards(&topo, &routes, 3);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.iter().map(Vec::len).sum::<usize>(), 8);
        // Pod p lands on shard p % 3.
        for (shard, members) in plan.iter().enumerate() {
            for &i in members {
                assert_eq!(i % 3, shard);
            }
        }
        let shards = build_shards(&topo, &BrokerConfig::default(), &routes, 3);
        assert_eq!(shards.len(), 3);
        for s in &shards {
            for p in s.served_paths() {
                assert_eq!(shard_of_path(&topo, &routes, 3, p), s.shard());
            }
        }
    }

    #[test]
    fn sharded_decisions_match_a_serial_broker() {
        let (topo, routes) = pod_domain(4);
        let mut shards = build_shards(&topo, &BrokerConfig::default(), &routes, 2);

        let mut serial = Broker::new(topo.clone(), BrokerConfig::default());
        let serial_pids: Vec<PathId> = routes.iter().map(|r| serial.register_route(r)).collect();

        // Saturate every pod through the sharded API and serially;
        // decisions must agree flow for flow.
        let mut id = 0u64;
        for (i, _) in routes.iter().enumerate() {
            let global = PathId(i as u64);
            let shard = shard_of_path(&topo, &routes, 2, global);
            loop {
                let req = FlowRequest {
                    flow: FlowId(id),
                    profile: type0ish(),
                    d_req: Nanos::from_millis(2_440),
                    service: ServiceKind::PerFlow,
                    path: global,
                };
                id += 1;
                let sharded = shards[shard].request(Time::ZERO, &req);
                let mut serial_req = req.clone();
                serial_req.path = serial_pids[i];
                let reference = serial.request(Time::ZERO, &serial_req);
                assert_eq!(sharded, reference, "flow {} diverged", req.flow);
                if sharded.is_err() {
                    break;
                }
            }
        }
        let admitted: u64 = shards.iter().map(|s| s.broker().stats().admitted).sum();
        assert_eq!(admitted, serial.stats().admitted);
        assert!(admitted > 0);
    }

    #[test]
    fn macro_namespaces_do_not_collide() {
        let (topo, routes) = pod_domain(2);
        let config = BrokerConfig {
            classes: vec![crate::admission::aggregate::ClassSpec {
                id: 1,
                d_req: Nanos::from_secs(20),
                cd: Nanos::from_millis(100),
            }],
            ..BrokerConfig::default()
        };
        let mut shards = build_shards(&topo, &config, &routes, 2);
        let mk = |flow: u64, path: u64| FlowRequest {
            flow: FlowId(flow),
            profile: type0ish(),
            d_req: Nanos::from_secs(20),
            service: ServiceKind::Class(1),
            path: PathId(path),
        };
        let a = shards[0].request(Time::ZERO, &mk(1, 0)).unwrap();
        let b = shards[1].request(Time::ZERO, &mk(2, 1)).unwrap();
        assert_ne!(a.conditioned_flow, b.conditioned_flow);
    }
}
