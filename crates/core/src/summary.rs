//! Seqlock-style atomic path-summary cells — the lock-free fast path
//! for the read-only decide phase.
//!
//! PR 3 cached one [`PathSummary`] per path behind a `RwLock` slot; a
//! summary *hit* still paid a reader-lock acquisition per decide. This
//! module replaces the slot with a **seqlock cell**: one sequence word
//! plus a fixed block of payload words, all plain `AtomicU64`s (no
//! `unsafe` anywhere — the crate forbids it).
//!
//! # Protocol
//!
//! Writers (decide-phase cache misses racing to publish a freshly
//! computed summary, and the restore path invalidating state):
//!
//! 1. CAS the sequence word from an *even* value `s` to the *odd*
//!    `s + 1` with `AcqRel`. Losing the CAS means another publisher is
//!    mid-flight — the loser simply skips publication and uses its own
//!    stack-local summary, preserving the lazy-fill semantics of the
//!    old cache.
//! 2. Store every payload word with `Relaxed` ordering. The acquire
//!    half of the CAS keeps these stores from moving above it.
//! 3. Seal with a `Release` store of `s + 2` (even again), ordering
//!    the payload stores before the new sequence value.
//!
//! Readers:
//!
//! 1. Load the sequence word with `Acquire`; an odd value means a
//!    writer is mid-flight — retry.
//! 2. Load the payload words with `Relaxed`.
//! 3. Issue an `Acquire` fence, then re-load the sequence word with
//!    `Relaxed`. If both sequence reads agree (and are even) the
//!    payload snapshot is consistent: the fence orders the payload
//!    loads before the second sequence load, so any concurrent writer
//!    would have changed the sequence word we observe.
//!
//! Torn reads are counted (the `bb_seqlock_retries_total` metric) and
//! retried a bounded number of times before degrading to a cache miss.
//!
//! # Why staleness is safe
//!
//! A published cell always carries an internally consistent
//! `(epoch, summary-at-that-epoch)` pair — possibly *stale*, never
//! *mixed*. Path epochs only ever increase, so a stale epoch can never
//! be confused with a current one (no ABA). The commit phase is the
//! arbiter: it revalidates the plan's epoch against the live epoch
//! lane under the shard write lock and re-decides on mismatch, so the
//! worst a stale cell can cause is a `plan_retry`, never an incorrect
//! booking.
//!
//! # Payload layout
//!
//! | word(s) | contents |
//! |---|---|
//! | 0 | path epoch at computation time |
//! | 1 | `C_res^P` in bits/s |
//! | 2 | flags (`bit0` VALID, `bit1` HAS_DELAY) \| breakpoint count `M << 8` |
//! | 3 | min delay-link capacity in bits/s |
//! | 4 .. 4+M | Figure-4 breakpoints `d^k`, nanoseconds |
//! | 10 .. 10+2M | `S̄(d^k)` scaled bits, `i128` split into (hi, lo) words |
//!
//! Delay summaries with more than [`MAX_BREAKPOINTS`] distinct delay
//! values do not fit the fixed payload; [`SummaryCell::try_publish`]
//! refuses them and every probe recomputes from the link rows — still
//! without taking any lock.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::mib::{DelaySummary, PathSummary};
use qos_units::{Nanos, Rate};

/// Maximum number of Figure-4 breakpoints a cell can hold inline.
///
/// Six covers every distinct-delay union seen in the paper's scenarios
/// (the Figure-8 topology reserves at most a handful of distinct delay
/// values per path); larger summaries fall back to per-probe
/// recomputation.
pub const MAX_BREAKPOINTS: usize = 6;

/// Fixed payload size: epoch, residual, flags, min-capacity, `M`
/// breakpoints and `M` two-word `i128` residual-service values.
const PAYLOAD_WORDS: usize = 4 + MAX_BREAKPOINTS + 2 * MAX_BREAKPOINTS;

/// How many torn snapshots a reader tolerates before reporting a miss.
/// Writers publish in a handful of instructions, so anything beyond a
/// couple of retries means pathological contention; degrading to a
/// miss (recompute from link rows) keeps the reader wait-free.
const READ_RETRY_LIMIT: u32 = 8;

const FLAG_VALID: u64 = 1;
const FLAG_DELAY: u64 = 1 << 1;
const COUNT_SHIFT: u32 = 8;

const WORD_EPOCH: usize = 0;
const WORD_C_RES: usize = 1;
const WORD_FLAGS: usize = 2;
const WORD_MIN_CAP: usize = 3;
const WORD_BREAKPOINTS: usize = 4;
const WORD_S_BAR: usize = WORD_BREAKPOINTS + MAX_BREAKPOINTS;

/// One seqlock cell holding a [`PathSummary`] snapshot.
#[derive(Debug)]
pub struct SummaryCell {
    /// Sequence word: even = stable, odd = writer mid-flight.
    seq: AtomicU64,
    /// Fixed payload block (see module docs for the layout).
    words: [AtomicU64; PAYLOAD_WORDS],
}

impl Default for SummaryCell {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for SummaryCell {
    /// Relaxed word-by-word copy. Only meaningful on quiescent cells
    /// (table growth under `&mut Broker`, where no publisher can run);
    /// concurrent readers of the source cell are unaffected.
    fn clone(&self) -> Self {
        Self {
            seq: AtomicU64::new(self.seq.load(Ordering::Relaxed)),
            words: std::array::from_fn(|i| AtomicU64::new(self.words[i].load(Ordering::Relaxed))),
        }
    }
}

impl SummaryCell {
    /// An empty (never published) cell.
    #[must_use]
    pub fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Whether `summary` fits the fixed payload block.
    #[must_use]
    pub fn encodable(summary: &PathSummary) -> bool {
        summary
            .delay
            .as_ref()
            .is_none_or(|d| d.breakpoints.len() <= MAX_BREAKPOINTS)
    }

    /// Attempts to publish `summary` into the cell.
    ///
    /// Returns `false` without touching the cell when the summary does
    /// not fit ([`Self::encodable`]) or when another publisher holds
    /// the cell (CAS loss) — the caller keeps using its stack-local
    /// summary either way.
    pub fn try_publish(&self, summary: &PathSummary) -> bool {
        if !Self::encodable(summary) {
            return false;
        }
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 == 1 {
            return false;
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        self.words[WORD_EPOCH].store(summary.epoch, Ordering::Relaxed);
        self.words[WORD_C_RES].store(summary.c_res.as_bps(), Ordering::Relaxed);
        let mut flags = FLAG_VALID;
        if let Some(delay) = &summary.delay {
            flags |= FLAG_DELAY | ((delay.breakpoints.len() as u64) << COUNT_SHIFT);
            self.words[WORD_MIN_CAP].store(delay.min_capacity.as_bps(), Ordering::Relaxed);
            for (k, bp) in delay.breakpoints.iter().enumerate() {
                self.words[WORD_BREAKPOINTS + k].store(bp.as_nanos(), Ordering::Relaxed);
            }
            for (k, s_bar) in delay.s_bar.iter().enumerate() {
                let raw = *s_bar as u128;
                self.words[WORD_S_BAR + 2 * k].store((raw >> 64) as u64, Ordering::Relaxed);
                self.words[WORD_S_BAR + 2 * k + 1].store(raw as u64, Ordering::Relaxed);
            }
        } else {
            self.words[WORD_MIN_CAP].store(0, Ordering::Relaxed);
        }
        self.words[WORD_FLAGS].store(flags, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
        true
    }

    /// Seqlock-writes an *invalid* payload, forcing every subsequent
    /// probe to miss. Used when restored state replaces the MIBs.
    pub fn invalidate(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 == 1 {
            // A publisher is mid-flight; it will seal a payload computed
            // from pre-restore state, but restore bumps no epochs and
            // callers revalidate epochs anyway. Only reachable when the
            // cell is shared and the restore races a decide, which the
            // server never does (recovery runs before serving).
            return;
        }
        if self
            .seq
            .compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.words[WORD_FLAGS].store(0, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
    }

    /// One snapshot attempt: `None` when torn or a writer is mid-flight.
    fn snapshot(&self) -> Option<[u64; PAYLOAD_WORDS]> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let words = std::array::from_fn(|i| self.words[i].load(Ordering::Relaxed));
        fence(Ordering::Acquire);
        let s2 = self.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some(words)
    }

    /// Reads the published summary, retrying torn snapshots up to a
    /// bound. Every torn snapshot increments `retries`. Returns `None`
    /// when the cell was never published, was invalidated, or stayed
    /// torn past the retry bound (all treated as cache misses).
    pub fn read(&self, retries: &AtomicU64) -> Option<PathSummary> {
        let words = self.stable_snapshot(retries)?;
        let flags = words[WORD_FLAGS];
        if flags & FLAG_VALID == 0 {
            return None;
        }
        let delay = (flags & FLAG_DELAY != 0).then(|| {
            let m = (flags >> COUNT_SHIFT) as usize;
            DelaySummary {
                breakpoints: (0..m)
                    .map(|k| Nanos::from_nanos(words[WORD_BREAKPOINTS + k]))
                    .collect(),
                s_bar: (0..m)
                    .map(|k| {
                        let hi = words[WORD_S_BAR + 2 * k] as u128;
                        let lo = words[WORD_S_BAR + 2 * k + 1] as u128;
                        ((hi << 64) | lo) as i128
                    })
                    .collect(),
                min_capacity: Rate::from_bps(words[WORD_MIN_CAP]),
            }
        });
        Some(PathSummary {
            epoch: words[WORD_EPOCH],
            c_res: Rate::from_bps(words[WORD_C_RES]),
            delay,
        })
    }

    /// Allocation-free probe of the rate dimension only: the published
    /// `(epoch, C_res^P)` pair for a cell holding a **purely
    /// rate-based** summary. Returns `None` on a miss *or* when the
    /// cell carries a delay summary (callers wanting delay state must
    /// use [`Self::read`]).
    pub fn read_rate(&self, retries: &AtomicU64) -> Option<(u64, Rate)> {
        let words = self.stable_snapshot(retries)?;
        let flags = words[WORD_FLAGS];
        if flags & FLAG_VALID == 0 || flags & FLAG_DELAY != 0 {
            return None;
        }
        Some((words[WORD_EPOCH], Rate::from_bps(words[WORD_C_RES])))
    }

    fn stable_snapshot(&self, retries: &AtomicU64) -> Option<[u64; PAYLOAD_WORDS]> {
        let mut attempts = 0;
        loop {
            if let Some(words) = self.snapshot() {
                return Some(words);
            }
            retries.fetch_add(1, Ordering::Relaxed);
            attempts += 1;
            if attempts >= READ_RETRY_LIMIT {
                return None;
            }
            std::hint::spin_loop();
        }
    }
}

/// Dense table of one [`SummaryCell`] per path row, shared via `Arc`
/// between the broker (publisher) and the lock-free decide handles
/// (readers).
#[derive(Debug, Default, Clone)]
pub struct SummaryTable {
    cells: Vec<SummaryCell>,
}

impl SummaryTable {
    /// Number of path rows the table covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the table covers no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Grows the table to cover `rows` path rows (no-op when already
    /// large enough). Called under `&mut Broker` during registration.
    pub(crate) fn grow(&mut self, rows: usize) {
        while self.cells.len() < rows {
            self.cells.push(SummaryCell::new());
        }
    }

    /// The cell for dense path row `row`.
    #[must_use]
    pub fn cell(&self, row: usize) -> Option<&SummaryCell> {
        self.cells.get(row)
    }

    /// Invalidates every cell (restore path).
    pub fn invalidate_all(&self) {
        for cell in &self.cells {
            cell.invalidate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate_summary(epoch: u64, bps: u64) -> PathSummary {
        PathSummary {
            epoch,
            c_res: Rate::from_bps(bps),
            delay: None,
        }
    }

    fn delay_summary(epoch: u64, m: usize) -> PathSummary {
        PathSummary {
            epoch,
            c_res: Rate::from_bps(1_000 + epoch),
            delay: Some(DelaySummary {
                breakpoints: (1..=m as u64).map(Nanos::from_millis).collect(),
                s_bar: (0..m as i128).map(|k| (k - 1) * 1_000_000_000).collect(),
                min_capacity: Rate::from_mbps(10),
            }),
        }
    }

    #[test]
    fn empty_cell_reads_none() {
        let cell = SummaryCell::new();
        let retries = AtomicU64::new(0);
        assert_eq!(cell.read(&retries), None);
        assert_eq!(cell.read_rate(&retries), None);
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn publish_then_read_roundtrips_rate_only() {
        let cell = SummaryCell::new();
        let retries = AtomicU64::new(0);
        let s = rate_summary(7, 123_456);
        assert!(cell.try_publish(&s));
        assert_eq!(cell.read(&retries), Some(s));
        assert_eq!(cell.read_rate(&retries), Some((7, Rate::from_bps(123_456))));
    }

    #[test]
    fn publish_then_read_roundtrips_delay_including_negative_s_bar() {
        let cell = SummaryCell::new();
        let retries = AtomicU64::new(0);
        let s = delay_summary(42, MAX_BREAKPOINTS);
        assert!(cell.try_publish(&s));
        assert_eq!(cell.read(&retries), Some(s));
        // Rate-only probe refuses delay cells.
        assert_eq!(cell.read_rate(&retries), None);
    }

    #[test]
    fn oversized_delay_summary_is_refused() {
        let cell = SummaryCell::new();
        let retries = AtomicU64::new(0);
        let s = delay_summary(1, MAX_BREAKPOINTS + 1);
        assert!(!SummaryCell::encodable(&s));
        assert!(!cell.try_publish(&s));
        assert_eq!(cell.read(&retries), None);
    }

    #[test]
    fn republish_overwrites_and_invalidate_clears() {
        let cell = SummaryCell::new();
        let retries = AtomicU64::new(0);
        assert!(cell.try_publish(&rate_summary(1, 100)));
        assert!(cell.try_publish(&rate_summary(2, 200)));
        assert_eq!(cell.read(&retries), Some(rate_summary(2, 200)));
        cell.invalidate();
        assert_eq!(cell.read(&retries), None);
        // A cell can be republished after invalidation.
        assert!(cell.try_publish(&rate_summary(3, 300)));
        assert_eq!(cell.read(&retries), Some(rate_summary(3, 300)));
    }

    #[test]
    fn table_grows_and_invalidates() {
        let mut table = SummaryTable::default();
        assert!(table.is_empty());
        table.grow(3);
        assert_eq!(table.len(), 3);
        let retries = AtomicU64::new(0);
        assert!(table.cell(0).unwrap().try_publish(&rate_summary(1, 10)));
        assert!(table.cell(2).unwrap().try_publish(&rate_summary(1, 30)));
        assert!(table.cell(3).is_none());
        table.invalidate_all();
        for row in 0..3 {
            assert_eq!(table.cell(row).unwrap().read(&retries), None);
        }
    }
}
