//! A two-level (hierarchical) bandwidth broker — the paper's first
//! future-work item, prototyped.
//!
//! §1/§2 of the paper note that a single centralized BB can itself become
//! the bottleneck of a large domain, and propose "a distributed (or
//! hierarchical) architecture consisting of multiple BBs" as future
//! work. This module implements the natural two-level split for per-flow
//! guaranteed services over **rate-based** segments:
//!
//! * the domain's path is partitioned into contiguous **segments**, each
//!   owned by a child [`crate::broker::Broker`] that holds that
//!   segment's full node and path QoS state;
//! * the **parent** holds only O(1) *summaries* per segment — hop count,
//!   `D_tot`, residual bandwidth — refreshed on demand, never per-flow
//!   state;
//! * admission runs at the parent: the segment summaries concatenate into
//!   exactly the end-to-end parameters of the §3.1 formula, the parent
//!   computes the minimal feasible rate, and drives the two-phase
//!   decide-all-then-commit protocol across the children. A child's
//!   refusal (its summary may be stale) aborts before any booking.
//!
//! The plan machinery itself lives in the domain-agnostic
//! [`crate::segment`] layer — [`SegmentChain`] drives the phases over
//! any [`crate::segment::SegmentAdmitter`], and this parent is now the
//! thin in-process instantiation of it over [`LocalSegment`] children.
//! Remote peer domains drive the same phases over COPS (the server's
//! broker-to-broker federation); the hierarchy keeps its historical
//! role as the single-process reference for that protocol.
//!
//! The result keeps the architecture's defining property at every level:
//! core routers hold no QoS state, and now no single broker holds the
//! whole domain's flow table either. Each child also keeps the flat
//! broker's dense-store discipline: the parent addresses children with
//! wire-level flow and path ids, which every child interns once at its
//! own boundary before running the handle-based pipeline. Delay-based
//! segments would additionally need residual-service summaries (the
//! `S^k` vectors); that refinement is left out of this prototype, as the
//! paper leaves the whole direction to future work.

use netsim::topology::{LinkId, Topology};
use qos_units::{Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use crate::broker::UnknownFlow;
use crate::segment::{LocalSegment, SegmentChain};
use crate::signaling::Reject;

pub use crate::segment::{ChainStats as HierarchyStats, SegmentSummary};

/// The parent broker of a two-level hierarchy: a [`SegmentChain`] of
/// in-process [`LocalSegment`] children.
#[derive(Debug)]
pub struct HierarchicalBroker {
    chain: SegmentChain<LocalSegment>,
}

impl HierarchicalBroker {
    /// Builds the hierarchy: one child broker per `(topology, route)`
    /// segment, in path order. Segments must be rate-based-only in this
    /// prototype.
    ///
    /// # Panics
    ///
    /// Panics if a segment contains delay-based hops (unsupported here)
    /// or an empty route.
    #[must_use]
    pub fn new(segments: Vec<(Topology, Vec<LinkId>)>) -> Self {
        let segments = segments
            .into_iter()
            .map(|(topo, route)| LocalSegment::new(topo, &route))
            .collect();
        HierarchicalBroker {
            chain: SegmentChain::new(segments),
        }
    }

    /// Number of segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.chain.segment_count()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &HierarchyStats {
        self.chain.stats()
    }

    /// The parent's current per-segment summaries (what it would cache
    /// and refresh in a deployment).
    #[must_use]
    pub fn summaries(&self) -> Vec<SegmentSummary> {
        self.chain.summaries()
    }

    /// Per-flow count at a child — the parent never stores these.
    #[must_use]
    pub fn child_flow_count(&self, segment: usize) -> usize {
        self.chain.segments()[segment].broker().flows().len()
    }

    /// End-to-end admission: concatenate the segment summaries, compute
    /// the §3.1 minimal rate, decide it on every segment, and commit
    /// only when all children admit — a refusal aborts with nothing
    /// booked.
    ///
    /// # Errors
    ///
    /// * [`Reject::DelayInfeasible`] — infeasible at any rate ≤ `P`;
    /// * [`Reject::Bandwidth`] — a summary or a child refused for
    ///   capacity.
    pub fn request(
        &mut self,
        now: Time,
        flow: FlowId,
        profile: &TrafficProfile,
        d_req: Nanos,
    ) -> Result<Rate, Reject> {
        self.chain.admit(now, flow, profile, d_req)
    }

    /// Like [`HierarchicalBroker::request`], but deciding from
    /// caller-supplied (possibly cached, possibly stale) summaries — a
    /// deployment refreshes summaries periodically rather than per
    /// request, so a child may refuse at decide time and abort the
    /// admission before any segment books.
    ///
    /// # Errors
    ///
    /// As [`HierarchicalBroker::request`]; a stale-summary refusal
    /// surfaces as [`Reject::Bandwidth`], aborted at decide time before
    /// any child booked.
    pub fn request_with_summaries(
        &mut self,
        now: Time,
        flow: FlowId,
        profile: &TrafficProfile,
        d_req: Nanos,
        summaries: &[SegmentSummary],
    ) -> Result<Rate, Reject> {
        let plan = self.chain.decide(flow, profile, d_req, summaries)?;
        self.chain.commit(now, &plan)
    }

    /// Releases a flow on every segment.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownFlow`] if no segment knows the id.
    pub fn release(&mut self, now: Time, flow: FlowId) -> Result<(), UnknownFlow> {
        self.chain.release(now, flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::{SchedulerSpec, TopologyBuilder};
    use qos_units::Bits;

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    /// A chain of `hops` CsVC links as (topology, route).
    fn segment(hops: usize) -> (Topology, Vec<LinkId>) {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<_> = (0..=hops).map(|i| b.node(format!("n{i}"))).collect();
        let route = (0..hops)
            .map(|i| {
                b.link(
                    nodes[i],
                    nodes[i + 1],
                    Rate::from_bps(1_500_000),
                    Nanos::ZERO,
                    SchedulerSpec::CsVc,
                    Bits::from_bytes(1500),
                )
            })
            .collect();
        (b.build(), route)
    }

    /// The Figure-8 S1→D1 path split 3 + 2 across two children.
    fn two_level() -> HierarchicalBroker {
        HierarchicalBroker::new(vec![segment(3), segment(2)])
    }

    #[test]
    fn summaries_concatenate_to_the_flat_path() {
        let hb = two_level();
        let s = hb.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].h + s[1].h, 5);
        assert_eq!(s[0].d_tot + s[1].d_tot, Nanos::from_millis(40));
        assert_eq!(s[0].c_res, Rate::from_bps(1_500_000));
    }

    #[test]
    fn hierarchical_admission_matches_the_flat_broker() {
        // Same counts and rates as the single-broker Table-2 columns.
        for (d_ms, expected, rate) in [(2_440u64, 30u64, 50_000u64), (2_190, 27, 54_020)] {
            let mut hb = two_level();
            let mut n = 0u64;
            while let Ok(r) = hb.request(Time::ZERO, FlowId(n), &type0(), Nanos::from_millis(d_ms))
            {
                assert_eq!(r, Rate::from_bps(rate));
                n += 1;
                assert!(n <= 40, "runaway admission");
            }
            assert_eq!(n, expected, "D = {d_ms} ms");
            assert_eq!(hb.stats().admitted, expected);
            assert_eq!(hb.stats().aborts, 0);
            // The parent holds no flow state; children hold only their
            // segment's.
            assert_eq!(hb.child_flow_count(0), expected as usize);
            assert_eq!(hb.child_flow_count(1), expected as usize);
        }
    }

    #[test]
    fn release_frees_both_segments() {
        let mut hb = two_level();
        hb.request(Time::ZERO, FlowId(1), &type0(), Nanos::from_millis(2_440))
            .unwrap();
        let before = hb.summaries();
        assert_eq!(before[0].c_res, Rate::from_bps(1_450_000));
        hb.release(Time::ZERO, FlowId(1)).unwrap();
        let after = hb.summaries();
        assert_eq!(after[0].c_res, Rate::from_bps(1_500_000));
        assert_eq!(after[1].c_res, Rate::from_bps(1_500_000));
        assert!(hb.release(Time::ZERO, FlowId(1)).is_err());
    }

    #[test]
    fn child_refusal_rolls_back_cleanly() {
        let mut hb = two_level();
        // Cache summaries, then let another booking make them stale
        // (simulating concurrent control activity between refreshes).
        let stale = hb.summaries();
        let ghost = type0();
        let seg1_path = hb.chain.segment_mut(1).path();
        hb.chain
            .segment_mut(1)
            .broker_mut()
            .reserve_exact(
                Time::ZERO,
                FlowId(999),
                &ghost,
                Rate::from_bps(1_480_000),
                Nanos::ZERO,
                seg1_path,
            )
            .unwrap();
        // Deciding from the stale summaries, segment 0 admits at decide
        // but segment 1 refuses — the parent aborts before committing
        // anything, so no residue can exist.
        let err = hb
            .request_with_summaries(
                Time::ZERO,
                FlowId(1),
                &type0(),
                Nanos::from_millis(2_440),
                &stale,
            )
            .unwrap_err();
        assert_eq!(err, Reject::Bandwidth);
        assert_eq!(hb.stats().aborts, 1);
        assert_eq!(hb.child_flow_count(0), 0);
        assert_eq!(
            hb.summaries()[0].c_res,
            Rate::from_bps(1_500_000),
            "abort leaked bandwidth on segment 0"
        );
        // With fresh summaries the refusal happens at the parent, with no
        // child messages wasted.
        let msgs = hb.stats().child_messages;
        assert_eq!(
            hb.request(Time::ZERO, FlowId(2), &type0(), Nanos::from_millis(2_440)),
            Err(Reject::Bandwidth)
        );
        assert_eq!(hb.stats().child_messages, msgs);
    }

    #[test]
    fn message_cost_is_per_segment_not_per_hop() {
        let mut hb = HierarchicalBroker::new(vec![segment(10), segment(10), segment(10)]);
        hb.request(Time::ZERO, FlowId(1), &type0(), Nanos::from_secs(30))
            .unwrap();
        // 3 children × 1 reserve message — not 30 per-hop messages.
        assert_eq!(hb.stats().child_messages, 3);
    }

    #[test]
    #[should_panic(expected = "rate-based segments only")]
    fn delay_segments_are_rejected_by_the_prototype() {
        let mut b = TopologyBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let l = b.link(
            x,
            y,
            Rate::from_bps(1_500_000),
            Nanos::ZERO,
            SchedulerSpec::VtEdf,
            Bits::from_bytes(1500),
        );
        let _ = HierarchicalBroker::new(vec![(b.build(), vec![l])]);
    }
}
