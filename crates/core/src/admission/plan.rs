//! The typed output of the admission **decide** phase.
//!
//! Splitting §2.2's "admissibility test, then bookkeeping" into explicit
//! phases turns the broker into an optimistic-concurrency state machine:
//! [`crate::Broker::decide`] is `&self` — it reads the MIBs (through the
//! per-path summary cache) and produces an [`AdmissionPlan`] stamped with
//! the epoch of the path state it read; [`crate::Broker::commit`] takes
//! `&mut self`, revalidates the stamp, and either applies the plan's
//! bookkeeping verbatim or re-decides against fresh state. Many decides
//! can run concurrently against one broker; only commits serialize.

use qos_units::{Nanos, Rate};

use crate::admission::aggregate::{ClassSpec, JoinPlan};
use crate::signaling::{FlowRequest, Reject};

/// The bookkeeping a successful decide asks the commit phase to apply.
///
/// Every variant pins the concrete resource delta so commit performs no
/// admission arithmetic of its own: it re-checks freshness and writes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanAction {
    /// Install a dedicated per-flow reservation at the chosen `⟨r, d⟩`.
    PerFlow {
        /// Reserved rate `r` on every path link.
        rate: Rate,
        /// Delay parameter `d` (zero on rate-based-only paths).
        delay: Nanos,
    },
    /// Join a microflow into the `(class, path)` macroflow, creating the
    /// macroflow if none exists. The commit phase re-reads the macroflow
    /// registry — protected by the plan's epoch stamp — so the join plan
    /// needs no copied macroflow state.
    ClassJoin {
        /// The service class joined.
        class: ClassSpec,
        /// Dense row of `class` in the broker's class table, interned by
        /// decide so commit never re-hashes the wire-level class id.
        class_row: usize,
        /// Rate plan from [`crate::admission::aggregate::plan_join`]:
        /// the per-link delta is `increment + contingency`.
        join: JoinPlan,
    },
    /// Book an externally computed `⟨r, d⟩` verbatim (the child-broker
    /// half of [`crate::hierarchy`]).
    Exact {
        /// Rate to reserve on every path link.
        rate: Rate,
        /// Delay parameter at delay-based hops.
        delay: Nanos,
    },
}

impl PlanAction {
    /// Uniform bandwidth delta this action reserves on every link of the
    /// request's path.
    #[must_use]
    pub fn link_delta(&self) -> Rate {
        match self {
            PlanAction::PerFlow { rate, .. } | PlanAction::Exact { rate, .. } => *rate,
            PlanAction::ClassJoin { join, .. } => join.increment.saturating_add(join.contingency),
        }
    }
}

/// How a plan was decided — commit re-runs the *same* decision procedure
/// when the epoch stamp is stale, so the plan must remember which one
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanIntent {
    /// The full admission pipeline ([`crate::Broker::decide`]): the
    /// request's [`crate::ServiceKind`] picks the resource test.
    Admission,
    /// Validate-and-book an externally chosen pair
    /// ([`crate::Broker::decide_exact`]).
    Exact {
        /// The pair's rate.
        rate: Rate,
        /// The pair's delay parameter.
        delay: Nanos,
    },
}

/// A decided admission, ready to commit (or abort).
///
/// The plan owns everything commit needs: the original request (so a
/// stale plan can be re-decided without the caller), the epoch of the
/// path state the verdict was computed from, and the verdict itself.
#[derive(Debug, Clone)]
pub struct AdmissionPlan {
    /// The request this plan answers.
    pub request: FlowRequest,
    /// How the verdict was produced (re-run on stale commit).
    pub intent: PlanIntent,
    /// Epoch of the request's path when the verdict was computed.
    /// Commit compares it against the live epoch; a mismatch means some
    /// reservation touching this path (or a link it shares) landed in
    /// between, and the verdict can no longer be trusted.
    pub epoch: u64,
    /// The decision: bookkeeping to apply, or the rejection cause.
    pub verdict: Result<PlanAction, Reject>,
}

impl AdmissionPlan {
    /// Whether the decide phase admitted the request.
    #[must_use]
    pub fn is_admit(&self) -> bool {
        self.verdict.is_ok()
    }

    /// The rejection cause, if the decide phase refused.
    #[must_use]
    pub fn cause(&self) -> Option<Reject> {
        self.verdict.err()
    }
}
