//! Path-oriented admission for mixed rate/delay-based paths — the
//! Figure-4 algorithm (§3.2, Theorem 1).
//!
//! The search space is the rate–delay plane. Projecting the end-to-end
//! bound (eq. 7) gives `d ≤ t − Ξ/r` with
//!
//! ```text
//! t  = (D_req − D_tot + T_on) / (h − q)          (ns)
//! Ξ  = (T_on·P + (q+1)·Lmax) / (h − q)           (bits)
//! ```
//!
//! and the per-hop EDF constraints (eq. 8) restrict `r` around the
//! *distinct delay values* `d¹ < … < d^M` reserved on the path's
//! delay-based links, with `S^k` the path's minimal residual service at
//! `d^k`. The algorithm scans delay intervals `[d^{m−1}, d^m)` right to
//! left from the interval containing `t`, intersecting two rate ranges
//! per interval:
//!
//! * `R_fea` — from eq. 7 and the profile/bandwidth box constraints;
//!   both edges move left as the scan moves left;
//! * `R_del` — from eq. 8; its lower edge only grows as the scan moves
//!   left, its upper edge is interval-independent.
//!
//! The monotonicity gives Theorem 1's early exits: an empty `R_fea`, an
//! empty `R_del`, or `R_fea` entirely below `R_del` proves no interval
//! further left can work. When the intersection is non-empty and the
//! lower edge comes from `R_del`, the candidate rate is globally minimal
//! and the scan stops; otherwise it continues hoping for a smaller rate.
//!
//! **Delay-parameter assignment.** For the minimal rate the broker
//! assigns the **largest** delay the end-to-end budget allows,
//! `d = t − Ξ/r`: spending the budget at the delay hops (rather than on
//! extra rate) keeps every flow at the smallest rate the EDF links can
//! carry, and defers each flow's capacity consumption to the latest
//! horizon. Early flows share one delay value; once the residual service
//! at that horizon is exhausted, later flows slide to larger delays and
//! slightly higher rates — the §5 dynamic behind Figure 9 ("as more
//! flows are admitted, the feasible delay parameter that can be
//! allocated to a new flow becomes larger, resulting in higher reserved
//! rate"). The new flow's own-deadline constraint `S̄(d) ≥ L` is folded
//! into each interval's rate range as an extra floor on `d` (hence on
//! `r`), computed by walking the piecewise-linear residual service.
//!
//! Complexity: O(M) interval steps over the distinct delays — not the
//! flow count — matching the paper's claim; each step touches only MIB
//! aggregates. Every grant is finished with an **exact verification**
//! against the MIB (cross-multiplied integer comparisons, no rounding),
//! so a granted pair is feasible by construction.

use qos_units::ratio::u128_div_ceil;
use qos_units::{Bits, Nanos, Rate, NANOS_PER_SEC};
use vtrs::profile::TrafficProfile;

use crate::mib::{NodeMib, PathQos, PathSummary};
use crate::signaling::Reject;

/// A granted rate–delay pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateDelay {
    /// Reserved rate `r` (minimal feasible).
    pub rate: Rate,
    /// Delay parameter `d` at every delay-based hop (minimal feasible for
    /// the granted rate).
    pub delay: Nanos,
}

/// Scaled fixed-point unit: bits × 10⁹ (aligning `r[bps] · Δt[ns]` with
/// packet sizes).
fn scaled(b: Bits) -> u128 {
    u128::from(b.as_bits()) * u128::from(NANOS_PER_SEC)
}

/// Runs the Figure-4 admissibility test, returning the minimal-rate
/// feasible `⟨r, d⟩`.
///
/// # Errors
///
/// * [`Reject::DelayInfeasible`] — the requirement cannot be met at any
///   rate on this path;
/// * [`Reject::Bandwidth`] — insufficient residual bandwidth;
/// * [`Reject::Schedulability`] — bandwidth exists but no rate–delay
///   pair passes the EDF constraints.
pub fn admit(
    profile: &TrafficProfile,
    d_req: Nanos,
    path: &PathQos,
    nodes: &NodeMib,
) -> Result<RateDelay, Reject> {
    let summary = path.summarize(nodes, 0);
    admit_with_summary(profile, d_req, path, nodes, &summary)
}

/// The Figure-4 test fed from a precomputed [`PathSummary`] — the decide
/// phase's entry point. The scan itself (residual bandwidth, breakpoint
/// vector, `S̄^k`) runs entirely off the summary; the node base is still
/// consulted for the own-deadline slope walk and the final exact
/// verification of the candidate pair. The summary must describe the
/// path's current MIB state (same epoch) or the verdict may be stale.
///
/// # Errors
///
/// As [`admit`].
pub fn admit_with_summary(
    profile: &TrafficProfile,
    d_req: Nanos,
    path: &PathQos,
    nodes: &NodeMib,
    summary: &PathSummary,
) -> Result<RateDelay, Reject> {
    let dh = path.spec.delay_hops();
    if dh == 0 {
        // Pure rate-based path: §3.1 applies with d unused.
        let range = super::rate_based::admit_with_residual(profile, d_req, path, summary.c_res)?;
        return Ok(RateDelay {
            rate: range.low,
            delay: Nanos::ZERO,
        });
    }
    let delay_summary = summary
        .delay
        .as_ref()
        .expect("delay path summarized without its delay dimension");
    let q = path.spec.q();
    let t_on = profile.t_on();

    // t = (D − D_tot + T_on)/(h−q), floored (conservative).
    let budget = u128::from(d_req.as_nanos()) + u128::from(t_on.as_nanos());
    let fixed = u128::from(path.spec.d_tot().as_nanos());
    if budget <= fixed {
        return Err(Reject::DelayInfeasible);
    }
    let t_ns = u64::try_from((budget - fixed) / u128::from(dh)).expect("t fits u64");
    if t_ns == 0 {
        return Err(Reject::DelayInfeasible);
    }
    let t = Nanos::from_nanos(t_ns);

    // Ξ = (T_on·P + (q+1)·Lmax)/(h−q), scaled bits, ceiled (conservative).
    let xi = (u128::from(t_on.as_nanos()) * u128::from(profile.peak.as_bps())
        + u128::from(q + 1) * scaled(profile.l_max))
    .div_ceil(u128::from(dh));
    let l9 = scaled(profile.l_max);

    let c_res = summary.c_res;

    // d ≥ d_min0: the flow's own breakpoint must clear its packet on
    // every delay-based link (C_i·d ≥ L) — the binding link is the
    // slowest one, whose capacity the summary carries.
    let delay_links = path.delay_links(nodes);
    let d_min0 = Nanos::from_nanos(u128_div_ceil(
        l9,
        u128::from(delay_summary.min_capacity.as_bps()),
    ));
    if d_min0 >= t {
        return Err(Reject::DelayInfeasible);
    }

    // Absolute floor on the rate, independent of current load: the
    // loosest interval (d as small as d_min0 allows) still needs
    // r ≥ max(ρ, Ξ/(t − d_min0))… no load involved, so exceeding the
    // profile peak is a delay infeasibility and exceeding the residual
    // bandwidth alone is a bandwidth rejection.
    let r_abs_min = u128_div_ceil(xi, u128::from(t.as_nanos())).max(profile.rho.as_bps());
    if u128::from(r_abs_min) > u128::from(profile.peak.as_bps()) {
        return Err(Reject::DelayInfeasible);
    }
    if u128::from(r_abs_min) > u128::from(c_res.as_bps()) {
        return Err(Reject::Bandwidth);
    }

    // Breakpoints and the path's minimal residual service at each, from
    // the (pre)computed summary.
    let breakpoints = &delay_summary.breakpoints;
    let m = breakpoints.len();
    let s_bar = &delay_summary.s_bar;

    // i_start: index of the interval containing t; breakpoints[..i_start]
    // are strictly below t.
    let i_start = breakpoints.partition_point(|d| *d < t);

    // Upper rate bound from breakpoints at or beyond t (constraints
    // r·(d^k − t) + Ξ + L ≤ S^k), identical across intervals.
    let xi_l = i128::try_from(xi).expect("xi fits i128") + i128::try_from(l9).unwrap();
    let mut del_r: u128 = u128::MAX;
    for k in i_start..m {
        let slack = s_bar[k] - xi_l;
        if slack < 0 {
            // Even the loosest d cannot satisfy this breakpoint at any
            // rate — and it binds in every interval we could scan.
            return Err(Reject::Schedulability);
        }
        let gap = breakpoints[k] - t; // ≥ 0
        if gap > Nanos::ZERO {
            let bound = u128::try_from(slack).unwrap() / u128::from(gap.as_nanos());
            del_r = del_r.min(bound);
        }
        // gap == 0: satisfied for every r, no bound.
    }

    let box_hi = u128::from(profile.peak.min(c_res).as_bps());

    // Analytic scan first (O(M)): track the best (rate, delay-floor)
    // pair; the exact verification runs once, after the scan.
    let mut best: Option<(u128, Nanos)> = None;
    let l9_i = i128::try_from(l9).expect("l9 fits i128");
    // R_del's lower edge is a running maximum: entering interval i folds
    // in breakpoint i's constraint — O(1) per interval, keeping the whole
    // scan O(M) as the paper claims.
    let mut del_l: u128 = 0;
    // Scan intervals i = i_start, i_start−1, …, 0; interval i spans
    // [lo_i, hi_i) with lo_i = d^{i−1} (0 for i = 0) and hi_i = d^i
    // (∞ for i = m).
    let mut i = i_start;
    loop {
        if i < i_start {
            // Entering interval i: breakpoint d^i now lies at or above
            // any candidate d, activating its eq.-8 lower bound.
            let deficit = xi_l - s_bar[i];
            if deficit > 0 {
                let gap = t - breakpoints[i];
                let need = u128::try_from(deficit)
                    .expect("positive deficit")
                    .div_ceil(u128::from(gap.as_nanos()));
                del_l = del_l.max(need);
            }
        }
        let lo_i = if i == 0 {
            Nanos::ZERO
        } else {
            breakpoints[i - 1]
        };
        let d_lo = lo_i.max(d_min0);
        // d_min0 may clear this interval entirely — and then everything
        // to its left too.
        if i < i_start && d_min0 >= breakpoints[i] {
            break;
        }
        // Within one interval no link has a breakpoint, so each link's
        // residual service is linear there; the smallest d clearing the
        // new flow's own deadline (S_i(d) ≥ L on every link) is a
        // per-link closed form.
        let hi_cap = if i < i_start {
            breakpoints[i].min(t)
        } else {
            t
        };
        // Fast path for the own-deadline floor: if the path's minimal
        // residual service at the interval's left edge already covers the
        // packet (or no reserved class lies below the interval), d_lo
        // itself clears it; only otherwise walk the per-link slopes.
        let d_own = if i == 0 || s_bar[i - 1] >= l9_i {
            Some(d_lo)
        } else {
            own_clear_delay(&delay_links, d_lo, hi_cap, l9)
        };

        if let Some(d_eff) = d_own {
            // R_fea edges (eq. 10, with the own-deadline floor folded in).
            let fea_l_delay = u128_div_ceil(xi, u128::from((t - d_eff).as_nanos()));
            let fea_l = u128::from(profile.rho.as_bps()).max(u128::from(fea_l_delay));
            let fea_r = if i < i_start {
                box_hi.min(xi / u128::from((t - breakpoints[i]).as_nanos()))
            } else {
                box_hi
            };
            // R_del lower edge: the running maximum folded in above.
            let lo = fea_l.max(del_l);
            let hi = fea_r.min(del_r);
            if lo <= hi {
                if best.is_none_or(|(b, _)| lo < b) {
                    best = Some((lo, d_eff));
                }
                if del_l > fea_l {
                    // Theorem 1: the binding lower edge is the delay
                    // constraint set, which only tightens leftward —
                    // globally minimal.
                    break;
                }
            } else if del_l > del_r || fea_r < del_l {
                // Theorem 1: the delay constraints already exceed the
                // (monotone) upper edges; nothing to the left can work.
                break;
            }
            // An R_fea emptied only by the own-deadline floor is not
            // conclusive — capacity at earlier horizons may be free —
            // so the scan continues leftward.
        }
        if i == 0 {
            break;
        }
        i -= 1;
    }

    // Exact verification, once, on the analytically minimal candidate
    // (finish_candidate nudges the rate by a few bps if conservative
    // rounding left it a hair short).
    if let Some((lo, d_eff)) = best {
        if let Some(pair) = finish_candidate(lo, box_hi, t, xi, d_eff, profile, path, nodes, d_req)
        {
            return Ok(pair);
        }
    }
    Err(if c_res < profile.rho {
        Reject::Bandwidth
    } else {
        Reject::Schedulability
    })
}

/// The smallest `d ≥ start` (strictly below `cap`) at which every
/// delay-based link's residual service covers the new flow's packet,
/// `S_i(d) ≥ L`. Within one breakpoint interval each link's `S_i` is
/// linear with slope `C_i − Σ r_(≤ d)`, so the answer is a per-link
/// closed form; `None` when some link cannot clear before `cap`.
fn own_clear_delay(
    links: &[(&crate::mib::LinkQos, crate::mib::LinkRef)],
    start: Nanos,
    cap: Nanos,
    l9: u128,
) -> Option<Nanos> {
    let l9_i = i128::try_from(l9).expect("l9 fits i128");
    let mut d = start;
    for (link, _) in links {
        let s = link.residual_service(start);
        if s >= l9_i {
            continue;
        }
        let slope = link.capacity.saturating_sub(link.edf_active_rate(start));
        if slope.is_zero() {
            return None;
        }
        let deficit = u128::try_from(l9_i - s).expect("deficit positive");
        let step = u128_div_ceil(deficit, u128::from(slope.as_bps()));
        d = d.max(start + Nanos::from_nanos(step));
    }
    (d < cap).then_some(d)
}

/// Materializes a candidate: `d = t − ⌈Ξ/r⌉` (clamped to the interval's
/// own-deadline floor) and exact verification, nudging the rate by a few
/// bps if conservative rounding left the analytic candidate a hair short.
#[allow(clippy::too_many_arguments)]
fn finish_candidate(
    mut r_bps: u128,
    box_hi: u128,
    t: Nanos,
    xi: u128,
    d_floor: Nanos,
    profile: &TrafficProfile,
    path: &PathQos,
    nodes: &NodeMib,
    d_req: Nanos,
) -> Option<RateDelay> {
    for _ in 0..4 {
        if r_bps == 0 || r_bps > box_hi {
            return None;
        }
        let r = Rate::from_bps(u64::try_from(r_bps).expect("rate fits u64"));
        let xi_over_r = u128_div_ceil(xi, r_bps);
        let d = if t.as_nanos() > xi_over_r {
            Nanos::from_nanos(t.as_nanos() - xi_over_r).max(d_floor)
        } else {
            d_floor
        };
        if verify(profile, d_req, r, d, path, nodes) {
            return Some(RateDelay { rate: r, delay: d });
        }
        r_bps += 1;
    }
    None
}

/// Exact feasibility check of a concrete `⟨r, d⟩` against the path:
/// the end-to-end bound (eq. 7) by cross-multiplication and the per-link
/// EDF constraints (eq. 8) via [`crate::mib::LinkQos::edf_admissible`].
#[must_use]
pub fn verify(
    profile: &TrafficProfile,
    d_req: Nanos,
    r: Rate,
    d: Nanos,
    path: &PathQos,
    nodes: &NodeMib,
) -> bool {
    if r < profile.rho || r > profile.peak || r > path.residual(nodes) {
        return false;
    }
    // e2e: r·(D − D_tot − (h−q)·d + T_on) ≥ T_on·P + (q+1)·L   (scaled)
    let dh = path.spec.delay_hops();
    let q = path.spec.q();
    let lhs_budget = i128::from(d_req.as_nanos()) + i128::from(profile.t_on().as_nanos())
        - i128::from(path.spec.d_tot().as_nanos())
        - i128::from(dh) * i128::from(d.as_nanos());
    if lhs_budget < 0 {
        return false;
    }
    let rhs = u128::from(profile.t_on().as_nanos()) * u128::from(profile.peak.as_bps())
        + u128::from(q + 1) * scaled(profile.l_max);
    if u128::try_from(lhs_budget).unwrap() * u128::from(r.as_bps()) < rhs {
        return false;
    }
    // Per-hop EDF constraints on every delay-based link.
    path.delay_links(nodes)
        .iter()
        .all(|(link, _)| link.edf_admissible(r, d, profile.l_max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::{LinkQos, NodeMib, PathId, PathMib};
    use vtrs::reference::HopKind;

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    /// The Figure-8 S1→D1 mixed path: CsVC at hops 1, 2, 5; VT-EDF at
    /// hops 3, 4. All 1.5 Mb/s, Ψ = 8 ms, π = 0.
    fn fixture() -> (NodeMib, PathMib, PathId) {
        let mut nodes = NodeMib::new();
        let kinds = [
            HopKind::RateBased,
            HopKind::RateBased,
            HopKind::DelayBased,
            HopKind::DelayBased,
            HopKind::RateBased,
        ];
        let refs: Vec<_> = kinds
            .iter()
            .map(|k| {
                nodes.add_link(LinkQos::new(
                    Rate::from_bps(1_500_000),
                    *k,
                    Nanos::from_millis(8),
                    Nanos::ZERO,
                    Bits::from_bytes(1500),
                ))
            })
            .collect();
        let mut paths = PathMib::new();
        let pid = paths.register(&nodes, refs);
        (nodes, paths, pid)
    }

    fn book(nodes: &mut NodeMib, paths: &PathMib, pid: PathId, pair: RateDelay, l_max: Bits) {
        let links = paths.path(pid).links.clone();
        for l in links {
            nodes.link_mut(l).reserve(pair.rate);
            if nodes.link(l).kind == HopKind::DelayBased {
                nodes.link_mut(l).add_edf(pair.rate, pair.delay, l_max);
            }
        }
    }

    #[test]
    fn first_flow_gets_mean_rate_with_full_delay_budget() {
        let (nodes, paths, pid) = fixture();
        let pair = admit(&type0(), Nanos::from_millis(2_190), paths.path(pid), &nodes).unwrap();
        assert_eq!(pair.rate, Rate::from_bps(50_000));
        // d = t − Ξ/r = 1.555 − 72000/50000 = 0.115 s: the whole
        // remaining budget goes to the delay hops.
        assert_eq!(pair.delay, Nanos::from_millis(115));
        assert!(verify(
            &type0(),
            Nanos::from_millis(2_190),
            pair.rate,
            pair.delay,
            paths.path(pid),
            &nodes
        ));
    }

    #[test]
    fn delay_parameters_grow_as_edf_capacity_fills() {
        // The Figure-9 dynamic: successive flows receive non-decreasing
        // delay parameters, and eventually rates above the mean.
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        let mut last_d = Nanos::ZERO;
        let mut saw_rate_rise = false;
        while let Ok(pair) = admit(&p, Nanos::from_millis(2_190), paths.path(pid), &nodes) {
            assert!(
                pair.delay >= last_d,
                "delay went backwards: {} after {}",
                pair.delay,
                last_d
            );
            last_d = pair.delay;
            if pair.rate > p.rho {
                saw_rate_rise = true;
            }
            book(&mut nodes, &paths, pid, pair, p.l_max);
        }
        assert!(saw_rate_rise, "late flows should need rates above the mean");
    }

    #[test]
    fn thirty_flows_at_244s_on_mixed_path() {
        // Table 2, mixed setting, D = 2.44 s: exactly 30 (same as the
        // rate-based setting and as IntServ/GS).
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        let mut admitted = 0;
        while let Ok(pair) = admit(&p, Nanos::from_millis(2_440), paths.path(pid), &nodes) {
            book(&mut nodes, &paths, pid, pair, p.l_max);
            admitted += 1;
            assert!(admitted <= 40, "runaway admission");
        }
        assert_eq!(admitted, 30);
    }

    #[test]
    fn twentyseven_flows_at_219s_on_mixed_path() {
        // Table 2, mixed setting, D = 2.19 s: exactly 27.
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        let mut admitted = 0;
        while let Ok(pair) = admit(&p, Nanos::from_millis(2_190), paths.path(pid), &nodes) {
            book(&mut nodes, &paths, pid, pair, p.l_max);
            admitted += 1;
            assert!(admitted <= 40, "runaway admission");
        }
        assert_eq!(admitted, 27);
    }

    #[test]
    fn granted_rate_is_minimal() {
        // Whatever the algorithm grants, one bps less must fail exact
        // verification at every delay value it could pick.
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        for _ in 0..5 {
            let pair = admit(&p, Nanos::from_millis(2_190), paths.path(pid), &nodes).unwrap();
            book(&mut nodes, &paths, pid, pair, p.l_max);
        }
        let pair = admit(&p, Nanos::from_millis(2_190), paths.path(pid), &nodes).unwrap();
        let lower = Rate::from_bps(pair.rate.as_bps() - 1);
        for d_ms in 0..=1_555 {
            assert!(
                !verify(
                    &p,
                    Nanos::from_millis(2_190),
                    lower,
                    Nanos::from_millis(d_ms),
                    paths.path(pid),
                    &nodes
                ),
                "r−1 verified at d = {d_ms} ms — granted rate not minimal"
            );
        }
    }

    #[test]
    fn delay_requirement_below_fixed_cost_is_infeasible() {
        let (nodes, paths, pid) = fixture();
        assert_eq!(
            admit(&type0(), Nanos::from_millis(30), paths.path(pid), &nodes),
            Err(Reject::DelayInfeasible)
        );
    }

    #[test]
    fn saturated_path_rejects_on_bandwidth() {
        let (mut nodes, paths, pid) = fixture();
        let links = paths.path(pid).links.clone();
        for l in &links {
            nodes.link_mut(*l).reserve(Rate::from_bps(1_470_000));
        }
        assert_eq!(
            admit(&type0(), Nanos::from_millis(2_440), paths.path(pid), &nodes),
            Err(Reject::Bandwidth)
        );
    }

    #[test]
    fn heterogeneous_classes_share_the_edf_links() {
        // Admit flows with different delay requirements: the scan must
        // navigate multiple breakpoints. Verify every grant exactly.
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        let reqs = [2_440u64, 2_190, 2_800, 2_300, 2_600];
        for (i, ms) in reqs.iter().cycle().take(15).enumerate() {
            let d_req = Nanos::from_millis(*ms);
            match admit(&p, d_req, paths.path(pid), &nodes) {
                Ok(pair) => {
                    assert!(
                        verify(&p, d_req, pair.rate, pair.delay, paths.path(pid), &nodes),
                        "grant {i} failed exact verification"
                    );
                    book(&mut nodes, &paths, pid, pair, p.l_max);
                }
                Err(Reject::Bandwidth | Reject::Schedulability) => break,
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert!(paths.path(pid).distinct_delays(&nodes).len() >= 2);
    }
}
