//! Class-based admission with dynamic flow aggregation (§4.3).
//!
//! A **macroflow** aggregates every admitted microflow of one delay
//! service class on one path; the class fixes the end-to-end bound
//! `D^{α,req}` and the delay parameter `cd` used at delay-based hops
//! (held constant across joins and leaves, per §4.2.2). The planners here
//! compute, for a join or a leave, the macroflow's new reserved rate and
//! the contingency bandwidth mandated by Theorems 2/3; the broker applies
//! the plan to the MIBs and manages the contingency lifetime.

use qos_units::ratio::u128_div_ceil;
use qos_units::{Bits, Nanos, Rate, NANOS_PER_SEC};
use serde::{Deserialize, Serialize};
use vtrs::delay::core_delay_bound;
use vtrs::profile::TrafficProfile;

use crate::mib::{NodeMib, PathQos};
use crate::signaling::Reject;

/// A delay service class offered by the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Class identifier (carried in [`crate::ServiceKind::Class`]).
    pub id: u32,
    /// End-to-end delay bound the class guarantees.
    pub d_req: Nanos,
    /// Fixed delay parameter used at every delay-based hop.
    pub cd: Nanos,
}

/// The plan for admitting a microflow into a (possibly new) macroflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinPlan {
    /// The macroflow's reserved rate after the join, `r^{α'}`.
    pub new_rate: Rate,
    /// `r^{α'} − r^α` (equals `new_rate` for a fresh macroflow).
    pub increment: Rate,
    /// Contingency bandwidth `Δr = Pν − increment` to hold for the
    /// contingency period (zero for a fresh macroflow — its edge buffer
    /// starts empty, so Theorem 2 is satisfied with `τ = 0`).
    pub contingency: Rate,
    /// Aggregate traffic profile after the join.
    pub new_profile: TrafficProfile,
}

/// The plan for removing a microflow from a macroflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeavePlan {
    /// The macroflow's reserved rate after the contingency period.
    pub new_rate: Rate,
    /// `r^α − r^{α'}`, also the contingency bandwidth to keep allocated
    /// during the contingency period (Theorem 3).
    pub contingency: Rate,
    /// Aggregate profile after the leave; `None` when the last microflow
    /// departs (the macroflow dissolves once the contingency expires).
    pub new_profile: Option<TrafficProfile>,
}

/// Minimal rate `r` with `T_on(P−r)/r + Lmax/r ≤ budget` — the edge-bound
/// inversion shared by join and leave planning. `extra` adds a rate-hop
/// term `extra/r` to the left side (pass `q · L^{P,max}` to fold in the
/// core's rate-dependent part).
fn min_rate_for_budget(profile: &TrafficProfile, extra: Bits, budget: Nanos) -> Option<Rate> {
    let t_on = profile.t_on();
    let denom = u128::from(budget.as_nanos()) + u128::from(t_on.as_nanos());
    if denom == 0 {
        return None;
    }
    let num = u128::from(t_on.as_nanos()) * u128::from(profile.peak.as_bps())
        + (u128::from(profile.l_max.as_bits()) + u128::from(extra.as_bits()))
            * u128::from(NANOS_PER_SEC);
    Some(Rate::from_bps(u128_div_ceil(num, denom)))
}

/// Plans a microflow join (§4.3, "Microflow Join").
///
/// `current` is the macroflow's present aggregate profile and reserved
/// rate, or `None` when this microflow creates the macroflow.
///
/// # Errors
///
/// * [`Reject::DelayInfeasible`] — the class bound cannot be met for the
///   grown aggregate at any admissible rate;
/// * [`Reject::Bandwidth`] — the peak-rate contingency allocation does
///   not fit in the path's residual bandwidth;
/// * [`Reject::Schedulability`] — the rate increase violates the EDF
///   constraints at a delay-based hop, or exceeds the Theorem-2 envelope.
pub fn plan_join(
    class: &ClassSpec,
    path: &PathQos,
    nodes: &NodeMib,
    current: Option<(&TrafficProfile, Rate)>,
    nu: &TrafficProfile,
) -> Result<JoinPlan, Reject> {
    let c_res = path.residual(nodes);
    match current {
        None => {
            // Fresh macroflow: full end-to-end budget, core evaluated at
            // the rate being chosen, edge buffer empty → no contingency.
            let fixed = path
                .spec
                .d_tot()
                .saturating_add(class.cd.scale(path.spec.delay_hops()));
            let budget = class
                .d_req
                .checked_sub(fixed)
                .ok_or(Reject::DelayInfeasible)?;
            let q_lp = Bits::from_bits(path.l_pmax.as_bits() * path.spec.q());
            let r_min = min_rate_for_budget(nu, q_lp, budget).ok_or(Reject::DelayInfeasible)?;
            let rate = r_min.max(nu.rho);
            if rate > nu.peak {
                return Err(Reject::DelayInfeasible);
            }
            if rate > c_res {
                return Err(Reject::Bandwidth);
            }
            // EDF feasibility of the new macroflow entry at every
            // delay-based hop.
            for (link, _) in path.delay_links(nodes) {
                if !link.edf_admissible(rate, class.cd, path.l_pmax) {
                    return Err(Reject::Schedulability);
                }
            }
            Ok(JoinPlan {
                new_rate: rate,
                increment: rate,
                contingency: Rate::ZERO,
                new_profile: *nu,
            })
        }
        Some((agg, r_alpha)) => {
            let new_profile = agg.aggregate(nu);
            // Old core bound persists while old packets drain; since the
            // rate only grows, max(d_core^α, d_core^{α'}) = d_core^α.
            let d_core_old = core_delay_bound(&path.spec, path.l_pmax, r_alpha, class.cd)
                .map_err(|_| Reject::DelayInfeasible)?;
            let budget = class
                .d_req
                .checked_sub(d_core_old)
                .ok_or(Reject::DelayInfeasible)?;
            let r_min = min_rate_for_budget(&new_profile, Bits::ZERO, budget)
                .ok_or(Reject::DelayInfeasible)?;
            let new_rate = r_min.max(new_profile.rho).max(r_alpha);
            if new_rate > new_profile.peak {
                return Err(Reject::DelayInfeasible);
            }
            let increment = new_rate - r_alpha;
            if increment > nu.peak {
                // Outside the envelope Theorem 2 covers.
                return Err(Reject::Schedulability);
            }
            // Peak-rate allocation during the contingency period:
            // increment + Δr = Pν must fit (§4.3: Pν ≤ C_res).
            if nu.peak > c_res {
                return Err(Reject::Bandwidth);
            }
            // EDF impact: the macroflow's rate rises by up to Pν at the
            // class's fixed delay; its packet-burst term is unchanged
            // (still one aggregate flow), so test the increment as a
            // zero-burst addition.
            for (link, _) in path.delay_links(nodes) {
                if !link.edf_admissible(nu.peak, class.cd, Bits::ZERO) {
                    return Err(Reject::Schedulability);
                }
            }
            Ok(JoinPlan {
                new_rate,
                increment,
                contingency: nu.peak - increment,
                new_profile,
            })
        }
    }
}

/// Plans a microflow leave (§4.3, "Microflow Leave").
///
/// The rate reduction is deferred: the macroflow keeps `r^α` for the
/// contingency period (`Δr = r^α − r^{α'}` of it counted as contingency),
/// then drops to the returned `new_rate`.
pub fn plan_leave(
    class: &ClassSpec,
    path: &PathQos,
    current: (&TrafficProfile, Rate),
    nu: &TrafficProfile,
) -> LeavePlan {
    let (agg, r_alpha) = current;
    if agg == nu {
        // Last microflow: macroflow dissolves after the contingency.
        return LeavePlan {
            new_rate: Rate::ZERO,
            contingency: r_alpha,
            new_profile: None,
        };
    }
    let remaining = agg.deaggregate(nu);
    // Full budget with the core evaluated at the (lower) new rate:
    // d_edge(r') + q·L^{P,max}/r' + (h−q)·cd + D_tot ≤ D.
    let fixed = path
        .spec
        .d_tot()
        .saturating_add(class.cd.scale(path.spec.delay_hops()));
    let q_lp = Bits::from_bits(path.l_pmax.as_bits() * path.spec.q());
    let new_rate = match class.d_req.checked_sub(fixed) {
        Some(budget) => min_rate_for_budget(&remaining, q_lp, budget)
            .map_or(r_alpha, |r| r.max(remaining.rho).min(r_alpha)),
        // Should not happen for a class that admitted flows; keep the
        // old rate defensively.
        None => r_alpha,
    };
    LeavePlan {
        new_rate,
        contingency: r_alpha - new_rate,
        new_profile: Some(remaining),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::{LinkQos, NodeMib, PathId, PathMib};
    use vtrs::reference::HopKind;

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    fn class_244() -> ClassSpec {
        ClassSpec {
            id: 0,
            d_req: Nanos::from_millis(2_440),
            cd: Nanos::from_millis(240),
        }
    }

    /// 5 rate-based hops (the rate-only simulation setting).
    fn rate_fixture() -> (NodeMib, PathMib, PathId) {
        let mut nodes = NodeMib::new();
        let refs: Vec<_> = (0..5)
            .map(|_| {
                nodes.add_link(LinkQos::new(
                    Rate::from_bps(1_500_000),
                    HopKind::RateBased,
                    Nanos::from_millis(8),
                    Nanos::ZERO,
                    Bits::from_bytes(1500),
                ))
            })
            .collect();
        let mut paths = PathMib::new();
        let pid = paths.register(&nodes, refs);
        (nodes, paths, pid)
    }

    #[test]
    fn first_join_creates_macroflow_without_contingency() {
        let (nodes, paths, pid) = rate_fixture();
        let plan = plan_join(&class_244(), paths.path(pid), &nodes, None, &type0()).unwrap();
        assert_eq!(plan.contingency, Rate::ZERO);
        assert_eq!(plan.increment, plan.new_rate);
        // Single type-0 flow at D = 2.44 s needs exactly the mean rate.
        assert_eq!(plan.new_rate, Rate::from_bps(50_000));
    }

    #[test]
    fn subsequent_join_allocates_peak_contingency() {
        let (nodes, paths, pid) = rate_fixture();
        let p = type0();
        let agg = p; // one member so far
        let plan = plan_join(
            &class_244(),
            paths.path(pid),
            &nodes,
            Some((&agg, Rate::from_bps(50_000))),
            &p,
        )
        .unwrap();
        // Homogeneous type-0 flows at 2.44 s: mean-rate aggregate still
        // suffices, increment = ρν, contingency = Pν − ρν.
        assert_eq!(plan.new_rate, Rate::from_bps(100_000));
        assert_eq!(plan.increment, Rate::from_bps(50_000));
        assert_eq!(plan.contingency, Rate::from_bps(50_000));
        assert_eq!(plan.new_profile.rho, Rate::from_bps(100_000));
    }

    #[test]
    fn join_fails_on_bandwidth_when_peak_does_not_fit() {
        let (mut nodes, paths, pid) = rate_fixture();
        let p = type0();
        // Leave less than Pν residual.
        let links = paths.path(pid).links.clone();
        for l in &links {
            nodes.link_mut(*l).reserve(Rate::from_bps(1_450_000));
        }
        let err = plan_join(
            &class_244(),
            paths.path(pid),
            &nodes,
            Some((&p, Rate::from_bps(50_000))),
            &p,
        )
        .unwrap_err();
        assert_eq!(err, Reject::Bandwidth);
    }

    #[test]
    fn sequential_joins_admit_exactly_29_at_244s() {
        // Table 2, Aggr BB/VTRS, rate-based setting, D = 2.44 s: the
        // peak-rate contingency costs one call versus per-flow's 30.
        let (mut nodes, paths, pid) = rate_fixture();
        let p = type0();
        let cls = class_244();
        let mut agg: Option<(TrafficProfile, Rate)> = None;
        let mut allocated = Rate::ZERO; // rate + active contingency on links
        let mut admitted = 0;
        loop {
            let cur = agg.as_ref().map(|(a, r)| (a, *r));
            match plan_join(&cls, paths.path(pid), &nodes, cur, &p) {
                Ok(plan) => {
                    // Allocate the delta (increment + contingency), then
                    // model the contingency expiring before the next
                    // arrival (infinite holding times mask transients).
                    let delta = plan.increment + plan.contingency;
                    let links = paths.path(pid).links.clone();
                    for l in &links {
                        nodes.link_mut(*l).reserve(delta);
                    }
                    allocated += delta;
                    // Contingency expiry: release it again.
                    for l in &links {
                        nodes.link_mut(*l).release(plan.contingency);
                    }
                    allocated -= plan.contingency;
                    agg = Some((plan.new_profile, plan.new_rate));
                    admitted += 1;
                    assert!(admitted <= 40, "runaway admission");
                }
                Err(Reject::Bandwidth) => break,
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert_eq!(admitted, 29);
        assert_eq!(allocated, Rate::from_bps(50_000 * 29));
    }

    #[test]
    fn leave_defers_rate_reduction_as_contingency() {
        let (_, paths, pid) = rate_fixture();
        let p = type0();
        let agg = p.aggregate(&p).aggregate(&p); // 3 members
        let plan = plan_leave(
            &class_244(),
            paths.path(pid),
            (&agg, Rate::from_bps(150_000)),
            &p,
        );
        assert_eq!(plan.new_rate, Rate::from_bps(100_000));
        assert_eq!(plan.contingency, Rate::from_bps(50_000));
        assert_eq!(plan.new_profile.unwrap().rho, Rate::from_bps(100_000));
    }

    #[test]
    fn last_leave_dissolves_macroflow() {
        let (_, paths, pid) = rate_fixture();
        let p = type0();
        let plan = plan_leave(
            &class_244(),
            paths.path(pid),
            (&p, Rate::from_bps(50_000)),
            &p,
        );
        assert_eq!(plan.new_rate, Rate::ZERO);
        assert_eq!(plan.contingency, Rate::from_bps(50_000));
        assert!(plan.new_profile.is_none());
    }

    #[test]
    fn tight_class_bound_is_infeasible() {
        let (nodes, paths, pid) = rate_fixture();
        let cls = ClassSpec {
            id: 1,
            d_req: Nanos::from_millis(100),
            cd: Nanos::from_millis(10),
        };
        assert_eq!(
            plan_join(&cls, paths.path(pid), &nodes, None, &type0()),
            Err(Reject::DelayInfeasible)
        );
    }
}
