//! O(1) admission for paths with only rate-based schedulers (§3.1).
//!
//! With every hop rate-based the end-to-end bound (eq. 4) collapses to a
//! function of `r` alone, so admissibility reduces to intersecting three
//! intervals: the delay-derived minimum rate `r_min` (eq. 6), the
//! profile's `[ρ, P]`, and the path's residual bandwidth `C_res`. The
//! feasible range is `[max(ρ, r_min), min(P, C_res)]`; the broker grants
//! the minimal feasible rate.

use qos_units::{Nanos, Rate};
use vtrs::delay::min_rate_rate_based;
use vtrs::profile::TrafficProfile;
use vtrs::reference::PathSpec;

use crate::mib::{NodeMib, PathQos};
use crate::signaling::Reject;

/// Outcome of the O(1) test: the feasible rate range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasibleRange {
    /// Lower edge `max(ρ, r_min)` — the rate the broker grants.
    pub low: Rate,
    /// Upper edge `min(P, C_res)`.
    pub high: Rate,
}

/// Runs the §3.1 admissibility test; on success returns the feasible rate
/// range (grant `range.low`).
///
/// # Errors
///
/// * [`Reject::DelayInfeasible`] — no rate ≤ `P` can meet `d_req`;
/// * [`Reject::Bandwidth`] — the path lacks residual bandwidth.
pub fn admit(
    profile: &TrafficProfile,
    d_req: Nanos,
    path: &PathQos,
    nodes: &NodeMib,
) -> Result<FeasibleRange, Reject> {
    admit_with_residual(profile, d_req, path, path.residual(nodes))
}

/// The §3.1 test with the path residual `C_res` supplied by the caller —
/// the decide phase's O(1) entry point: the only dynamic input of the
/// rate-based test is `C_res`, so a cached
/// [`crate::mib::PathSummary::c_res`] makes the whole test run without
/// touching a single link row (`h` and `D_tot` are static in
/// [`PathQos::spec`]).
///
/// # Errors
///
/// As [`admit`].
pub fn admit_with_residual(
    profile: &TrafficProfile,
    d_req: Nanos,
    path: &PathQos,
    c_res: Rate,
) -> Result<FeasibleRange, Reject> {
    admit_with_spec(profile, d_req, &path.spec, c_res)
}

/// The §3.1 test from the static hop characterization alone — the form
/// the lock-free decide handles call: `spec` is an immutable snapshot
/// taken at handle-build time and `c_res` comes out of the path's
/// seqlock summary cell, so no MIB reference of any kind is needed.
///
/// # Errors
///
/// As [`admit`].
pub fn admit_with_spec(
    profile: &TrafficProfile,
    d_req: Nanos,
    spec: &PathSpec,
    c_res: Rate,
) -> Result<FeasibleRange, Reject> {
    debug_assert_eq!(
        spec.delay_hops(),
        0,
        "rate_based::admit on a path with delay-based hops"
    );
    let h = spec.h();
    let r_min =
        min_rate_rate_based(profile, h, spec.d_tot(), d_req).ok_or(Reject::DelayInfeasible)?;
    if r_min > profile.peak {
        return Err(Reject::DelayInfeasible);
    }
    let low = r_min.max(profile.rho);
    let high = profile.peak.min(c_res);
    if low > high {
        return Err(Reject::Bandwidth);
    }
    Ok(FeasibleRange { low, high })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mib::{LinkQos, NodeMib, PathMib};
    use qos_units::Bits;
    use vtrs::reference::HopKind;

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    /// 5 CsVC hops at 1.5 Mb/s, Ψ = 8 ms, π = 0 (the Figure-8 S1→D1 path
    /// in the rate-based-only setting).
    fn fixture() -> (NodeMib, PathMib, crate::mib::PathId) {
        let mut nodes = NodeMib::new();
        let refs: Vec<_> = (0..5)
            .map(|_| {
                nodes.add_link(LinkQos::new(
                    Rate::from_bps(1_500_000),
                    HopKind::RateBased,
                    Nanos::from_millis(8),
                    Nanos::ZERO,
                    Bits::from_bytes(1500),
                ))
            })
            .collect();
        let mut paths = PathMib::new();
        let pid = paths.register(&nodes, refs);
        (nodes, paths, pid)
    }

    #[test]
    fn grants_mean_rate_at_244s() {
        let (nodes, paths, pid) = fixture();
        let range = admit(&type0(), Nanos::from_millis(2_440), paths.path(pid), &nodes).unwrap();
        assert_eq!(range.low, Rate::from_bps(50_000));
        assert_eq!(range.high, Rate::from_bps(100_000));
    }

    #[test]
    fn exactly_thirty_flows_fit_at_244s() {
        // The Table-2 headline: greedy sequential admission of type-0
        // flows at D = 2.44 s admits exactly 30.
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        let mut admitted = 0;
        loop {
            match admit(&p, Nanos::from_millis(2_440), paths.path(pid), &nodes) {
                Ok(range) => {
                    let links: Vec<_> = paths.path(pid).links.clone();
                    for l in links {
                        nodes.link_mut(l).reserve(range.low);
                    }
                    admitted += 1;
                }
                Err(Reject::Bandwidth) => break,
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert_eq!(admitted, 30);
    }

    #[test]
    fn exactly_twentyseven_flows_fit_at_219s() {
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        let mut admitted = 0;
        while let Ok(range) = admit(&p, Nanos::from_millis(2_190), paths.path(pid), &nodes) {
            let links: Vec<_> = paths.path(pid).links.clone();
            for l in links {
                nodes.link_mut(l).reserve(range.low);
            }
            admitted += 1;
            // r_min at 2.19 s is 54020 b/s > ρ.
            assert_eq!(range.low, Rate::from_bps(54_020));
        }
        assert_eq!(admitted, 27);
    }

    #[test]
    fn infeasible_delay_is_distinguished_from_bandwidth() {
        let (mut nodes, paths, pid) = fixture();
        let p = type0();
        // Even at the peak rate the bound is 0.96·0 + 6·0.12 + 0.04 =
        // 0.76 s; asking for less is a delay infeasibility.
        assert_eq!(
            admit(&p, Nanos::from_millis(700), paths.path(pid), &nodes),
            Err(Reject::DelayInfeasible)
        );
        // Drain the path: now it is a bandwidth rejection.
        let links: Vec<_> = paths.path(pid).links.clone();
        for l in &links {
            nodes.link_mut(*l).reserve(Rate::from_bps(1_460_000));
        }
        assert_eq!(
            admit(&p, Nanos::from_millis(2_440), paths.path(pid), &nodes),
            Err(Reject::Bandwidth)
        );
    }

    #[test]
    fn bound_at_760ms_is_feasible_at_peak() {
        let (nodes, paths, pid) = fixture();
        let range = admit(&type0(), Nanos::from_millis(760), paths.path(pid), &nodes).unwrap();
        assert_eq!(range.low, Rate::from_bps(100_000));
        assert_eq!(range.high, Rate::from_bps(100_000));
    }
}
