//! Control-plane message types between edge routers and the broker.
//!
//! The paper's deployment passes these over COPS; here they are plain
//! Rust types exchanged in-process (the simulator stands in for the
//! wire), which keeps the protocol semantics — request, admit/reject,
//! edge (re)configuration, contingency control — without byte-level
//! framing.

use core::fmt;

use qos_units::{Nanos, Rate, Time};
use serde::{Deserialize, Serialize};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use crate::mib::PathId;

/// The service model a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Dedicated per-flow guaranteed delay service (§3).
    PerFlow,
    /// Class-based guaranteed delay service with flow aggregation (§4);
    /// the value names the delay service class.
    Class(u32),
}

/// A new-flow service request, as sent by an ingress router to the BB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRequest {
    /// Caller-chosen flow identity.
    pub flow: FlowId,
    /// Declared dual-token-bucket traffic profile.
    pub profile: TrafficProfile,
    /// End-to-end delay requirement `D^req` (per-flow service; for class
    /// service the class's bound applies instead).
    pub d_req: Nanos,
    /// Requested service model.
    pub service: ServiceKind,
    /// Path to use. The broker's routing module can fill this from an
    /// ingress/egress pair; requests carry it explicitly so experiments
    /// control placement.
    pub path: PathId,
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// Denied by policy control before any resource test.
    Policy,
    /// The delay requirement cannot be met at any rate on this path.
    DelayInfeasible,
    /// Not enough residual bandwidth along the path.
    Bandwidth,
    /// No rate–delay pair satisfies the EDF schedulability constraints.
    Schedulability,
    /// The named service class is not offered on this path.
    UnknownClass,
    /// The flow id is already active.
    DuplicateFlow,
    /// The broker is shedding load: its request queue is full and the
    /// request was never admission-tested (daemon backpressure, not a
    /// resource verdict — the edge may retry).
    Overloaded,
    /// Routing produced no candidate path at all between the requested
    /// ingress and egress — distinct from [`Reject::Bandwidth`], where
    /// paths exist but none has capacity.
    NoRoute,
    /// A downstream peer domain the admission depends on is dead or
    /// timed out — a fabric verdict, not a resource one: no segment of
    /// the request was booked anywhere, and the edge may retry once the
    /// peering recovers.
    PeerUnreachable,
}

impl Reject {
    /// Every rejection cause, in wire-code order — the canonical
    /// admission-outcome taxonomy that counters, metric label sets, and
    /// the COPS error sub-codes all index the same way.
    pub const ALL: [Reject; 9] = [
        Reject::Policy,
        Reject::DelayInfeasible,
        Reject::Bandwidth,
        Reject::Schedulability,
        Reject::UnknownClass,
        Reject::DuplicateFlow,
        Reject::Overloaded,
        Reject::NoRoute,
        Reject::PeerUnreachable,
    ];

    /// Number of distinct rejection causes.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this cause into [`Reject::ALL`]-ordered arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Reject::Policy => 0,
            Reject::DelayInfeasible => 1,
            Reject::Bandwidth => 2,
            Reject::Schedulability => 3,
            Reject::UnknownClass => 4,
            Reject::DuplicateFlow => 5,
            Reject::Overloaded => 6,
            Reject::NoRoute => 7,
            Reject::PeerUnreachable => 8,
        }
    }

    /// Inverse of [`Reject::index`].
    #[must_use]
    pub fn from_index(i: usize) -> Option<Reject> {
        Self::ALL.get(i).copied()
    }

    /// Stable snake_case identifier for metric labels and snapshots.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Reject::Policy => "policy",
            Reject::DelayInfeasible => "delay_infeasible",
            Reject::Bandwidth => "bandwidth",
            Reject::Schedulability => "schedulability",
            Reject::UnknownClass => "unknown_class",
            Reject::DuplicateFlow => "duplicate_flow",
            Reject::Overloaded => "overloaded",
            Reject::NoRoute => "no_route",
            Reject::PeerUnreachable => "peer_unreachable",
        }
    }
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Reject::Policy => "rejected by policy control",
            Reject::DelayInfeasible => "delay requirement infeasible on this path",
            Reject::Bandwidth => "insufficient residual bandwidth along the path",
            Reject::Schedulability => "no feasible rate-delay pair (EDF schedulability)",
            Reject::UnknownClass => "service class not offered",
            Reject::DuplicateFlow => "flow id already active",
            Reject::Overloaded => "broker overloaded; request dropped before admission",
            Reject::NoRoute => "no route between the requested ingress and egress",
            Reject::PeerUnreachable => "downstream peer domain unreachable; nothing was booked",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Reject {}

/// A granted reservation, returned to the ingress so it can configure the
/// edge conditioner (the paper's `⟨r, d⟩` push via COPS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// The flow (for class service: the microflow) this answers.
    pub flow: FlowId,
    /// The conditioner to (re)configure — the flow itself for per-flow
    /// service, the macroflow for class service.
    pub conditioned_flow: FlowId,
    /// Reserved rate `r` to shape to (for class service: the macroflow's
    /// new reserved rate, excluding contingency).
    pub rate: Rate,
    /// Delay parameter `d` to stamp into packets.
    pub delay: Nanos,
    /// Contingency bandwidth granted alongside (class service joins and
    /// leaves; zero for per-flow service).
    pub contingency: Rate,
    /// When the contingency grant expires under the *bounding* policy
    /// (`None` for feedback-managed grants and for per-flow service).
    pub contingency_expires: Option<Time>,
}

/// Edge → broker notification that a macroflow's conditioner buffer has
/// drained (the trigger for the early contingency reset, §4.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeBufferEmpty {
    /// The macroflow whose buffer emptied.
    pub macroflow: FlowId,
    /// When it emptied.
    pub at: Time,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_messages_are_descriptive() {
        assert!(Reject::Bandwidth.to_string().contains("residual bandwidth"));
        assert!(Reject::Schedulability.to_string().contains("EDF"));
        assert!(Reject::Policy.to_string().contains("policy"));
    }
}
