//! The routing module: imports topology and selects paths.
//!
//! The paper's BB peers with routers (OSPF/MPLS) to learn topology and
//! pin paths; here the module imports a [`netsim::Topology`] and registers
//! the QoS view of each link into the node MIB, plus minimum-hop path
//! selection between ingress and egress, which is what §5's fixed
//! topology uses.

use std::collections::HashMap;

use netsim::topology::{LinkId, NodeId, Topology};

use crate::mib::{LinkQos, LinkRef, NodeMib, PathId, PathMib};

/// Maps the simulator topology into the broker's MIBs and answers path
/// queries.
#[derive(Debug)]
pub struct RoutingModule {
    topo: Topology,
    /// netsim link id → broker link reference (indices coincide, but the
    /// mapping is kept explicit so a partial import remains possible).
    link_map: Vec<LinkRef>,
    /// Cache of registered paths by (ingress, egress).
    by_endpoints: HashMap<(NodeId, NodeId), PathId>,
    /// Cache of alternate path sets by (ingress, egress, k).
    alt_index: HashMap<(NodeId, NodeId, usize), Vec<PathId>>,
}

impl RoutingModule {
    /// Imports the topology: every link's static QoS parameters are
    /// registered in `nodes`.
    pub fn import(topo: Topology, nodes: &mut NodeMib) -> Self {
        let link_map = topo
            .links()
            .iter()
            .map(|l| {
                nodes.add_link(LinkQos::new(
                    l.capacity,
                    l.scheduler.kind(),
                    l.scheduler.psi(l.capacity, l.max_packet),
                    l.prop_delay,
                    l.max_packet,
                ))
            })
            .collect();
        RoutingModule {
            topo,
            link_map,
            by_endpoints: HashMap::new(),
            alt_index: HashMap::new(),
        }
    }

    /// The imported topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Broker-side reference for a topology link.
    ///
    /// # Panics
    ///
    /// Panics on an unknown link.
    #[must_use]
    pub fn link_ref(&self, l: LinkId) -> LinkRef {
        self.link_map[l.0]
    }

    /// Selects (or returns the cached) minimum-hop path between two
    /// nodes, registering it in the path MIB on first use. `None` if
    /// unreachable.
    pub fn path_between(
        &mut self,
        nodes: &NodeMib,
        paths: &mut PathMib,
        from: NodeId,
        to: NodeId,
    ) -> Option<PathId> {
        if let Some(id) = self.by_endpoints.get(&(from, to)) {
            return Some(*id);
        }
        let route = self.topo.shortest_path(from, to)?;
        if route.is_empty() {
            return None;
        }
        let refs: Vec<LinkRef> = route.iter().map(|l| self.link_ref(*l)).collect();
        let id = paths.register(nodes, refs);
        self.by_endpoints.insert((from, to), id);
        Some(id)
    }

    /// Selects (or returns the cached) set of up to `k` candidate paths
    /// between two nodes — the minimum-hop route plus single-link
    /// deviations — registering each in the path MIB on first use.
    ///
    /// This is the hook for the paper's "network-wide optimization"
    /// argument (§1): because *all* path QoS state lives at the broker,
    /// it can steer a new flow to whichever admissible path has the most
    /// headroom, something a hop-by-hop control plane cannot express.
    pub fn paths_between(
        &mut self,
        nodes: &NodeMib,
        paths: &mut PathMib,
        from: NodeId,
        to: NodeId,
        k: usize,
    ) -> Vec<PathId> {
        if let Some(ids) = self.alt_index.get(&(from, to, k)) {
            return ids.clone();
        }
        let ids: Vec<PathId> = self
            .topo
            .k_paths(from, to, k)
            .into_iter()
            .filter(|route| !route.is_empty())
            .map(|route| {
                let refs: Vec<LinkRef> = route.iter().map(|l| self.link_ref(*l)).collect();
                paths.register(nodes, refs)
            })
            .collect();
        self.alt_index.insert((from, to, k), ids.clone());
        ids
    }

    /// Registers an explicit route (experiments that pin paths).
    pub fn register_route(
        &mut self,
        nodes: &NodeMib,
        paths: &mut PathMib,
        route: &[LinkId],
    ) -> PathId {
        let refs: Vec<LinkRef> = route.iter().map(|l| self.link_ref(*l)).collect();
        paths.register(nodes, refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::{SchedulerSpec, TopologyBuilder};
    use qos_units::{Bits, Nanos, Rate};

    fn topo3() -> (Topology, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let n: Vec<_> = ["a", "b", "c"].iter().map(|x| b.node(*x)).collect();
        b.link(
            n[0],
            n[1],
            Rate::from_bps(1_500_000),
            Nanos::ZERO,
            SchedulerSpec::CsVc,
            Bits::from_bytes(1500),
        );
        b.link(
            n[1],
            n[2],
            Rate::from_bps(1_500_000),
            Nanos::ZERO,
            SchedulerSpec::VtEdf,
            Bits::from_bytes(1500),
        );
        (b.build(), n)
    }

    #[test]
    fn import_registers_all_links() {
        let (t, _) = topo3();
        let mut nodes = NodeMib::new();
        let routing = RoutingModule::import(t, &mut nodes);
        assert_eq!(nodes.link_count(), 2);
        assert_eq!(routing.topology().link_count(), 2);
    }

    #[test]
    fn path_between_caches() {
        let (t, n) = topo3();
        let mut nodes = NodeMib::new();
        let mut paths = PathMib::new();
        let mut routing = RoutingModule::import(t, &mut nodes);
        let p1 = routing
            .path_between(&nodes, &mut paths, n[0], n[2])
            .unwrap();
        let p2 = routing
            .path_between(&nodes, &mut paths, n[0], n[2])
            .unwrap();
        assert_eq!(p1, p2);
        assert_eq!(paths.len(), 1);
        let q = paths.path(p1);
        assert_eq!(q.spec.h(), 2);
        assert_eq!(q.spec.q(), 1);
        // Unreachable in reverse (unidirectional links).
        assert!(routing
            .path_between(&nodes, &mut paths, n[2], n[0])
            .is_none());
    }
}
