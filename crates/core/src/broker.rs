//! The bandwidth broker façade.
//!
//! [`Broker`] owns the three MIBs, the policy and routing modules, and
//! the class/macroflow registry, and exposes the control-plane protocol
//! of Figure 1: a [`FlowRequest`] comes in from an ingress, passes policy
//! control, is admission-tested *path-wide* against the MIBs alone, and —
//! if admitted — the bookkeeping phase updates the MIBs and a
//! [`Reservation`] goes back so the ingress can (re)configure the edge
//! conditioner. **No core router is touched at any point.**
//!
//! §2.2's two phases are explicit API: [`Broker::decide`] is the
//! admissibility test — `&self`, reading path state through a per-path
//! [`PathSummary`] cache so the rate-based test touches no link rows on
//! a cache hit — and returns an [`AdmissionPlan`] stamped with the
//! path's epoch. [`Broker::commit`] is the bookkeeping phase: it
//! revalidates the stamp against the live epoch and either applies the
//! plan or re-decides it against fresh state (counting retries and
//! Ok-turned-Err aborts). [`Broker::request`] is simply the two run
//! back-to-back. Decides may run concurrently; commits serialize.
//!
//! Time is passed explicitly into every operation: the broker is a
//! passive state machine, so it composes with the discrete-event
//! simulator, the experiment harnesses, and wall-clock deployments alike.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use netsim::topology::{LinkId, NodeId, Topology};
use qos_units::{Nanos, Rate, Time};
use vtrs::delay::edge_delay_bound;
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;
use vtrs::reference::HopKind;

use crate::admission::aggregate::{plan_join, plan_leave, ClassSpec, JoinPlan};
use crate::admission::plan::{AdmissionPlan, PlanAction, PlanIntent};
use crate::admission::{mixed, rate_based};
use crate::contingency::{bounding_period, ContingencyPolicy, ContingencySet, Grant};
use crate::mib::{
    FlowMib, FlowRecord, FlowService, LinkRef, NodeMib, PathId, PathMib, PathSummary,
};
use crate::persist::{
    BrokerImage, EdfEntryImage, FlowRecordImage, FlowSlotImage, LinkImage, MacroImage,
    MacroSlotImage,
};
use crate::policy::Policy;
use crate::routing::RoutingModule;
use crate::signaling::{FlowRequest, Reject, Reservation, ServiceKind};
use crate::store::{Interner, MacroIdx, MacroTag, RawSlot, Slab};
use crate::summary::SummaryTable;

/// Macroflow identifiers live in the top half of the `FlowId` space so
/// they can never collide with caller-chosen microflow ids.
const MACRO_BASE: u64 = 1 << 63;

/// Broker construction parameters.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Administrative policy applied before any resource test.
    pub policy: Policy,
    /// How contingency periods are terminated.
    pub contingency: ContingencyPolicy,
    /// Delay service classes offered (class-based service).
    pub classes: Vec<ClassSpec>,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            policy: Policy::allow_all(),
            contingency: ContingencyPolicy::Feedback,
            classes: Vec::new(),
        }
    }
}

/// A macroflow's control state.
#[derive(Debug, Clone)]
pub struct MacroState {
    /// The macroflow's own id (top-half space) — the wire identifier
    /// edge conditioners see in [`Reservation::conditioned_flow`].
    pub id: FlowId,
    /// Service class (wire-level class number).
    pub class: u32,
    /// Dense row of the class in the broker's class table — inboard
    /// bookkeeping (release, expiry, teardown) reads the spec through
    /// this, never by re-hashing `class`.
    pub(crate) class_row: usize,
    /// Path it is pinned to.
    pub path: PathId,
    /// Aggregate profile of current members (meaningless once
    /// dissolving).
    pub profile: TrafficProfile,
    /// Reserved rate `r^α` (excluding contingency).
    pub reserved: Rate,
    /// Member microflows.
    pub members: u64,
    /// Active contingency grants.
    pub contingency: ContingencySet,
    /// Set when the last member left; the macroflow is torn down once
    /// the final contingency expires.
    pub dissolving: bool,
}

impl MacroState {
    /// Total bandwidth currently allocated on the path for this
    /// macroflow: reserved + contingency.
    #[must_use]
    pub fn allocated(&self) -> Rate {
        self.reserved.saturating_add(self.contingency.total())
    }
}

/// Counters for reporting and the scalability benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BrokerStats {
    /// Requests received.
    pub requested: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Rejections, by cause.
    pub rejected_policy: u64,
    /// Rejected: delay infeasible.
    pub rejected_delay: u64,
    /// Rejected: bandwidth.
    pub rejected_bandwidth: u64,
    /// Rejected: schedulability.
    pub rejected_sched: u64,
    /// Rejected: the named service class is not offered.
    pub rejected_unknown_class: u64,
    /// Rejected: the flow id is already active.
    pub rejected_duplicate: u64,
    /// Flows released.
    pub released: u64,
    /// Contingency grants issued.
    pub grants: u64,
    /// Contingency bandwidth released by timer expiry.
    pub grant_expiries: u64,
    /// Contingency bandwidth released by edge feedback.
    pub grant_resets: u64,
    /// Plans that arrived at commit with a stale epoch stamp and were
    /// re-decided against fresh state.
    pub plan_retries: u64,
    /// Retried plans whose decide-time admit turned into a rejection
    /// under fresh state (the optimistic-concurrency abort case).
    pub plan_aborts: u64,
}

impl BrokerStats {
    /// Rejections attributed to one cause of the admission-outcome
    /// taxonomy. [`Reject::Overloaded`] is always zero here: shedding
    /// happens in front of the broker, never inside it.
    #[must_use]
    pub fn rejected_by(&self, cause: Reject) -> u64 {
        match cause {
            Reject::Policy => self.rejected_policy,
            Reject::DelayInfeasible => self.rejected_delay,
            Reject::Bandwidth => self.rejected_bandwidth,
            Reject::Schedulability => self.rejected_sched,
            Reject::UnknownClass => self.rejected_unknown_class,
            Reject::DuplicateFlow => self.rejected_duplicate,
            // Overloaded is a queue verdict, NoRoute a routing verdict,
            // and PeerUnreachable a federation-fabric verdict; none is
            // ever produced by the admission test proper, so the broker
            // attributes nothing to them.
            Reject::Overloaded | Reject::NoRoute | Reject::PeerUnreachable => 0,
        }
    }

    /// Total rejections across the taxonomy.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        Reject::ALL.iter().map(|&c| self.rejected_by(c)).sum()
    }
}

/// Occupancy of the broker's dense state stores, surfaced per shard as
/// telemetry gauges: live counts against allocated arena slots show how
/// much of the footprint is working state versus recyclable headroom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreOccupancy {
    /// Wire flow ids currently interned (= live flows).
    pub interned_flows: u64,
    /// Flow-arena slots allocated (live + recyclable).
    pub flow_slots: u64,
    /// Live macroflows.
    pub macroflows: u64,
    /// Macroflow-arena slots allocated.
    pub macroflow_slots: u64,
    /// Registered path rows (dense, never freed).
    pub paths: u64,
}

/// The bandwidth broker.
///
/// All registries are dense (see [`crate::store`]): classes and paths
/// are contiguous rows, flows and macroflows live in slab arenas, and
/// the only wire-id hashes on the decide/commit pipeline are the
/// boundary interner probes that translate the external `FlowId`/class
/// number of an incoming message into handles.
#[derive(Debug)]
pub struct Broker {
    nodes: NodeMib,
    paths: PathMib,
    routing: RoutingModule,
    flows: FlowMib,
    policy: Policy,
    contingency_policy: ContingencyPolicy,
    /// Dense class rows; `class_interner` maps the wire class number to
    /// its row exactly once per boundary crossing.
    classes: Vec<ClassSpec>,
    class_interner: Interner<usize>,
    /// Macroflow control state, addressed by generational handle.
    macroflows: Slab<MacroTag, MacroState>,
    /// Wire macroflow id → handle: the boundary translation for RPT
    /// feedback and monitoring lookups (never consulted by decide or
    /// commit).
    macro_interner: Interner<MacroIdx>,
    /// Dense `(path row × class row)` → serving macroflow, the registry
    /// decide and commit read with pure arithmetic — no tuple hashing.
    macro_slots: Vec<Option<MacroIdx>>,
    next_macro: u64,
    stats: BrokerStats,
    /// Per-path QoS summary cells, one seqlock cell per path row (see
    /// [`crate::summary`]). Atomic payloads keep [`Broker::decide`]
    /// `&self` with **no lock at all**: a summary hit is a torn-read-
    /// checked snapshot, a miss recomputes from link rows and races to
    /// publish (CAS losers keep their stack-local copy). Shared via
    /// `Arc` with the lock-free decide handles built by
    /// [`crate::shard::BrokerShard::fast_handle`].
    summaries: Arc<SummaryTable>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Torn seqlock snapshots observed by this broker's own probes.
    seqlock_retries: AtomicU64,
}

impl Broker {
    /// Builds a broker for a domain, importing the topology into the node
    /// MIB via the routing module.
    #[must_use]
    pub fn new(topo: Topology, config: BrokerConfig) -> Self {
        let mut nodes = NodeMib::new();
        let routing = RoutingModule::import(topo, &mut nodes);
        let classes = config.classes;
        let mut class_interner = Interner::new();
        for (row, c) in classes.iter().enumerate() {
            // Later duplicates shadow earlier ones, matching the old
            // map-collect semantics.
            class_interner.bind(u64::from(c.id), row);
        }
        Broker {
            nodes,
            paths: PathMib::new(),
            routing,
            flows: FlowMib::new(),
            policy: config.policy,
            contingency_policy: config.contingency,
            classes,
            class_interner,
            macroflows: Slab::new(),
            macro_interner: Interner::new(),
            macro_slots: Vec::new(),
            next_macro: MACRO_BASE,
            stats: BrokerStats::default(),
            summaries: Arc::new(SummaryTable::default()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            seqlock_retries: AtomicU64::new(0),
        }
    }

    /// Grows the dense per-path tables — summary cells and the
    /// `(path × class)` macroflow registry — to cover rows registered
    /// since the last call. Invoked after every routing operation that
    /// may register paths, so inboard code can index unconditionally.
    ///
    /// The summary table grows through `Arc::make_mut`: registration
    /// after decide handles were built copies the table and freezes the
    /// handles' view (their probes go permanently stale and fall back
    /// to the locked path — safe, just slower). Servers register all
    /// routes before building handles, so the table is normally never
    /// cloned.
    fn sync_dense_tables(&mut self) {
        if self.summaries.len() < self.paths.len() {
            Arc::make_mut(&mut self.summaries).grow(self.paths.len());
        }
        let need = self.paths.len() * self.classes.len();
        if self.macro_slots.len() < need {
            self.macro_slots.resize(need, None);
        }
    }

    /// Dense row of a path id the MIB has validated.
    fn path_row(id: PathId) -> usize {
        usize::try_from(id.0).expect("registered path rows fit usize")
    }

    /// Restricts this broker's macroflow-id allocation to the `shard`-th
    /// of `shards` equal blocks of the macroflow id space, so brokers
    /// serving disjoint shards of one domain (see [`crate::shard`]) never
    /// hand out colliding macroflow ids.
    ///
    /// # Panics
    ///
    /// Panics when `shard >= shards`, `shards` is zero, or macroflows
    /// have already been allocated.
    pub fn set_macro_shard(&mut self, shard: u64, shards: u64) {
        assert!(shard < shards, "shard index out of range");
        assert!(
            self.next_macro == MACRO_BASE && self.macroflows.is_empty(),
            "macroflow namespace must be set before any allocation"
        );
        let block = (1u64 << 63) / shards;
        self.next_macro = MACRO_BASE + shard * block;
    }

    /// Path selection between two nodes (minimum hop), registering the
    /// path on first use.
    pub fn path_between(&mut self, from: NodeId, to: NodeId) -> Option<PathId> {
        let id = self
            .routing
            .path_between(&self.nodes, &mut self.paths, from, to);
        self.sync_dense_tables();
        id
    }

    /// Candidate paths between two nodes (min-hop + single-link
    /// deviations), registered on first use.
    pub fn paths_between(&mut self, from: NodeId, to: NodeId, k: usize) -> Vec<PathId> {
        let ids = self
            .routing
            .paths_between(&self.nodes, &mut self.paths, from, to, k);
        self.sync_dense_tables();
        ids
    }

    /// Handles a request with **alternate-path selection**: candidate
    /// paths between `from` and `to` are tried in descending order of
    /// residual bandwidth (the path-wide view only the broker has), and
    /// the first admissible one carries the flow. Returns the reservation
    /// and the chosen path.
    ///
    /// The request's `path` field is ignored and replaced per candidate.
    ///
    /// # Errors
    ///
    /// Returns the rejection from the *best* candidate (the one with the
    /// most residual bandwidth) when none admits, or
    /// [`Reject::NoRoute`] when routing yields no candidate path at all.
    pub fn request_with_alternates(
        &mut self,
        now: Time,
        req: &FlowRequest,
        from: NodeId,
        to: NodeId,
        k: usize,
    ) -> Result<(Reservation, PathId), Reject> {
        let mut candidates = self.paths_between(from, to, k);
        if candidates.is_empty() {
            return Err(Reject::NoRoute);
        }
        candidates.sort_by_key(|pid| std::cmp::Reverse(self.path_residual(*pid)));
        let mut first_err = None;
        for pid in candidates {
            let mut attempt = req.clone();
            attempt.path = pid;
            match self.request(now, &attempt) {
                Ok(res) => return Ok((res, pid)),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.expect("at least one candidate was tried"))
    }

    /// Registers an explicit route.
    pub fn register_route(&mut self, route: &[LinkId]) -> PathId {
        let id = self
            .routing
            .register_route(&self.nodes, &mut self.paths, route);
        self.sync_dense_tables();
        id
    }

    /// The node MIB (read access for experiments and tests).
    #[must_use]
    pub fn nodes(&self) -> &NodeMib {
        &self.nodes
    }

    /// The path MIB.
    #[must_use]
    pub fn paths(&self) -> &PathMib {
        &self.paths
    }

    /// The flow MIB.
    #[must_use]
    pub fn flows(&self) -> &FlowMib {
        &self.flows
    }

    /// The imported topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.routing.topology()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &BrokerStats {
        &self.stats
    }

    /// Minimal residual bandwidth along a path, `C_res^P`.
    #[must_use]
    pub fn path_residual(&self, path: PathId) -> Rate {
        self.paths.path(path).residual(&self.nodes)
    }

    /// Flips a link's operational state. Down blocks **new** admissions
    /// over the link (its residual reads zero, failing every rate-based
    /// and EDF test) while existing reservations ride out the outage
    /// and release normally — the broker rejects, it does not revoke.
    /// Bumps the epoch of every path crossing the link so cached
    /// seqlock summaries go stale and the next decide re-reads the MIB.
    ///
    /// Transient state: not persisted, and cleared by a restore.
    ///
    /// # Panics
    ///
    /// Panics on a link reference outside the imported topology.
    pub fn set_link_state(&mut self, link: LinkRef, up: bool) {
        self.nodes.link_mut(link).set_down(!up);
        self.paths.touch_link(link);
    }

    /// Whether a link is currently up.
    ///
    /// # Panics
    ///
    /// Panics on a link reference outside the imported topology.
    #[must_use]
    pub fn link_up(&self, link: LinkRef) -> bool {
        !self.nodes.link(link).is_down()
    }

    /// The macroflow serving (class, path), if any — a monitoring entry
    /// point, so the wire-level class number is interned here.
    #[must_use]
    pub fn macroflow(&self, class: u32, path: PathId) -> Option<&MacroState> {
        let class_row = self.class_interner.resolve(u64::from(class))?;
        let idx = self.macro_slot(Self::path_row(path), class_row)?;
        self.macroflows.get(idx)
    }

    /// Macroflow lookup by wire id (monitoring boundary: one interner
    /// probe).
    #[must_use]
    pub fn macroflow_by_id(&self, id: FlowId) -> Option<&MacroState> {
        self.macroflows.get(self.macro_interner.resolve(id.0)?)
    }

    /// Iterates over all live macroflows (monitoring / invariant checks).
    pub fn macroflows(&self) -> impl Iterator<Item = &MacroState> {
        self.macroflows.iter().map(|(_, m)| m)
    }

    /// Earliest pending contingency timer across all macroflows.
    #[must_use]
    pub fn next_expiry(&self) -> Option<Time> {
        self.macroflows
            .iter()
            .filter_map(|(_, m)| m.contingency.next_expiry())
            .min()
    }

    /// Occupancy of the dense stores (interner + arena telemetry).
    #[must_use]
    pub fn store_occupancy(&self) -> StoreOccupancy {
        StoreOccupancy {
            interned_flows: self.flows.len() as u64,
            flow_slots: self.flows.slot_count() as u64,
            macroflows: self.macroflows.len() as u64,
            macroflow_slots: self.macroflows.slot_count() as u64,
            paths: self.paths.len() as u64,
        }
    }

    /// Exports the broker's full dynamic state as a serializable
    /// [`BrokerImage`]: link reservation tables, the flow and macroflow
    /// arenas with generation counters and free lists intact, the
    /// `(path × class)` macroflow registry, the macroflow id cursor,
    /// and the admission counters. Deterministic: two brokers that
    /// applied the same operation sequence export equal images.
    ///
    /// Derived state — path summary caches, epoch stamps, interners —
    /// is *not* exported; [`Broker::restore_image`] rebuilds or
    /// cold-starts it.
    #[must_use]
    pub fn export_image(&self) -> BrokerImage {
        let links = (0..self.nodes.link_count())
            .map(|i| {
                let link = self.nodes.link(LinkRef(i));
                LinkImage {
                    reserved: link.reserved(),
                    edf: link
                        .edf_classes()
                        .map(|(d, c)| EdfEntryImage::from_class(d, &c))
                        .collect(),
                }
            })
            .collect();
        let (raw_flows, flow_free) = self.flows.export_raw();
        let flow_slots = raw_flows
            .into_iter()
            .map(|slot| match slot {
                RawSlot::Vacant { next_generation } => FlowSlotImage::Vacant { next_generation },
                RawSlot::Occupied {
                    generation,
                    value: (id, record),
                } => FlowSlotImage::Occupied {
                    generation,
                    flow: id.0,
                    record: FlowRecordImage::from_record(&record),
                },
            })
            .collect();
        let (raw_macros, macro_free) = self.macroflows.export_raw();
        let macro_slots = raw_macros
            .into_iter()
            .map(|slot| match slot {
                RawSlot::Vacant { next_generation } => MacroSlotImage::Vacant { next_generation },
                RawSlot::Occupied { generation, value } => MacroSlotImage::Occupied {
                    generation,
                    state: MacroImage {
                        id: value.id.0,
                        class: value.class,
                        path: value.path,
                        profile: value.profile,
                        reserved: value.reserved,
                        members: value.members,
                        grants: value.contingency.grants().to_vec(),
                        dissolving: value.dissolving,
                    },
                },
            })
            .collect();
        BrokerImage {
            links,
            flow_slots,
            flow_free,
            macro_slots,
            macro_free,
            macro_registry: self
                .macro_slots
                .iter()
                .map(|slot| slot.map(|idx| idx.to_bits()))
                .collect(),
            next_macro: self.next_macro,
            stats: self.stats,
        }
    }

    /// Overwrites the broker's dynamic state from a snapshot image.
    ///
    /// The broker must have been constructed with the **same topology,
    /// routes, and configuration** as the one that exported the image:
    /// link rows, path rows, and class rows are positional. After
    /// restore, every handle and wire id resolves exactly as it did in
    /// the original; summary caches start cold and are recomputed on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics when the image's link or registry dimensions do not match
    /// this broker's (snapshot from a different domain), or when it
    /// references a service class this broker does not offer.
    pub fn restore_image(&mut self, image: &BrokerImage) {
        assert_eq!(
            image.links.len(),
            self.nodes.link_count(),
            "snapshot link table does not match the broker's topology"
        );
        for (row, link_image) in image.links.iter().enumerate() {
            self.nodes.link_mut(LinkRef(row)).restore_dynamic(
                link_image.reserved,
                link_image.edf.iter().map(EdfEntryImage::to_entry),
            );
        }
        let flow_slots = image
            .flow_slots
            .iter()
            .map(|slot| match slot {
                FlowSlotImage::Vacant { next_generation } => RawSlot::Vacant {
                    next_generation: *next_generation,
                },
                FlowSlotImage::Occupied {
                    generation,
                    flow,
                    record,
                } => RawSlot::Occupied {
                    generation: *generation,
                    value: (FlowId(*flow), record.to_record()),
                },
            })
            .collect();
        self.flows = FlowMib::from_raw(flow_slots, image.flow_free.clone());
        let macro_slots = image
            .macro_slots
            .iter()
            .map(|slot| match slot {
                MacroSlotImage::Vacant { next_generation } => RawSlot::Vacant {
                    next_generation: *next_generation,
                },
                MacroSlotImage::Occupied { generation, state } => {
                    let class_row = self
                        .class_interner
                        .resolve(u64::from(state.class))
                        .expect("snapshot references a service class this broker does not offer");
                    RawSlot::Occupied {
                        generation: *generation,
                        value: MacroState {
                            id: FlowId(state.id),
                            class: state.class,
                            class_row,
                            path: state.path,
                            profile: state.profile,
                            reserved: state.reserved,
                            members: state.members,
                            contingency: ContingencySet::from_grants(state.grants.iter().copied()),
                            dissolving: state.dissolving,
                        },
                    }
                }
            })
            .collect();
        self.macroflows = Slab::from_raw(macro_slots, image.macro_free.clone());
        self.macro_interner =
            Interner::from_entries(self.macroflows.iter().map(|(idx, m)| (m.id.0, idx)));
        self.sync_dense_tables();
        assert_eq!(
            image.macro_registry.len(),
            self.macro_slots.len(),
            "snapshot macroflow registry does not match the broker's path × class grid"
        );
        self.macro_slots = image
            .macro_registry
            .iter()
            .map(|slot| slot.map(MacroIdx::from_bits))
            .collect();
        self.next_macro = image.next_macro;
        self.stats = image.stats;
        self.summaries.invalidate_all();
    }

    /// The `(path row × class row)` registry slot, `None` when nothing
    /// serves the pair (or the pair is out of range).
    fn macro_slot(&self, path_row: usize, class_row: usize) -> Option<MacroIdx> {
        self.macro_slots
            .get(path_row * self.classes.len() + class_row)
            .copied()
            .flatten()
    }

    fn macro_slot_set(&mut self, path_row: usize, class_row: usize, value: Option<MacroIdx>) {
        let slot = path_row * self.classes.len() + class_row;
        self.macro_slots[slot] = value;
    }

    /// The cached QoS summary for a path, recomputed only when the
    /// path's epoch has moved past the cached copy's stamp.
    ///
    /// **Lock-free**: a hit is one seqlock snapshot of the path's
    /// summary cell — zero per-link MIB reads and zero lock
    /// acquisitions. A miss (empty, stale, oversized, or torn past the
    /// retry bound) recomputes from the link rows and races to publish
    /// the fresh summary; CAS losers keep their stack-local copy.
    #[must_use]
    pub fn path_summary(&self, path: PathId) -> PathSummary {
        let epoch = self.paths.epoch(path);
        let cell = self
            .summaries
            .cell(Self::path_row(path))
            .expect("unknown path id");
        if let Some(cached) = cell.read(&self.seqlock_retries) {
            if cached.epoch == epoch {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return cached;
            }
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let fresh = self.paths.path(path).summarize(&self.nodes, epoch);
        cell.try_publish(&fresh);
        fresh
    }

    /// Precomputes and publishes the summary cell of **every**
    /// registered path — one chunked sweep over the contiguous
    /// `PathMib` rows, so the first wave of decides after startup or
    /// recovery hits warm cells instead of each paying a miss.
    pub fn warm_summaries(&self) {
        for row in 0..self.paths.len() {
            let id = PathId(row as u64);
            let fresh = self
                .paths
                .path(id)
                .summarize(&self.nodes, self.paths.epoch(id));
            if let Some(cell) = self.summaries.cell(row) {
                cell.try_publish(&fresh);
            }
        }
    }

    /// Path-summary cache effectiveness: `(hits, misses)` since
    /// construction.
    #[must_use]
    pub fn path_cache_counters(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Torn seqlock snapshots this broker's own summary probes have
    /// retried (the lock-free decide handles count their own).
    #[must_use]
    pub fn seqlock_retries(&self) -> u64 {
        self.seqlock_retries.load(Ordering::Relaxed)
    }

    /// Shared view of the summary cells for lock-free decide handles.
    #[must_use]
    pub fn summary_table(&self) -> Arc<SummaryTable> {
        Arc::clone(&self.summaries)
    }

    /// Shared view of the path epoch lane for lock-free decide handles.
    #[must_use]
    pub fn epoch_lane(&self) -> Arc<crate::mib::EpochLane> {
        self.paths.epoch_lane()
    }

    /// Handles a new-flow service request: [`Broker::decide`] followed
    /// immediately by [`Broker::commit`] (§2.2's two phases,
    /// back-to-back — the epoch stamp is necessarily fresh, so the
    /// behaviour is exactly the classic monolithic admission).
    ///
    /// # Errors
    ///
    /// Returns the applicable [`Reject`] cause.
    pub fn request(&mut self, now: Time, req: &FlowRequest) -> Result<Reservation, Reject> {
        let plan = self.decide(req);
        self.commit(now, &plan)
    }

    /// The admissibility phase: policy control plus the path-wide
    /// resource test, **read-only** (`&self`) and against the cached
    /// path summary — for rate-based-only paths the whole decide is
    /// O(1) with no link-row reads on a cache hit. The returned plan is
    /// stamped with the path's epoch for [`Broker::commit`] to
    /// revalidate.
    #[must_use]
    pub fn decide(&self, req: &FlowRequest) -> AdmissionPlan {
        self.decide_with_intent(req.clone(), PlanIntent::Admission)
    }

    /// Decide-phase counterpart of [`Broker::reserve_exact`]: validates
    /// an externally computed `⟨rate, delay⟩` pair against this
    /// broker's MIBs without booking it — the child-broker half of a
    /// hierarchical deployment (see [`crate::hierarchy`]). Policy
    /// control is not applied: the pair was authorized by the parent.
    #[must_use]
    pub fn decide_exact(
        &self,
        flow: FlowId,
        profile: &TrafficProfile,
        rate: Rate,
        delay: Nanos,
        path: PathId,
    ) -> AdmissionPlan {
        let request = FlowRequest {
            flow,
            profile: *profile,
            d_req: Nanos::MAX,
            service: ServiceKind::PerFlow,
            path,
        };
        self.decide_with_intent(request, PlanIntent::Exact { rate, delay })
    }

    fn decide_with_intent(&self, request: FlowRequest, intent: PlanIntent) -> AdmissionPlan {
        let epoch = self.paths.epoch(request.path);
        let verdict = match self.global_verdict(&request, intent) {
            Some(cause) => Err(cause),
            None => self.intent_verdict(&request, intent),
        };
        AdmissionPlan {
            request,
            intent,
            epoch,
            verdict,
        }
    }

    /// Preconditions that depend on *global* broker state (the flow MIB)
    /// rather than path state. They are outside the epoch's protection —
    /// a flow admitted or released on an unrelated path changes them
    /// without touching this path — so commit re-checks them live.
    fn global_verdict(&self, request: &FlowRequest, intent: PlanIntent) -> Option<Reject> {
        if self.flows.get(request.flow).is_some() {
            return Some(Reject::DuplicateFlow);
        }
        if matches!(intent, PlanIntent::Admission)
            && !self
                .policy
                .permits(&request.profile, request.d_req, self.flows.len())
        {
            return Some(Reject::Policy);
        }
        None
    }

    /// The resource test for a plan's intent (global preconditions
    /// already checked).
    fn intent_verdict(&self, req: &FlowRequest, intent: PlanIntent) -> Result<PlanAction, Reject> {
        match intent {
            PlanIntent::Admission => match req.service {
                ServiceKind::PerFlow => self.plan_per_flow(req),
                ServiceKind::Class(class) => self.plan_class_join(req, class),
            },
            PlanIntent::Exact { rate, delay } => self.validate_exact(req, rate, delay),
        }
    }

    fn plan_per_flow(&self, req: &FlowRequest) -> Result<PlanAction, Reject> {
        let path = self.paths.path(req.path);
        let summary = self.path_summary(req.path);
        let (rate, delay) = if path.spec.has_delay_hops() {
            let pair =
                mixed::admit_with_summary(&req.profile, req.d_req, path, &self.nodes, &summary)?;
            (pair.rate, pair.delay)
        } else {
            let range =
                rate_based::admit_with_residual(&req.profile, req.d_req, path, summary.c_res)?;
            (range.low, Nanos::ZERO)
        };
        Ok(PlanAction::PerFlow { rate, delay })
    }

    fn plan_class_join(&self, req: &FlowRequest, class_id: u32) -> Result<PlanAction, Reject> {
        // The request's class id came off the wire: intern it here, and
        // carry the dense row in the plan so commit never re-hashes it.
        let class_row = self
            .class_interner
            .resolve(u64::from(class_id))
            .ok_or(Reject::UnknownClass)?;
        let class = self.classes[class_row];
        let existing = self.live_macroflow(class_row, req.path);
        let path = self.paths.path(req.path);
        let current = existing.map(|(_, m)| (&m.profile, m.reserved));
        let join = plan_join(&class, path, &self.nodes, current, &req.profile)?;
        Ok(PlanAction::ClassJoin {
            class,
            class_row,
            join,
        })
    }

    fn validate_exact(
        &self,
        req: &FlowRequest,
        rate: Rate,
        delay: Nanos,
    ) -> Result<PlanAction, Reject> {
        let p = self.paths.path(req.path);
        if rate > p.residual(&self.nodes) {
            return Err(Reject::Bandwidth);
        }
        for (link, _) in p.delay_links(&self.nodes) {
            if !link.edf_admissible(rate, delay, req.profile.l_max) {
                return Err(Reject::Schedulability);
            }
        }
        Ok(PlanAction::Exact { rate, delay })
    }

    /// The macroflow currently serving `(class, path)`, excluding one in
    /// its dissolution transient. Both keys are dense rows, so the probe
    /// is a single vector index — no hashing.
    fn live_macroflow(&self, class_row: usize, path: PathId) -> Option<(MacroIdx, &MacroState)> {
        let idx = self.macro_slot(Self::path_row(path), class_row)?;
        self.macroflows
            .get(idx)
            .filter(|m| !m.dissolving)
            .map(|m| (idx, m))
    }

    /// The bookkeeping phase: applies a decided plan to the MIBs.
    ///
    /// If the plan's epoch stamp no longer matches the path's live
    /// epoch — some reservation touched the path, or a link it shares,
    /// between decide and commit — the plan is **re-decided** against
    /// fresh state first ([`BrokerStats::plan_retries`]); a decide-time
    /// admit that turns into a rejection is counted as an abort
    /// ([`BrokerStats::plan_aborts`]). Either way the outcome is
    /// exactly what a monolithic admission at commit time would produce,
    /// which is what makes the pipeline serially equivalent.
    ///
    /// # Errors
    ///
    /// Returns the plan's (re-validated) [`Reject`] cause.
    pub fn commit(&mut self, now: Time, plan: &AdmissionPlan) -> Result<Reservation, Reject> {
        self.stats.requested += 1;
        let result = self.commit_inner(now, plan);
        match &result {
            Ok(_) => self.stats.admitted += 1,
            Err(Reject::Policy) => self.stats.rejected_policy += 1,
            Err(Reject::DelayInfeasible) => self.stats.rejected_delay += 1,
            Err(Reject::Bandwidth) => self.stats.rejected_bandwidth += 1,
            Err(Reject::Schedulability) => self.stats.rejected_sched += 1,
            Err(Reject::UnknownClass) => self.stats.rejected_unknown_class += 1,
            Err(Reject::DuplicateFlow) => self.stats.rejected_duplicate += 1,
            // Overloaded is a queue verdict, NoRoute a routing verdict,
            // and PeerUnreachable a federation-fabric verdict; none is
            // produced by decide or commit.
            Err(Reject::Overloaded | Reject::NoRoute | Reject::PeerUnreachable) => {}
        }
        result
    }

    fn commit_inner(&mut self, now: Time, plan: &AdmissionPlan) -> Result<Reservation, Reject> {
        if plan.epoch == self.paths.epoch(plan.request.path) {
            return self.apply(now, plan);
        }
        self.stats.plan_retries += 1;
        let fresh = self.decide_with_intent(plan.request.clone(), plan.intent);
        if plan.is_admit() && !fresh.is_admit() {
            self.stats.plan_aborts += 1;
        }
        self.apply(now, &fresh)
    }

    /// Applies a plan whose epoch stamp matches the live path epoch.
    /// Global preconditions are re-checked live (see
    /// [`Broker::global_verdict`]); path-state verdicts are trusted —
    /// the epoch match guarantees the state they were computed from is
    /// the state being written.
    fn apply(&mut self, now: Time, plan: &AdmissionPlan) -> Result<Reservation, Reject> {
        let req = &plan.request;
        if let Some(cause) = self.global_verdict(req, plan.intent) {
            return Err(cause);
        }
        let action = match plan.verdict {
            Ok(action) => action,
            // Decide refused on a global precondition that has since
            // cleared, so the resource verdict was never computed.
            // Under a matching epoch, computing it now is identical to
            // having computed it at decide time.
            Err(Reject::DuplicateFlow | Reject::Policy) => self.intent_verdict(req, plan.intent)?,
            Err(cause) => return Err(cause),
        };
        match action {
            PlanAction::PerFlow { rate, delay } | PlanAction::Exact { rate, delay } => {
                Ok(self.apply_per_flow(req, rate, delay))
            }
            PlanAction::ClassJoin {
                class,
                class_row,
                join,
            } => Ok(self.apply_class_join(now, req, &class, class_row, &join)),
        }
    }

    fn apply_per_flow(&mut self, req: &FlowRequest, rate: Rate, delay: Nanos) -> Reservation {
        let links = self.paths.path(req.path).links.clone();
        for l in &links {
            self.nodes.link_mut(*l).reserve(rate);
            if self.nodes.link(*l).kind == HopKind::DelayBased {
                self.nodes
                    .link_mut(*l)
                    .add_edf(rate, delay, req.profile.l_max);
            }
        }
        self.flows.insert(
            req.flow,
            FlowRecord {
                profile: req.profile,
                d_req: req.d_req,
                path: req.path,
                service: FlowService::PerFlow { rate, delay },
            },
        );
        self.paths.touch(req.path);
        Reservation {
            flow: req.flow,
            conditioned_flow: req.flow,
            rate,
            delay,
            contingency: Rate::ZERO,
            contingency_expires: None,
        }
    }

    fn apply_class_join(
        &mut self,
        now: Time,
        req: &FlowRequest,
        class: &ClassSpec,
        class_row: usize,
        plan: &JoinPlan,
    ) -> Reservation {
        // The epoch match guarantees the macroflow registry for this
        // path is exactly as decide saw it, so re-reading it here
        // recovers the decide-time state without copying it into the
        // plan. Allocate the delta (rate increment + contingency) on
        // every path link; adjust or create the EDF entry at the class
        // delay.
        let existing = self.live_macroflow(class_row, req.path).map(|(idx, _)| idx);
        let links = self.paths.path(req.path).links.clone();
        let l_pmax = self.paths.path(req.path).l_pmax;
        let delta = plan.increment.saturating_add(plan.contingency);

        let (macro_idx, old_alloc, expires) = match existing {
            Some(idx) => {
                // d_edge^old for the bounding period uses the macroflow's
                // state before this join (eq. 17).
                let m = self.macroflows.get(idx).expect("existing macroflow");
                let d_edge_old = edge_delay_bound(&m.profile, m.reserved).unwrap_or(class.d_req);
                let expires = match self.contingency_policy {
                    ContingencyPolicy::Bounding => Some(
                        now + bounding_period(
                            d_edge_old,
                            m.reserved,
                            m.contingency.total(),
                            plan.contingency,
                        ),
                    ),
                    ContingencyPolicy::Feedback => None,
                };
                (idx, m.allocated(), expires)
            }
            None => {
                let id = FlowId(self.next_macro);
                self.next_macro += 1;
                let idx = self.macroflows.insert(MacroState {
                    id,
                    class: class.id,
                    class_row,
                    path: req.path,
                    profile: plan.new_profile,
                    reserved: Rate::ZERO,
                    members: 0,
                    contingency: ContingencySet::new(),
                    dissolving: false,
                });
                self.macro_interner.bind(id.0, idx);
                self.macro_slot_set(Self::path_row(req.path), class_row, Some(idx));
                (idx, Rate::ZERO, None)
            }
        };

        for l in &links {
            self.nodes.link_mut(*l).reserve(delta);
            if self.nodes.link(*l).kind == HopKind::DelayBased {
                if old_alloc.is_zero() {
                    self.nodes.link_mut(*l).add_edf(
                        old_alloc.saturating_add(delta),
                        class.cd,
                        l_pmax,
                    );
                } else {
                    self.nodes.link_mut(*l).adjust_edf_rate(
                        class.cd,
                        old_alloc,
                        old_alloc.saturating_add(delta),
                    );
                }
            }
        }

        let m = self
            .macroflows
            .get_mut(macro_idx)
            .expect("macroflow exists");
        m.profile = plan.new_profile;
        m.reserved = plan.new_rate;
        m.members += 1;
        if !plan.contingency.is_zero() {
            m.contingency.add(Grant {
                amount: plan.contingency,
                granted_at: now,
                expires,
            });
            self.stats.grants += 1;
        }
        let macro_id = m.id;
        let total_contingency = m.contingency.total();

        self.flows.insert(
            req.flow,
            FlowRecord {
                profile: req.profile,
                d_req: class.d_req,
                path: req.path,
                service: FlowService::ClassMember {
                    macroflow: macro_idx,
                },
            },
        );
        self.paths.touch(req.path);
        Reservation {
            flow: req.flow,
            conditioned_flow: macro_id,
            rate: plan.new_rate,
            delay: class.cd,
            contingency: total_contingency,
            contingency_expires: expires,
        }
    }

    /// Books an externally computed per-flow reservation `⟨rate, delay⟩`
    /// verbatim, after validating it against this broker's MIBs — a
    /// [`Broker::decide_exact`] committed on the spot.
    ///
    /// # Errors
    ///
    /// * [`Reject::DuplicateFlow`] — the id is already booked here;
    /// * [`Reject::Bandwidth`] — the rate exceeds the path's residual;
    /// * [`Reject::Schedulability`] — a delay-based hop cannot accept
    ///   the pair.
    pub fn reserve_exact(
        &mut self,
        now: Time,
        flow: FlowId,
        profile: &TrafficProfile,
        rate: Rate,
        delay: Nanos,
        path: PathId,
    ) -> Result<(), Reject> {
        let plan = self.decide_exact(flow, profile, rate, delay, path);
        self.commit(now, &plan).map(|_| ())
    }

    /// Releases a flow. For a class member this begins the leave
    /// transient: the macroflow keeps its allocation, with `r^α − r^{α'}`
    /// reclassified as contingency until the period ends. Returns the
    /// macroflow's updated reservation for class members, `None` for
    /// per-flow service.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownFlow`] if the id is not in the flow MIB.
    pub fn release(&mut self, now: Time, flow: FlowId) -> Result<Option<Reservation>, UnknownFlow> {
        let record = self.flows.remove(flow).ok_or(UnknownFlow(flow))?;
        self.stats.released += 1;
        match record.service {
            FlowService::PerFlow { rate, delay } => {
                let links = self.paths.path(record.path).links.clone();
                for l in &links {
                    self.nodes.link_mut(*l).release(rate);
                    if self.nodes.link(*l).kind == HopKind::DelayBased {
                        self.nodes
                            .link_mut(*l)
                            .remove_edf(rate, delay, record.profile.l_max);
                    }
                }
                self.paths.touch(record.path);
                Ok(None)
            }
            FlowService::ClassMember { macroflow } => {
                // The record carries the macroflow's dense handle, so the
                // whole leave path runs without hashing a wire id.
                let class = {
                    let m = self.macroflows.get(macroflow).expect("member's macroflow");
                    self.classes[m.class_row]
                };
                let m = self.macroflows.get(macroflow).expect("member's macroflow");
                let path = self.paths.path(m.path);
                let plan = plan_leave(&class, path, (&m.profile, m.reserved), &record.profile);

                let d_edge_old = edge_delay_bound(&m.profile, m.reserved).unwrap_or(class.d_req);
                let expires = match self.contingency_policy {
                    ContingencyPolicy::Bounding => Some(
                        now + bounding_period(
                            d_edge_old,
                            m.reserved,
                            m.contingency.total(),
                            plan.contingency,
                        ),
                    ),
                    ContingencyPolicy::Feedback => None,
                };

                let m = self.macroflows.get_mut(macroflow).expect("macroflow");
                m.members -= 1;
                m.reserved = plan.new_rate;
                match plan.new_profile {
                    Some(p) => m.profile = p,
                    None => m.dissolving = true,
                }
                if !plan.contingency.is_zero() {
                    m.contingency.add(Grant {
                        amount: plan.contingency,
                        granted_at: now,
                        expires,
                    });
                    self.stats.grants += 1;
                }
                // Total allocation is unchanged during the leave
                // transient — no link updates until expiry/feedback —
                // but the macroflow's registry state changed, and
                // decide reads that live, so the path epoch must move.
                self.paths.touch(record.path);
                let reservation = Reservation {
                    flow,
                    conditioned_flow: m.id,
                    rate: plan.new_rate,
                    delay: class.cd,
                    contingency: m.contingency.total(),
                    contingency_expires: expires,
                };
                self.maybe_teardown_macro(macroflow);
                Ok(Some(reservation))
            }
        }
    }

    /// Processes contingency timer expiries up to `now` (bounding
    /// policy). Returns `(macroflow, released)` pairs.
    pub fn tick(&mut self, now: Time) -> Vec<(FlowId, Rate)> {
        let mut out = Vec::new();
        for idx in self.macroflows.handles() {
            let (wire, released) = {
                let m = self
                    .macroflows
                    .get_mut(idx)
                    .expect("iterating live handles");
                (m.id, m.contingency.expire(now))
            };
            if !released.is_zero() {
                self.stats.grant_expiries += 1;
                self.release_macro_bandwidth(idx, released);
                out.push((wire, released));
            }
            self.maybe_teardown_macro(idx);
        }
        out
    }

    /// Edge feedback: the macroflow's conditioner buffer drained, so all
    /// of its contingency bandwidth can be reset (§4.2.1). Returns the
    /// bandwidth released.
    pub fn edge_buffer_empty(&mut self, _now: Time, macroflow: FlowId) -> Rate {
        // RPT feedback arrives keyed by the macroflow's wire id — a
        // boundary crossing, so this is one of the sanctioned interner
        // probes.
        let Some(idx) = self.macro_interner.resolve(macroflow.0) else {
            return Rate::ZERO;
        };
        let Some(m) = self.macroflows.get_mut(idx) else {
            return Rate::ZERO;
        };
        let released = m.contingency.reset();
        if !released.is_zero() {
            self.stats.grant_resets += 1;
            self.release_macro_bandwidth(idx, released);
        }
        self.maybe_teardown_macro(idx);
        released
    }

    /// Releases `amount` of a macroflow's allocation from its path links,
    /// keeping the EDF aggregates consistent.
    fn release_macro_bandwidth(&mut self, macroflow: MacroIdx, amount: Rate) {
        let (path_id, class_row, new_alloc) = {
            let m = self.macroflows.get(macroflow).expect("known macroflow");
            (m.path, m.class_row, m.allocated())
        };
        let cd = self.classes[class_row].cd;
        let links = self.paths.path(path_id).links.clone();
        for l in &links {
            self.nodes.link_mut(*l).release(amount);
            if self.nodes.link(*l).kind == HopKind::DelayBased {
                self.nodes.link_mut(*l).adjust_edf_rate(
                    cd,
                    new_alloc.saturating_add(amount),
                    new_alloc,
                );
            }
        }
        self.paths.touch(path_id);
    }

    /// Tears down a dissolving macroflow once nothing is allocated.
    fn maybe_teardown_macro(&mut self, macroflow: MacroIdx) {
        let Some(m) = self.macroflows.get(macroflow) else {
            return;
        };
        if !(m.dissolving && m.contingency.is_empty() && m.reserved.is_zero()) {
            return;
        }
        let (wire, class_row, path_id) = (m.id, m.class_row, m.path);
        let cd = self.classes[class_row].cd;
        let l_pmax = self.paths.path(path_id).l_pmax;
        // Remove the (now zero-rate) EDF entry so its Lmax burst term no
        // longer weighs on the links.
        let links = self.paths.path(path_id).links.clone();
        for l in &links {
            if self.nodes.link(*l).kind == HopKind::DelayBased {
                self.nodes.link_mut(*l).remove_edf(Rate::ZERO, cd, l_pmax);
            }
        }
        self.macroflows.remove(macroflow);
        self.macro_interner.unbind(wire.0);
        // A successor macroflow may already serve (class, path) — joins
        // arriving during the dissolution create one — so only clear the
        // slot if it still points at the flow being torn down.
        let path_row = Self::path_row(path_id);
        if self.macro_slot(path_row, class_row) == Some(macroflow) {
            self.macro_slot_set(path_row, class_row, None);
        }
        self.paths.touch(path_id);
    }
}

/// Error: the flow id is not in the flow MIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownFlow(pub FlowId);

impl core::fmt::Display for UnknownFlow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "unknown flow {}", self.0)
    }
}

impl std::error::Error for UnknownFlow {}
