//! The IntServ/Guaranteed-Service baseline (§5's comparison scheme).
//!
//! The conventional architecture the paper argues against: QoS control is
//! **hop-by-hop**. Every router keeps its own reservation state (per-flow
//! rate for VC hops; per-flow ⟨rate, local deadline⟩ for RC-EDF hops) and
//! runs a *local* admission test as the setup message travels the path,
//! tearing down partial state on failure — the RSVP discipline, including
//! soft-state refresh bookkeeping.
//!
//! The reserved rate is computed from the IETF Guaranteed Service delay
//! formula against the WFQ reference system (RFC 2212), with per-hop
//! error terms `C_i = Lmax`, `D_i = Lmax*/C_link`. For a dual-token-
//! bucket source and `ρ ≤ R ≤ P` this is
//!
//! ```text
//! d_e2e = T_on (P−R)/R + (L + C_tot)/R + D_tot
//!       = T_on (P−R)/R + (h+1)·L/R + D_tot ,
//! ```
//!
//! numerically identical to the VTRS rate-based bound — which is why
//! Table 2 shows IntServ/GS and per-flow BB/VTRS admitting the same call
//! counts on rate-based paths. On mixed paths GS first fixes `R` from the
//! all-hops WFQ formula and then derives the RC-EDF local deadline
//! `d_i = L/R`; the broker's path-oriented algorithm can instead trade
//! rate against deadline path-wide, which is the §5 "slightly smaller
//! average reserved rate" effect (Figure 9).

use std::collections::HashMap;

use netsim::topology::Topology;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::delay::min_rate_rate_based;
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;
use vtrs::reference::{HopKind, PathSpec};

use crate::mib::LinkQos;
use crate::signaling::Reject;

/// Per-router (per-link) reservation state under the hop-by-hop model.
#[derive(Debug)]
struct HopState {
    qos: LinkQos,
    /// Installed per-flow entries — the state footprint the BB
    /// architecture eliminates from the core.
    flows: HashMap<FlowId, (Rate, Nanos, Bits)>,
}

/// A flow's end-to-end record at the IntServ control plane.
#[derive(Debug, Clone)]
struct GsFlow {
    route: Vec<usize>,
    rate: Rate,
    local_deadline: Nanos,
    /// Soft-state epoch of the last refresh.
    refreshed_at: Time,
}

/// Counters for the comparison benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntServStats {
    /// Signaling messages processed (setup, per-hop, teardown, refresh).
    pub messages: u64,
    /// Admissions.
    pub admitted: u64,
    /// Rejections.
    pub rejected: u64,
    /// Per-hop state entries currently installed across all routers.
    pub installed_entries: u64,
    /// Soft-state refresh messages sent.
    pub refreshes: u64,
}

/// The IntServ/GS control plane for a domain.
#[derive(Debug)]
pub struct IntServ {
    hops: Vec<HopState>,
    flows: HashMap<FlowId, GsFlow>,
    stats: IntServStats,
    /// Soft-state refresh period (RSVP default 30 s).
    pub refresh_period: Nanos,
}

impl IntServ {
    /// Builds the hop-by-hop control plane over a topology: every link
    /// gets its own QoS state and local admission logic.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        let hops = topo
            .links()
            .iter()
            .map(|l| HopState {
                qos: LinkQos::new(
                    l.capacity,
                    l.scheduler.kind(),
                    l.scheduler.psi(l.capacity, l.max_packet),
                    l.prop_delay,
                    l.max_packet,
                ),
                flows: HashMap::new(),
            })
            .collect();
        IntServ {
            hops,
            flows: HashMap::new(),
            stats: IntServStats::default(),
            refresh_period: Nanos::from_secs(30),
        }
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &IntServStats {
        &self.stats
    }

    /// The GS reserved rate for a request over `spec` — the WFQ-reference
    /// formula treating every hop as rate-based.
    ///
    /// Returns `None` when the requirement is infeasible below the peak
    /// rate (GS would then need `R > P`, which the paper's comparison —
    /// like the VTRS edge conditioner — does not use).
    #[must_use]
    pub fn gs_rate(profile: &TrafficProfile, d_req: Nanos, spec: &PathSpec) -> Option<Rate> {
        let r = min_rate_rate_based(profile, spec.h(), spec.d_tot(), d_req)?;
        let r = r.max(profile.rho);
        (r <= profile.peak).then_some(r)
    }

    /// Attempts a hop-by-hop reservation setup along `route` (link
    /// indices into the topology the control plane was built from).
    ///
    /// # Errors
    ///
    /// * [`Reject::DelayInfeasible`] — the GS formula yields no rate
    ///   ≤ `P`;
    /// * [`Reject::Bandwidth`] / [`Reject::Schedulability`] — a hop's
    ///   local test failed (partial reservations are torn down);
    /// * [`Reject::DuplicateFlow`] — the flow is already installed.
    pub fn request(
        &mut self,
        now: Time,
        flow: FlowId,
        profile: &TrafficProfile,
        d_req: Nanos,
        route: &[usize],
    ) -> Result<Rate, Reject> {
        if self.flows.contains_key(&flow) {
            return Err(Reject::DuplicateFlow);
        }
        let spec = PathSpec::new(route.iter().map(|i| self.hops[*i].qos.hop_spec()).collect());
        let rate = Self::gs_rate(profile, d_req, &spec).ok_or(Reject::DelayInfeasible)?;
        // RC-EDF local deadline derived from the WFQ reference rate.
        let local_deadline = profile.l_max.tx_time_ceil(rate);

        // Hop-by-hop setup: one message per hop; local test at each.
        let mut installed = Vec::new();
        for idx in route {
            self.stats.messages += 1;
            let kind = self.hops[*idx].qos.kind;
            let ok = {
                let hop = &self.hops[*idx];
                match kind {
                    HopKind::RateBased => rate <= hop.qos.residual(),
                    HopKind::DelayBased => {
                        hop.qos.edf_admissible(rate, local_deadline, profile.l_max)
                    }
                }
            };
            if !ok {
                // Teardown of partial state (one message per installed hop).
                for done in installed {
                    self.uninstall(done, flow);
                    self.stats.messages += 1;
                }
                self.stats.rejected += 1;
                return Err(match kind {
                    HopKind::RateBased => Reject::Bandwidth,
                    HopKind::DelayBased => Reject::Schedulability,
                });
            }
            let hop = &mut self.hops[*idx];
            hop.qos.reserve(rate);
            if hop.qos.kind == HopKind::DelayBased {
                hop.qos.add_edf(rate, local_deadline, profile.l_max);
            }
            hop.flows
                .insert(flow, (rate, local_deadline, profile.l_max));
            self.stats.installed_entries += 1;
            installed.push(*idx);
        }
        self.flows.insert(
            flow,
            GsFlow {
                route: route.to_vec(),
                rate,
                local_deadline,
                refreshed_at: now,
            },
        );
        self.stats.admitted += 1;
        self.stats.messages += 1; // confirmation back to the sender
        Ok(rate)
    }

    fn uninstall(&mut self, hop_idx: usize, flow: FlowId) {
        let hop = &mut self.hops[hop_idx];
        if let Some((rate, d, l_max)) = hop.flows.remove(&flow) {
            hop.qos.release(rate);
            if hop.qos.kind == HopKind::DelayBased {
                hop.qos.remove_edf(rate, d, l_max);
            }
            self.stats.installed_entries -= 1;
        }
    }

    /// Tears a flow down hop by hop.
    ///
    /// # Errors
    ///
    /// Fails when the flow is unknown.
    pub fn release(&mut self, flow: FlowId) -> Result<(), crate::broker::UnknownFlow> {
        let gs = self
            .flows
            .remove(&flow)
            .ok_or(crate::broker::UnknownFlow(flow))?;
        for idx in gs.route.clone() {
            self.uninstall(idx, flow);
            self.stats.messages += 1;
        }
        Ok(())
    }

    /// Soft-state refresh pass: every installed flow re-announces its
    /// reservation at every hop when its refresh period lapses — the
    /// recurring control traffic the paper's architecture avoids.
    /// Returns the number of refresh messages generated.
    pub fn refresh(&mut self, now: Time) -> u64 {
        let mut sent = 0;
        for gs in self.flows.values_mut() {
            if now.saturating_since(gs.refreshed_at) >= self.refresh_period {
                sent += gs.route.len() as u64;
                gs.refreshed_at = now;
            }
        }
        self.stats.refreshes += sent;
        self.stats.messages += sent;
        sent
    }

    /// Installed flow count (control-plane view).
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Reserved rate of an installed flow.
    #[must_use]
    pub fn flow_rate(&self, flow: FlowId) -> Option<Rate> {
        self.flows.get(&flow).map(|g| g.rate)
    }

    /// The RC-EDF local deadline assigned to an installed flow.
    #[must_use]
    pub fn flow_deadline(&self, flow: FlowId) -> Option<Nanos> {
        self.flows.get(&flow).map(|g| g.local_deadline)
    }

    /// Residual bandwidth at a hop.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range hop index.
    #[must_use]
    pub fn hop_residual(&self, idx: usize) -> Rate {
        self.hops[idx].qos.residual()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::{SchedulerSpec, TopologyBuilder};

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    fn topo(kinds: &[SchedulerSpec]) -> Topology {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<_> = (0..=kinds.len()).map(|i| b.node(format!("n{i}"))).collect();
        for (i, k) in kinds.iter().enumerate() {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                *k,
                Bits::from_bytes(1500),
            );
        }
        b.build()
    }

    fn rate_only() -> Topology {
        topo(&[SchedulerSpec::CsVc; 5])
    }

    fn mixed() -> Topology {
        topo(&[
            SchedulerSpec::CsVc,
            SchedulerSpec::CsVc,
            SchedulerSpec::VtEdf,
            SchedulerSpec::VtEdf,
            SchedulerSpec::CsVc,
        ])
    }

    fn fill(is: &mut IntServ, d_req_ms: u64) -> usize {
        let p = type0();
        let route: Vec<usize> = (0..5).collect();
        let mut n = 0;
        while is
            .request(
                Time::ZERO,
                FlowId(n as u64),
                &p,
                Nanos::from_millis(d_req_ms),
                &route,
            )
            .is_ok()
        {
            n += 1;
            assert!(n <= 40, "runaway admission");
        }
        n
    }

    #[test]
    fn gs_admits_30_at_244_and_27_at_219_rate_only() {
        let t = rate_only();
        assert_eq!(fill(&mut IntServ::new(&t), 2_440), 30);
        assert_eq!(fill(&mut IntServ::new(&t), 2_190), 27);
    }

    #[test]
    fn gs_admits_30_at_244_and_27_at_219_mixed() {
        // Table 2: IntServ/GS counts are identical in the mixed setting.
        let t = mixed();
        assert_eq!(fill(&mut IntServ::new(&t), 2_440), 30);
        assert_eq!(fill(&mut IntServ::new(&t), 2_190), 27);
    }

    #[test]
    fn failed_setup_leaves_no_partial_state() {
        let t = mixed();
        let mut is = IntServ::new(&t);
        let n = fill(&mut is, 2_440);
        let entries_full = is.stats().installed_entries;
        assert_eq!(entries_full, n as u64 * 5);
        // One more request fails at some hop; state count must be
        // unchanged afterwards.
        let p = type0();
        let route: Vec<usize> = (0..5).collect();
        assert!(is
            .request(
                Time::ZERO,
                FlowId(999),
                &p,
                Nanos::from_millis(2_440),
                &route
            )
            .is_err());
        assert_eq!(is.stats().installed_entries, entries_full);
        assert!(is.flow_rate(FlowId(999)).is_none());
    }

    #[test]
    fn release_frees_capacity_everywhere() {
        let t = rate_only();
        let mut is = IntServ::new(&t);
        let n = fill(&mut is, 2_440);
        assert_eq!(n, 30);
        is.release(FlowId(0)).unwrap();
        assert_eq!(is.stats().installed_entries, 29 * 5);
        // Capacity is back: one more admission succeeds.
        let p = type0();
        let route: Vec<usize> = (0..5).collect();
        assert!(is
            .request(
                Time::ZERO,
                FlowId(100),
                &p,
                Nanos::from_millis(2_440),
                &route
            )
            .is_ok());
    }

    #[test]
    fn soft_state_refresh_scales_with_flows_and_hops() {
        let t = rate_only();
        let mut is = IntServ::new(&t);
        let n = fill(&mut is, 2_440) as u64;
        assert_eq!(is.refresh(Time::from_nanos(1)), 0); // too early
        let later = Time::ZERO + Nanos::from_secs(30);
        assert_eq!(is.refresh(later), n * 5);
        // Immediately after, nothing is due.
        assert_eq!(is.refresh(later), 0);
    }

    #[test]
    fn rc_edf_deadline_follows_gs_rate() {
        let t = mixed();
        let mut is = IntServ::new(&t);
        let p = type0();
        let route: Vec<usize> = (0..5).collect();
        let r = is
            .request(Time::ZERO, FlowId(1), &p, Nanos::from_millis(2_190), &route)
            .unwrap();
        assert_eq!(r, Rate::from_bps(54_020));
        // d_local = L/R.
        let d = is.flow_deadline(FlowId(1)).unwrap();
        assert_eq!(d, Nanos::from_nanos(222_139_949)); // ceil(12000e9/54020)
    }
}
