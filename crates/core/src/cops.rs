//! A COPS (Common Open Policy Service, RFC 2748) wire codec for the
//! BB ↔ edge-router control channel.
//!
//! §2.2: *"If the flow is admitted, the BB will also pass (using, e.g.,
//! COPS) the QoS reservation information such as ⟨r, d⟩ to the ingress
//! router."* This module implements the subset of COPS that conversation
//! needs, byte-exact:
//!
//! * the 8-byte **common header** (version 1, op code, client-type) with
//!   length-prefixed framing;
//! * **objects** in the standard `(length, C-Num, C-Type)` TLV format:
//!   Handle, Context, Decision flags, Error, Report-Type, and Client
//!   Specific Information (ClientSI) payloads carrying this
//!   architecture's request/reservation fields;
//! * typed views of the four message exchanges the broker uses:
//!   `REQ` (edge → BB: new-flow service request), `DEC` (BB → edge:
//!   install ⟨r, d⟩ + contingency, or remove), `RPT` (edge → BB:
//!   buffer-empty feedback), `DRQ` (edge → BB: flow departed).
//!
//! The client-type value is from the private/experimental space; the
//! framing and object grammar follow the RFC, so a capture of this
//! traffic dissects as COPS.
//!
//! Security note: decoders treat all length fields as untrusted — every
//! read is bounds-checked and rejects truncated or oversized frames
//! (property-tested against random corruption).
//!
//! This codec is also the broker's **intern-once boundary**: the
//! `FlowId`/`PathId`/class values decoded here are wire-level
//! identifiers chosen by edge routers, and they are hashed exactly once
//! — by the [`crate::store::Interner`]s at the broker's entry points —
//! into dense handles. Everything inboard (admission, the MIBs, the
//! macroflow registry) operates on handles and never hashes a wire id
//! on the decide or commit hot paths.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use qos_units::{Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use crate::mib::PathId;
use crate::signaling::{FlowRequest, Reservation, ServiceKind};

/// COPS protocol version implemented (RFC 2748).
pub const VERSION: u8 = 1;
/// Client-type for the bandwidth-broker guaranteed service (private
/// space, 0x8000+).
pub const CLIENT_TYPE: u16 = 0x8002;

/// COPS operation codes (RFC 2748 §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpCode {
    /// REQ: the edge asks for a policy decision (flow admission).
    Request,
    /// DEC: the broker's decision (install / remove).
    Decision,
    /// RPT: report state (the edge's buffer-empty feedback).
    Report,
    /// DRQ: delete request state (flow departed).
    DeleteRequest,
    /// KA: keep-alive.
    KeepAlive,
    /// PEER-DEC: broker → broker segment decide (query downstream, or
    /// the answer travelling back upstream). Private-space op code —
    /// RFC 2748 assigns 1–10; broker federation extends the grammar.
    PeerDecide,
    /// PEER-COMMIT: the upstream broker finalizes a tentative booking.
    PeerCommit,
    /// PEER-RELEASE: tear down (or abort) a booking down the chain.
    PeerRelease,
    /// REPL-HELLO: a warm standby announces itself on a freshly dialed
    /// connection and asks the primary to start shipping its journal.
    ReplHello,
    /// REPL-SNAPSHOT: one chunk of a shard's bootstrap snapshot image
    /// (primary → standby; chunked to respect the frame-size cap).
    ReplSnapshot,
    /// REPL-RECORDS: committed WAL frames for one shard, tagged with
    /// the journal position they end at (primary → standby).
    ReplRecords,
    /// REPL-ACK: the standby's journal-position watermark — it has
    /// enqueued everything up to ⟨epoch, offset⟩ for apply.
    ReplAck,
    /// REPL-ROTATE: the primary's journal rotated into a new epoch;
    /// offsets restart at zero (no image ships — the standby already
    /// applied every record the rotation snapshot folds in).
    ReplRotate,
    /// REPL-PROMOTE: explicit admin order to the standby — seal replay
    /// and start serving (the wire twin of the `promote` stdin command).
    ReplPromote,
}

impl OpCode {
    fn to_u8(self) -> u8 {
        match self {
            OpCode::Request => 1,
            OpCode::Decision => 2,
            OpCode::Report => 3,
            OpCode::DeleteRequest => 4,
            OpCode::KeepAlive => 9,
            OpCode::PeerDecide => 11,
            OpCode::PeerCommit => 12,
            OpCode::PeerRelease => 13,
            OpCode::ReplHello => 14,
            OpCode::ReplSnapshot => 15,
            OpCode::ReplRecords => 16,
            OpCode::ReplAck => 17,
            OpCode::ReplRotate => 18,
            OpCode::ReplPromote => 19,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => OpCode::Request,
            2 => OpCode::Decision,
            3 => OpCode::Report,
            4 => OpCode::DeleteRequest,
            9 => OpCode::KeepAlive,
            11 => OpCode::PeerDecide,
            12 => OpCode::PeerCommit,
            13 => OpCode::PeerRelease,
            14 => OpCode::ReplHello,
            15 => OpCode::ReplSnapshot,
            16 => OpCode::ReplRecords,
            17 => OpCode::ReplAck,
            18 => OpCode::ReplRotate,
            19 => OpCode::ReplPromote,
            _ => return None,
        })
    }
}

/// Object class numbers (C-Num) used by this client-type.
mod cnum {
    pub const HANDLE: u8 = 1;
    pub const CONTEXT: u8 = 2;
    pub const DECISION: u8 = 6;
    pub const ERROR: u8 = 8;
    pub const CLIENT_SI: u8 = 9;
    pub const REPORT_TYPE: u8 = 12;
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopsError {
    /// Fewer bytes than a common header.
    Truncated,
    /// Header length field disagrees with the buffer.
    BadLength,
    /// Unsupported protocol version.
    BadVersion,
    /// Unknown op code.
    BadOpCode,
    /// Wrong client-type for this codec.
    BadClientType,
    /// An object's length field is malformed.
    BadObject,
    /// A required object is missing.
    MissingObject,
}

impl core::fmt::Display for CopsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            CopsError::Truncated => "truncated COPS frame",
            CopsError::BadLength => "COPS header length mismatch",
            CopsError::BadVersion => "unsupported COPS version",
            CopsError::BadOpCode => "unknown COPS op code",
            CopsError::BadClientType => "unexpected COPS client-type",
            CopsError::BadObject => "malformed COPS object",
            CopsError::MissingObject => "required COPS object missing",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CopsError {}

/// A raw COPS object (TLV body).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Object {
    c_num: u8,
    c_type: u8,
    body: Bytes,
}

/// A parsed COPS frame: header plus objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Operation.
    pub op: OpCode,
    objects: Vec<Object>,
}

impl Frame {
    fn object(&self, c_num: u8) -> Result<&Object, CopsError> {
        self.objects
            .iter()
            .find(|o| o.c_num == c_num)
            .ok_or(CopsError::MissingObject)
    }
}

/// Encodes a frame (header + objects) into bytes.
fn encode_frame(op: OpCode, objects: &[(u8, u8, Bytes)]) -> Bytes {
    let mut body = BytesMut::new();
    for (c_num, c_type, payload) in objects {
        // Object header: 2-byte length (incl. header), C-Num, C-Type;
        // contents padded to 4-byte alignment per the RFC.
        let raw_len: usize = 4 + payload.len();
        let padded = raw_len.div_ceil(4) * 4;
        body.put_u16(u16::try_from(raw_len).expect("object fits u16"));
        body.put_u8(*c_num);
        body.put_u8(*c_type);
        body.put_slice(payload);
        for _ in raw_len..padded {
            body.put_u8(0);
        }
    }
    let mut out = BytesMut::with_capacity(8 + body.len());
    out.put_u8(VERSION << 4); // version in the high nibble, flags low
    out.put_u8(op.to_u8());
    out.put_u16(CLIENT_TYPE);
    out.put_u32(u32::try_from(8 + body.len()).expect("frame fits u32"));
    out.put_slice(&body);
    out.freeze()
}

/// Decodes one frame from `buf`, consuming exactly its bytes.
///
/// # Errors
///
/// Any [`CopsError`] on malformed input; the buffer is left untouched on
/// error (peek-before-consume framing).
pub fn decode_frame(buf: &mut Bytes) -> Result<Frame, CopsError> {
    if buf.len() < 8 {
        return Err(CopsError::Truncated);
    }
    let ver_flags = buf[0];
    if ver_flags >> 4 != VERSION {
        return Err(CopsError::BadVersion);
    }
    let op = OpCode::from_u8(buf[1]).ok_or(CopsError::BadOpCode)?;
    let client_type = u16::from_be_bytes([buf[2], buf[3]]);
    if client_type != CLIENT_TYPE {
        return Err(CopsError::BadClientType);
    }
    let len = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len < 8 || len > buf.len() {
        return Err(CopsError::BadLength);
    }
    let mut frame = buf.slice(8..len);
    let mut objects = Vec::new();
    while frame.has_remaining() {
        if frame.len() < 4 {
            return Err(CopsError::BadObject);
        }
        let obj_len = u16::from_be_bytes([frame[0], frame[1]]) as usize;
        if obj_len < 4 || obj_len > frame.len() {
            return Err(CopsError::BadObject);
        }
        let c_num = frame[2];
        let c_type = frame[3];
        let body = frame.slice(4..obj_len);
        objects.push(Object {
            c_num,
            c_type,
            body,
        });
        let padded = obj_len.div_ceil(4) * 4;
        if padded > frame.len() {
            // Padding may be absent only on the final object.
            frame.advance(frame.len());
        } else {
            frame.advance(padded);
        }
    }
    buf.advance(len);
    Ok(Frame { op, objects })
}

// ---- ClientSI payload codecs ------------------------------------------

fn put_profile(b: &mut BytesMut, p: &TrafficProfile) {
    b.put_u64(p.sigma.as_bits());
    b.put_u64(p.rho.as_bps());
    b.put_u64(p.peak.as_bps());
    b.put_u64(p.l_max.as_bits());
}

fn get_profile(b: &mut Bytes) -> Result<TrafficProfile, CopsError> {
    if b.len() < 32 {
        return Err(CopsError::BadObject);
    }
    TrafficProfile::new(
        qos_units::Bits::from_bits(b.get_u64()),
        Rate::from_bps(b.get_u64()),
        Rate::from_bps(b.get_u64()),
        qos_units::Bits::from_bits(b.get_u64()),
    )
    .map_err(|_| CopsError::BadObject)
}

/// Encodes an edge → BB flow service request as a COPS `REQ`.
#[must_use]
pub fn encode_request(req: &FlowRequest) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(req.flow.0);
    // Context: R-Type = 1 (incoming message), M-Type = 0.
    let mut ctx = BytesMut::new();
    ctx.put_u16(1);
    ctx.put_u16(0);
    let mut si = BytesMut::new();
    put_profile(&mut si, &req.profile);
    si.put_u64(req.d_req.as_nanos());
    match req.service {
        ServiceKind::PerFlow => {
            si.put_u32(0);
            si.put_u32(0);
        }
        ServiceKind::Class(c) => {
            si.put_u32(1);
            si.put_u32(c);
        }
    }
    si.put_u64(req.path.0);
    encode_frame(
        OpCode::Request,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::CONTEXT, 1, ctx.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a COPS `REQ` back into a [`FlowRequest`].
///
/// # Errors
///
/// [`CopsError`] on malformed frames or missing objects.
pub fn decode_request(frame: &Frame) -> Result<FlowRequest, CopsError> {
    if frame.op != OpCode::Request {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    let flow = FlowId(handle.get_u64());
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    let profile = get_profile(&mut si)?;
    if si.len() < 8 + 4 + 4 + 8 {
        return Err(CopsError::BadObject);
    }
    let d_req = Nanos::from_nanos(si.get_u64());
    let kind = si.get_u32();
    let class = si.get_u32();
    let path = PathId(si.get_u64());
    let service = match kind {
        0 => ServiceKind::PerFlow,
        1 => ServiceKind::Class(class),
        _ => return Err(CopsError::BadObject),
    };
    Ok(FlowRequest {
        flow,
        profile,
        d_req,
        service,
        path,
    })
}

/// Decision command values (RFC 2748 Decision-Flags object).
const CMD_INSTALL: u16 = 1;
const CMD_REMOVE: u16 = 2;

/// Encodes a BB → edge admit decision (`DEC` / Install + ClientSI with
/// the reservation).
#[must_use]
pub fn encode_decision_install(res: &Reservation) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(res.flow.0);
    let mut dec = BytesMut::new();
    dec.put_u16(CMD_INSTALL);
    dec.put_u16(0);
    let mut si = BytesMut::new();
    si.put_u64(res.conditioned_flow.0);
    si.put_u64(res.rate.as_bps());
    si.put_u64(res.delay.as_nanos());
    si.put_u64(res.contingency.as_bps());
    match res.contingency_expires {
        Some(t) => {
            si.put_u8(1);
            si.put_u64(t.as_nanos());
        }
        None => {
            si.put_u8(0);
            si.put_u64(0);
        }
    }
    encode_frame(
        OpCode::Decision,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::DECISION, 1, dec.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Encodes a BB → edge reject decision (`DEC` / Remove + Error object
/// carrying the cause as a private error sub-code).
#[must_use]
pub fn encode_decision_reject(flow: FlowId, cause: crate::signaling::Reject) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(flow.0);
    let mut dec = BytesMut::new();
    dec.put_u16(CMD_REMOVE);
    dec.put_u16(0);
    let mut err = BytesMut::new();
    err.put_u16(1); // Error-Code 1 = "Bad handle" family; sub-code private
    err.put_u16(reject_code(cause));
    encode_frame(
        OpCode::Decision,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::DECISION, 1, dec.freeze()),
            (cnum::ERROR, 1, err.freeze()),
        ],
    )
}

/// Error-Code family answering a `DRQ` for a flow the broker does not
/// know (RFC 2748 Error-Code 2, "Invalid handle reference").
const ERR_UNKNOWN_HANDLE: u16 = 2;

/// Encodes the BB → edge answer to a `DRQ` naming an unknown flow
/// (`DEC` / Remove + Error "invalid handle reference"): the edge learns
/// its flow table has drifted from the broker's instead of the delete
/// silently vanishing.
#[must_use]
pub fn encode_delete_unknown(flow: FlowId) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(flow.0);
    let mut dec = BytesMut::new();
    dec.put_u16(CMD_REMOVE);
    dec.put_u16(0);
    let mut err = BytesMut::new();
    err.put_u16(ERR_UNKNOWN_HANDLE);
    err.put_u16(0);
    encode_frame(
        OpCode::Decision,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::DECISION, 1, dec.freeze()),
            (cnum::ERROR, 1, err.freeze()),
        ],
    )
}

fn reject_code(r: crate::signaling::Reject) -> u16 {
    use crate::signaling::Reject as R;
    match r {
        R::Policy => 1,
        R::DelayInfeasible => 2,
        R::Bandwidth => 3,
        R::Schedulability => 4,
        R::UnknownClass => 5,
        R::DuplicateFlow => 6,
        R::Overloaded => 7,
        R::NoRoute => 8,
        R::PeerUnreachable => 9,
    }
}

fn reject_from_code(c: u16) -> Option<crate::signaling::Reject> {
    use crate::signaling::Reject as R;
    Some(match c {
        1 => R::Policy,
        2 => R::DelayInfeasible,
        3 => R::Bandwidth,
        4 => R::Schedulability,
        5 => R::UnknownClass,
        6 => R::DuplicateFlow,
        7 => R::Overloaded,
        8 => R::NoRoute,
        9 => R::PeerUnreachable,
        _ => return None,
    })
}

/// A decoded `DEC` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Install the reservation at the edge conditioner.
    Install(Reservation),
    /// Remove / reject with the given cause.
    Reject {
        /// The flow the decision answers.
        flow: FlowId,
        /// Why it was rejected.
        cause: crate::signaling::Reject,
    },
    /// Answer to a `DRQ` naming a flow the broker holds no state for.
    UnknownFlow {
        /// The flow the `DRQ` named.
        flow: FlowId,
    },
}

/// Decodes a COPS `DEC`.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_decision(frame: &Frame) -> Result<Decision, CopsError> {
    if frame.op != OpCode::Decision {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    let flow = FlowId(handle.get_u64());
    let mut dec = frame.object(cnum::DECISION)?.body.clone();
    if dec.len() < 4 {
        return Err(CopsError::BadObject);
    }
    let cmd = dec.get_u16();
    match cmd {
        CMD_INSTALL => {
            let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
            if si.len() < 8 * 4 + 1 + 8 {
                return Err(CopsError::BadObject);
            }
            let conditioned_flow = FlowId(si.get_u64());
            let rate = Rate::from_bps(si.get_u64());
            let delay = Nanos::from_nanos(si.get_u64());
            let contingency = Rate::from_bps(si.get_u64());
            let has_expiry = si.get_u8() == 1;
            let expires_ns = si.get_u64();
            Ok(Decision::Install(Reservation {
                flow,
                conditioned_flow,
                rate,
                delay,
                contingency,
                contingency_expires: has_expiry.then(|| Time::from_nanos(expires_ns)),
            }))
        }
        CMD_REMOVE => {
            let mut err = frame.object(cnum::ERROR)?.body.clone();
            if err.len() < 4 {
                return Err(CopsError::BadObject);
            }
            let family = err.get_u16();
            if family == ERR_UNKNOWN_HANDLE {
                return Ok(Decision::UnknownFlow { flow });
            }
            let cause = reject_from_code(err.get_u16()).ok_or(CopsError::BadObject)?;
            Ok(Decision::Reject { flow, cause })
        }
        _ => Err(CopsError::BadObject),
    }
}

/// Encodes the edge's buffer-empty feedback (`RPT`, Report-Type =
/// Success, ClientSI = macroflow + timestamp).
#[must_use]
pub fn encode_buffer_empty(macroflow: FlowId, at: Time) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(macroflow.0);
    let mut rt = BytesMut::new();
    rt.put_u16(1); // Success
    rt.put_u16(0);
    let mut si = BytesMut::new();
    si.put_u64(at.as_nanos());
    encode_frame(
        OpCode::Report,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::REPORT_TYPE, 1, rt.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a buffer-empty `RPT` into `(macroflow, at)`.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_buffer_empty(frame: &Frame) -> Result<(FlowId, Time), CopsError> {
    if frame.op != OpCode::Report {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    let flow = FlowId(handle.get_u64());
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    if si.len() < 8 {
        return Err(CopsError::BadObject);
    }
    Ok((flow, Time::from_nanos(si.get_u64())))
}

/// Encodes a flow-departed `DRQ`.
#[must_use]
pub fn encode_delete(flow: FlowId) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(flow.0);
    encode_frame(OpCode::DeleteRequest, &[(cnum::HANDLE, 1, handle.freeze())])
}

/// Decodes a `DRQ` into the departing flow id.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_delete(frame: &Frame) -> Result<FlowId, CopsError> {
    if frame.op != OpCode::DeleteRequest {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    Ok(FlowId(handle.get_u64()))
}

// ---- Broker-to-broker federation codecs -------------------------------
//
// Three private-space ops stitch single-domain brokers into one
// reservation fabric. A PEER-DEC query travels *down* the chain carrying
// the flow's profile plus the hop count and static delay accumulated
// over every upstream domain's segment; the terminal domain computes the
// end-to-end rate from the union totals and the answer travels back
// *up*, each domain booking tentatively as it passes. PEER-COMMIT
// finalizes a tentative booking; PEER-RELEASE is both teardown and the
// compensating rollback on any abort path. Query and answer share the
// PEER-DEC op (they are one transaction on the wire); they are told
// apart by shape — the query carries a Context + wide ClientSI, the
// answer a Decision object, exactly like REQ vs DEC.

/// A broker → broker segment-decide query (PEER-DEC, downstream-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerDecide {
    /// The end-to-end flow being admitted (edge-chosen identity; shared
    /// by every domain on the chain).
    pub flow: FlowId,
    /// Declared dual-token-bucket traffic profile.
    pub profile: TrafficProfile,
    /// End-to-end delay requirement `D^req`.
    pub d_req: Nanos,
    /// Path within each domain (chain-stitched topologies use the same
    /// pod index in every domain).
    pub path: PathId,
    /// Hop count `Σh` accumulated over upstream domains' segments.
    pub h_acc: u64,
    /// Static delay `ΣD^tot` accumulated over upstream segments.
    pub d_acc: Nanos,
}

/// Encodes a PEER-DEC query.
#[must_use]
pub fn encode_peer_decide(q: &PeerDecide) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(q.flow.0);
    // Context: R-Type = 1 (incoming message), M-Type = 0 — same shape
    // as an edge REQ, which this query is the inter-domain echo of.
    let mut ctx = BytesMut::new();
    ctx.put_u16(1);
    ctx.put_u16(0);
    let mut si = BytesMut::new();
    put_profile(&mut si, &q.profile);
    si.put_u64(q.d_req.as_nanos());
    si.put_u64(q.path.0);
    si.put_u64(q.h_acc);
    si.put_u64(q.d_acc.as_nanos());
    encode_frame(
        OpCode::PeerDecide,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::CONTEXT, 1, ctx.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a PEER-DEC query.
///
/// # Errors
///
/// [`CopsError`] on malformed frames (an *answer* frame fails here: its
/// ClientSI is too narrow to be a query).
pub fn decode_peer_decide(frame: &Frame) -> Result<PeerDecide, CopsError> {
    if frame.op != OpCode::PeerDecide {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    let flow = FlowId(handle.get_u64());
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    let profile = get_profile(&mut si)?;
    if si.len() < 8 * 4 {
        return Err(CopsError::BadObject);
    }
    Ok(PeerDecide {
        flow,
        profile,
        d_req: Nanos::from_nanos(si.get_u64()),
        path: PathId(si.get_u64()),
        h_acc: si.get_u64(),
        d_acc: Nanos::from_nanos(si.get_u64()),
    })
}

/// The answer half of a PEER-DEC transaction, upstream-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerAnswer {
    /// Every domain from here down said yes and holds a tentative
    /// booking at this rate; the receiver should book too and pass the
    /// answer on up.
    Ok {
        /// The flow the answer names.
        flow: FlowId,
        /// End-to-end reserved rate, computed once at the terminal
        /// domain from the union totals.
        rate: Rate,
        /// Delay parameter `d` for the ⟨r, d⟩ pair (zero on rate-based
        /// segments).
        delay: Nanos,
    },
    /// Some domain from here down refused; nothing is booked there.
    Refuse {
        /// The flow the answer names.
        flow: FlowId,
        /// Why it was refused.
        cause: crate::signaling::Reject,
    },
}

/// Encodes a PEER-DEC answer (install-shaped for yes, remove-shaped with
/// the reject cause for no).
#[must_use]
pub fn encode_peer_answer(ans: &PeerAnswer) -> Bytes {
    match *ans {
        PeerAnswer::Ok { flow, rate, delay } => {
            let mut handle = BytesMut::new();
            handle.put_u64(flow.0);
            let mut dec = BytesMut::new();
            dec.put_u16(CMD_INSTALL);
            dec.put_u16(0);
            let mut si = BytesMut::new();
            si.put_u64(rate.as_bps());
            si.put_u64(delay.as_nanos());
            encode_frame(
                OpCode::PeerDecide,
                &[
                    (cnum::HANDLE, 1, handle.freeze()),
                    (cnum::DECISION, 1, dec.freeze()),
                    (cnum::CLIENT_SI, 1, si.freeze()),
                ],
            )
        }
        PeerAnswer::Refuse { flow, cause } => {
            let mut handle = BytesMut::new();
            handle.put_u64(flow.0);
            let mut dec = BytesMut::new();
            dec.put_u16(CMD_REMOVE);
            dec.put_u16(0);
            let mut err = BytesMut::new();
            err.put_u16(1);
            err.put_u16(reject_code(cause));
            encode_frame(
                OpCode::PeerDecide,
                &[
                    (cnum::HANDLE, 1, handle.freeze()),
                    (cnum::DECISION, 1, dec.freeze()),
                    (cnum::ERROR, 1, err.freeze()),
                ],
            )
        }
    }
}

/// Decodes a PEER-DEC answer.
///
/// # Errors
///
/// [`CopsError`] on malformed frames (a *query* frame fails here: it
/// carries no Decision object).
pub fn decode_peer_answer(frame: &Frame) -> Result<PeerAnswer, CopsError> {
    if frame.op != OpCode::PeerDecide {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    let flow = FlowId(handle.get_u64());
    let mut dec = frame.object(cnum::DECISION)?.body.clone();
    if dec.len() < 4 {
        return Err(CopsError::BadObject);
    }
    match dec.get_u16() {
        CMD_INSTALL => {
            let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
            if si.len() < 16 {
                return Err(CopsError::BadObject);
            }
            Ok(PeerAnswer::Ok {
                flow,
                rate: Rate::from_bps(si.get_u64()),
                delay: Nanos::from_nanos(si.get_u64()),
            })
        }
        CMD_REMOVE => {
            let mut err = frame.object(cnum::ERROR)?.body.clone();
            if err.len() < 4 {
                return Err(CopsError::BadObject);
            }
            err.advance(2);
            let cause = reject_from_code(err.get_u16()).ok_or(CopsError::BadObject)?;
            Ok(PeerAnswer::Refuse { flow, cause })
        }
        _ => Err(CopsError::BadObject),
    }
}

/// True when a PEER-DEC frame is the answer half (carries a Decision
/// object) rather than the query half.
#[must_use]
pub fn peer_frame_is_answer(frame: &Frame) -> bool {
    frame.op == OpCode::PeerDecide && frame.object(cnum::DECISION).is_ok()
}

/// A decoded PEER-COMMIT: the flow being finalized plus the
/// terminal-computed ⟨r, d⟩ pair the whole chain booked under. Each
/// domain the commit passes through asserts the pair matches its own
/// tentative booking — a mismatch means the chain's bookings have
/// diverged and the local booking must be released, not finalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerCommit {
    /// The flow the commit finalizes.
    pub flow: FlowId,
    /// End-to-end reserved rate the terminal domain computed.
    pub rate: Rate,
    /// Delay parameter `d` of the ⟨r, d⟩ pair.
    pub delay: Nanos,
}

/// Encodes a PEER-COMMIT: finalize the tentative booking for `flow` —
/// carrying the terminal-computed ⟨r, d⟩ so every domain down the chain
/// can assert its booking matches — and forward the commit on down.
#[must_use]
pub fn encode_peer_commit(commit: &PeerCommit) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(commit.flow.0);
    let mut si = BytesMut::new();
    si.put_u64(commit.rate.as_bps());
    si.put_u64(commit.delay.as_nanos());
    encode_frame(
        OpCode::PeerCommit,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a PEER-COMMIT into the flow it finalizes and the ⟨r, d⟩
/// pair it claims the chain booked under.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_peer_commit(frame: &Frame) -> Result<PeerCommit, CopsError> {
    if frame.op != OpCode::PeerCommit {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    let flow = FlowId(handle.get_u64());
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    if si.len() < 16 {
        return Err(CopsError::BadObject);
    }
    Ok(PeerCommit {
        flow,
        rate: Rate::from_bps(si.get_u64()),
        delay: Nanos::from_nanos(si.get_u64()),
    })
}

/// Encodes a PEER-RELEASE: free `flow`'s booking here and everywhere
/// downstream — the compensating message for teardown and every abort
/// path.
#[must_use]
pub fn encode_peer_release(flow: FlowId) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(flow.0);
    encode_frame(OpCode::PeerRelease, &[(cnum::HANDLE, 1, handle.freeze())])
}

/// Decodes a PEER-RELEASE into the flow it frees.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_peer_release(frame: &Frame) -> Result<FlowId, CopsError> {
    if frame.op != OpCode::PeerRelease {
        return Err(CopsError::BadOpCode);
    }
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    Ok(FlowId(handle.get_u64()))
}

// ---- WAL-shipping replication codecs ----------------------------------
//
// Six private-space ops pair a primary with a warm standby. The standby
// dials the primary's client listener and sends REPL-HELLO; the primary
// answers with each shard's bootstrap (REPL-SNAPSHOT chunks, then the
// journal prefix and all live commits as REPL-RECORDS) and the standby
// answers REPL-ACK watermarks. Framing stays within the daemon's
// frame-size cap by chunking: a snapshot image or journal prefix splits
// across as many frames as it takes. Shard index rides in the Handle
// object (these frames name a shard's journal, not a flow); everything
// else is ClientSI payload.

/// Maximum replication payload bytes per frame — snapshot chunks and
/// record batches split at this size so every REPL frame stays well
/// under the daemon's 16 KiB frame cap after header overhead.
pub const REPL_CHUNK: usize = 8 * 1024;

/// One chunk of a shard's bootstrap snapshot image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplSnapshot {
    /// Which broker shard the image belongs to.
    pub shard: u32,
    /// Journal epoch the snapshot starts.
    pub epoch: u64,
    /// True on the final chunk: the accumulated image is complete and
    /// may be decoded and restored.
    pub last: bool,
    /// This chunk's slice of the raw snapshot-file bytes.
    pub chunk: Bytes,
}

/// A batch of committed WAL frames for one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplRecords {
    /// Which broker shard the records belong to.
    pub shard: u32,
    /// Journal epoch the records were appended under.
    pub epoch: u64,
    /// Journal byte offset immediately after the last frame in this
    /// batch — the watermark an ack for this batch must carry.
    pub end_offset: u64,
    /// Primary-side monotonic timestamp, nanoseconds; echoed verbatim
    /// in the covering REPL-ACK so the primary can measure ack RTT
    /// without per-batch state.
    pub stamp_ns: u64,
    /// Raw WAL frames, concatenated (`bb-durable` frame format).
    pub frames: Bytes,
}

/// The standby's journal-position watermark for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplAck {
    /// Which broker shard the watermark covers.
    pub shard: u32,
    /// Journal epoch acknowledged through.
    pub epoch: u64,
    /// Journal byte offset acknowledged through (everything at or
    /// before ⟨epoch, offset⟩ is enqueued for apply on the standby).
    pub end_offset: u64,
    /// Echo of the latest [`ReplRecords::stamp_ns`] seen, zero on acks
    /// covering only bootstrap traffic.
    pub stamp_ns: u64,
}

/// Encodes a REPL-HELLO carrying the standby's shard count — the
/// primary refuses a standby whose sharding disagrees with its own,
/// because journal records are per-shard command logs.
#[must_use]
pub fn encode_repl_hello(shards: u32) -> Bytes {
    let mut si = BytesMut::new();
    si.put_u32(shards);
    encode_frame(OpCode::ReplHello, &[(cnum::CLIENT_SI, 1, si.freeze())])
}

/// Decodes a REPL-HELLO into the standby's shard count.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_repl_hello(frame: &Frame) -> Result<u32, CopsError> {
    if frame.op != OpCode::ReplHello {
        return Err(CopsError::BadOpCode);
    }
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    if si.len() < 4 {
        return Err(CopsError::BadObject);
    }
    Ok(si.get_u32())
}

/// Encodes one REPL-SNAPSHOT chunk.
#[must_use]
pub fn encode_repl_snapshot(snap: &ReplSnapshot) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(u64::from(snap.shard));
    let mut si = BytesMut::new();
    si.put_u64(snap.epoch);
    si.put_u8(u8::from(snap.last));
    si.put_slice(&snap.chunk);
    encode_frame(
        OpCode::ReplSnapshot,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a REPL-SNAPSHOT chunk.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_repl_snapshot(frame: &Frame) -> Result<ReplSnapshot, CopsError> {
    if frame.op != OpCode::ReplSnapshot {
        return Err(CopsError::BadOpCode);
    }
    let shard = decode_shard_handle(frame)?;
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    if si.len() < 9 {
        return Err(CopsError::BadObject);
    }
    let epoch = si.get_u64();
    let last = si.get_u8() == 1;
    Ok(ReplSnapshot {
        shard,
        epoch,
        last,
        chunk: si,
    })
}

/// Encodes a REPL-RECORDS batch.
#[must_use]
pub fn encode_repl_records(rec: &ReplRecords) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(u64::from(rec.shard));
    let mut si = BytesMut::new();
    si.put_u64(rec.epoch);
    si.put_u64(rec.end_offset);
    si.put_u64(rec.stamp_ns);
    si.put_slice(&rec.frames);
    encode_frame(
        OpCode::ReplRecords,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a REPL-RECORDS batch.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_repl_records(frame: &Frame) -> Result<ReplRecords, CopsError> {
    if frame.op != OpCode::ReplRecords {
        return Err(CopsError::BadOpCode);
    }
    let shard = decode_shard_handle(frame)?;
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    if si.len() < 24 {
        return Err(CopsError::BadObject);
    }
    let epoch = si.get_u64();
    let end_offset = si.get_u64();
    let stamp_ns = si.get_u64();
    Ok(ReplRecords {
        shard,
        epoch,
        end_offset,
        stamp_ns,
        frames: si,
    })
}

/// Encodes a REPL-ACK watermark.
#[must_use]
pub fn encode_repl_ack(ack: &ReplAck) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(u64::from(ack.shard));
    let mut si = BytesMut::new();
    si.put_u64(ack.epoch);
    si.put_u64(ack.end_offset);
    si.put_u64(ack.stamp_ns);
    encode_frame(
        OpCode::ReplAck,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a REPL-ACK watermark.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_repl_ack(frame: &Frame) -> Result<ReplAck, CopsError> {
    if frame.op != OpCode::ReplAck {
        return Err(CopsError::BadOpCode);
    }
    let shard = decode_shard_handle(frame)?;
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    if si.len() < 24 {
        return Err(CopsError::BadObject);
    }
    Ok(ReplAck {
        shard,
        epoch: si.get_u64(),
        end_offset: si.get_u64(),
        stamp_ns: si.get_u64(),
    })
}

/// Encodes a REPL-ROTATE notice: `shard`'s journal rotated into
/// `epoch`, offsets restart at zero.
#[must_use]
pub fn encode_repl_rotate(shard: u32, epoch: u64) -> Bytes {
    let mut handle = BytesMut::new();
    handle.put_u64(u64::from(shard));
    let mut si = BytesMut::new();
    si.put_u64(epoch);
    encode_frame(
        OpCode::ReplRotate,
        &[
            (cnum::HANDLE, 1, handle.freeze()),
            (cnum::CLIENT_SI, 1, si.freeze()),
        ],
    )
}

/// Decodes a REPL-ROTATE notice into `(shard, epoch)`.
///
/// # Errors
///
/// [`CopsError`] on malformed frames.
pub fn decode_repl_rotate(frame: &Frame) -> Result<(u32, u64), CopsError> {
    if frame.op != OpCode::ReplRotate {
        return Err(CopsError::BadOpCode);
    }
    let shard = decode_shard_handle(frame)?;
    let mut si = frame.object(cnum::CLIENT_SI)?.body.clone();
    if si.len() < 8 {
        return Err(CopsError::BadObject);
    }
    Ok((shard, si.get_u64()))
}

/// Encodes a REPL-PROMOTE admin order (no payload — the op is the
/// message).
#[must_use]
pub fn encode_repl_promote() -> Bytes {
    encode_frame(OpCode::ReplPromote, &[])
}

/// Reads the shard index out of a REPL frame's Handle object.
fn decode_shard_handle(frame: &Frame) -> Result<u32, CopsError> {
    let mut handle = frame.object(cnum::HANDLE)?.body.clone();
    if handle.len() < 8 {
        return Err(CopsError::BadObject);
    }
    u32::try_from(handle.get_u64()).map_err(|_| CopsError::BadObject)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_units::Bits;

    fn req() -> FlowRequest {
        FlowRequest {
            flow: FlowId(42),
            profile: TrafficProfile::new(
                Bits::from_bits(60_000),
                Rate::from_bps(50_000),
                Rate::from_bps(100_000),
                Bits::from_bytes(1500),
            )
            .unwrap(),
            d_req: Nanos::from_millis(2_440),
            service: ServiceKind::Class(3),
            path: PathId(7),
        }
    }

    #[test]
    fn request_roundtrip() {
        let bytes = encode_request(&req());
        let mut buf = bytes.clone();
        let frame = decode_frame(&mut buf).unwrap();
        assert!(buf.is_empty(), "frame fully consumed");
        let back = decode_request(&frame).unwrap();
        assert_eq!(back.flow, FlowId(42));
        assert_eq!(back.profile, req().profile);
        assert_eq!(back.d_req, Nanos::from_millis(2_440));
        assert_eq!(back.service, ServiceKind::Class(3));
        assert_eq!(back.path, PathId(7));
    }

    #[test]
    fn decision_roundtrips_both_ways() {
        let res = Reservation {
            flow: FlowId(42),
            conditioned_flow: FlowId(1 << 63),
            rate: Rate::from_bps(100_000),
            delay: Nanos::from_millis(240),
            contingency: Rate::from_bps(50_000),
            contingency_expires: Some(Time::from_nanos(123_456)),
        };
        let mut buf = encode_decision_install(&res);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_decision(&frame).unwrap(), Decision::Install(res));

        let mut buf = encode_decision_reject(FlowId(9), crate::signaling::Reject::Bandwidth);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(
            decode_decision(&frame).unwrap(),
            Decision::Reject {
                flow: FlowId(9),
                cause: crate::signaling::Reject::Bandwidth
            }
        );
    }

    #[test]
    fn unknown_flow_answer_roundtrips_and_stays_distinct_from_rejects() {
        let mut buf = encode_delete_unknown(FlowId(77));
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(
            decode_decision(&frame).unwrap(),
            Decision::UnknownFlow { flow: FlowId(77) }
        );
        // Every reject cause still decodes as a Reject, never UnknownFlow.
        for cause in crate::signaling::Reject::ALL {
            let mut buf = encode_decision_reject(FlowId(1), cause);
            let frame = decode_frame(&mut buf).unwrap();
            assert_eq!(
                decode_decision(&frame).unwrap(),
                Decision::Reject {
                    flow: FlowId(1),
                    cause
                }
            );
        }
    }

    #[test]
    fn report_and_delete_roundtrip() {
        let mut buf = encode_buffer_empty(FlowId(5), Time::from_nanos(99));
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(
            decode_buffer_empty(&frame).unwrap(),
            (FlowId(5), Time::from_nanos(99))
        );
        let mut buf = encode_delete(FlowId(6));
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_delete(&frame).unwrap(), FlowId(6));
    }

    #[test]
    fn peer_decide_roundtrips_query_and_both_answers() {
        let q = PeerDecide {
            flow: FlowId(42),
            profile: req().profile,
            d_req: Nanos::from_millis(2_440),
            path: PathId(7),
            h_acc: 10,
            d_acc: Nanos::from_millis(80),
        };
        let mut buf = encode_peer_decide(&q);
        let frame = decode_frame(&mut buf).unwrap();
        assert!(!peer_frame_is_answer(&frame));
        assert_eq!(decode_peer_decide(&frame).unwrap(), q);
        // An answer frame must not decode as a query.
        let ok = PeerAnswer::Ok {
            flow: FlowId(42),
            rate: Rate::from_bps(54_020),
            delay: Nanos::ZERO,
        };
        let mut buf = encode_peer_answer(&ok);
        let frame = decode_frame(&mut buf).unwrap();
        assert!(peer_frame_is_answer(&frame));
        assert!(decode_peer_decide(&frame).is_err());
        assert_eq!(decode_peer_answer(&frame).unwrap(), ok);
        // Every reject cause survives the refuse answer.
        for cause in crate::signaling::Reject::ALL {
            let refuse = PeerAnswer::Refuse {
                flow: FlowId(9),
                cause,
            };
            let mut buf = encode_peer_answer(&refuse);
            let frame = decode_frame(&mut buf).unwrap();
            assert_eq!(decode_peer_answer(&frame).unwrap(), refuse);
        }
        // A query frame must not decode as an answer.
        let mut buf = encode_peer_decide(&q);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_peer_answer(&frame), Err(CopsError::MissingObject));
    }

    #[test]
    fn peer_commit_and_release_roundtrip_and_stay_distinct() {
        let commit = PeerCommit {
            flow: FlowId(5),
            rate: Rate::from_bps(54_020),
            delay: Nanos::from_millis(12),
        };
        let mut buf = encode_peer_commit(&commit);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_peer_commit(&frame).unwrap(), commit);
        assert_eq!(decode_peer_release(&frame), Err(CopsError::BadOpCode));
        let mut buf = encode_peer_release(FlowId(6));
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_peer_release(&frame).unwrap(), FlowId(6));
        assert_eq!(decode_peer_commit(&frame), Err(CopsError::BadOpCode));
    }

    #[test]
    fn repl_frames_roundtrip() {
        let mut buf = encode_repl_hello(4);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_repl_hello(&frame).unwrap(), 4);

        let snap = ReplSnapshot {
            shard: 2,
            epoch: 7,
            last: true,
            chunk: Bytes::from_static(b"image-bytes"),
        };
        let mut buf = encode_repl_snapshot(&snap);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_repl_snapshot(&frame).unwrap(), snap);

        let recs = ReplRecords {
            shard: 1,
            epoch: 7,
            end_offset: 4096,
            stamp_ns: 123_456_789,
            frames: Bytes::from_static(b"wal-frames"),
        };
        let mut buf = encode_repl_records(&recs);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_repl_records(&frame).unwrap(), recs);

        let ack = ReplAck {
            shard: 1,
            epoch: 7,
            end_offset: 4096,
            stamp_ns: 123_456_789,
        };
        let mut buf = encode_repl_ack(&ack);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_repl_ack(&frame).unwrap(), ack);

        let mut buf = encode_repl_rotate(3, 8);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_repl_rotate(&frame).unwrap(), (3, 8));

        let mut buf = encode_repl_promote();
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(frame.op, OpCode::ReplPromote);

        // Empty-chunk snapshot frames and op confusion stay rejected.
        let mut buf = encode_repl_ack(&ack);
        let frame = decode_frame(&mut buf).unwrap();
        assert_eq!(decode_repl_records(&frame), Err(CopsError::BadOpCode));
    }

    #[test]
    fn repl_frames_survive_truncation_fuzz() {
        let good = encode_repl_records(&ReplRecords {
            shard: 0,
            epoch: 1,
            end_offset: 64,
            stamp_ns: 42,
            frames: Bytes::from_static(b"abcdef"),
        });
        for cut in 0..good.len() {
            let mut short = good.slice(..cut);
            assert!(decode_frame(&mut short).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn peer_frames_survive_truncation_fuzz() {
        let good = encode_peer_decide(&PeerDecide {
            flow: FlowId(1),
            profile: req().profile,
            d_req: Nanos::from_millis(100),
            path: PathId(0),
            h_acc: 5,
            d_acc: Nanos::from_millis(40),
        });
        for cut in 0..good.len() {
            let mut short = good.slice(..cut);
            assert!(decode_frame(&mut short).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn frames_stream_back_to_back() {
        let mut stream = BytesMut::new();
        stream.put_slice(&encode_request(&req()));
        stream.put_slice(&encode_delete(FlowId(42)));
        let mut buf = stream.freeze();
        let f1 = decode_frame(&mut buf).unwrap();
        assert_eq!(f1.op, OpCode::Request);
        let f2 = decode_frame(&mut buf).unwrap();
        assert_eq!(f2.op, OpCode::DeleteRequest);
        assert!(buf.is_empty());
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        // Truncation at every prefix length.
        let good = encode_request(&req());
        for cut in 0..good.len() {
            let mut short = good.slice(..cut);
            assert!(decode_frame(&mut short).is_err(), "cut at {cut} decoded");
        }
        // Wrong version / client-type / op.
        let mut v = BytesMut::from(&good[..]);
        v[0] = 0x20;
        assert_eq!(decode_frame(&mut v.freeze()), Err(CopsError::BadVersion));
        let mut c = BytesMut::from(&good[..]);
        c[2] = 0;
        c[3] = 1;
        assert_eq!(decode_frame(&mut c.freeze()), Err(CopsError::BadClientType));
        let mut o = BytesMut::from(&good[..]);
        o[1] = 200;
        assert_eq!(decode_frame(&mut o.freeze()), Err(CopsError::BadOpCode));
    }

    #[test]
    fn header_length_is_authoritative() {
        // Declare a length larger than the buffer: rejected.
        let good = encode_request(&req());
        let mut big = BytesMut::from(&good[..]);
        big[4..8].copy_from_slice(&(u32::MAX).to_be_bytes());
        assert_eq!(decode_frame(&mut big.freeze()), Err(CopsError::BadLength));
        // Shorter than a header: rejected.
        let mut tiny = BytesMut::from(&good[..]);
        tiny[4..8].copy_from_slice(&4u32.to_be_bytes());
        assert_eq!(decode_frame(&mut tiny.freeze()), Err(CopsError::BadLength));
    }
}
