//! The policy control module.
//!
//! The paper's BB consults a policy information base before any resource
//! test (Figure 1). We implement the common administrative controls a
//! domain operator would configure; the module is deliberately a plain
//! rule evaluator so experiments can run with `Policy::allow_all()`.

use qos_units::{Nanos, Rate};
use vtrs::profile::TrafficProfile;

/// Administrative admission policy, evaluated before resource tests.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Reject flows whose declared peak rate exceeds this.
    pub max_peak: Option<Rate>,
    /// Reject flows whose sustained rate exceeds this.
    pub max_rho: Option<Rate>,
    /// Reject delay requirements tighter than this (anti-abuse: a 1 ns
    /// requirement would always fail resource tests anyway, but policy
    /// can refuse it outright without computing).
    pub min_delay_req: Option<Nanos>,
    /// Cap on simultaneously active flows in the domain.
    pub max_flows: Option<usize>,
}

impl Policy {
    /// A policy that admits everything (the experiments' default).
    #[must_use]
    pub fn allow_all() -> Self {
        Policy::default()
    }

    /// Evaluates the policy for a request given the current number of
    /// active flows. `true` = pass.
    #[must_use]
    pub fn permits(&self, profile: &TrafficProfile, d_req: Nanos, active_flows: usize) -> bool {
        if let Some(max) = self.max_peak {
            if profile.peak > max {
                return false;
            }
        }
        if let Some(max) = self.max_rho {
            if profile.rho > max {
                return false;
            }
        }
        if let Some(min) = self.min_delay_req {
            if d_req < min {
                return false;
            }
        }
        if let Some(max) = self.max_flows {
            if active_flows >= max {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qos_units::Bits;

    fn profile() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    #[test]
    fn allow_all_permits_everything() {
        assert!(Policy::allow_all().permits(&profile(), Nanos::from_nanos(1), 1_000_000));
    }

    #[test]
    fn each_rule_can_reject() {
        let p = profile();
        let policy = Policy {
            max_peak: Some(Rate::from_bps(99_999)),
            ..Policy::default()
        };
        assert!(!policy.permits(&p, Nanos::from_secs(1), 0));

        let policy = Policy {
            max_rho: Some(Rate::from_bps(49_999)),
            ..Policy::default()
        };
        assert!(!policy.permits(&p, Nanos::from_secs(1), 0));

        let policy = Policy {
            min_delay_req: Some(Nanos::from_millis(100)),
            ..Policy::default()
        };
        assert!(!policy.permits(&p, Nanos::from_millis(99), 0));
        assert!(policy.permits(&p, Nanos::from_millis(100), 0));

        let policy = Policy {
            max_flows: Some(2),
            ..Policy::default()
        };
        assert!(policy.permits(&p, Nanos::from_secs(1), 1));
        assert!(!policy.permits(&p, Nanos::from_secs(1), 2));
    }
}
