//! Path-oriented admission control (§3 and §4.3).
//!
//! All three algorithms consume only the broker's MIBs — the architectural
//! point is that no router participates:
//!
//! * [`rate_based::admit`] — O(1) admissibility for paths of rate-based
//!   schedulers only (§3.1);
//! * [`mixed::admit`] — the Figure-4 scan over the distinct delay values
//!   of the path's delay-based schedulers (§3.2 / Theorem 1), returning
//!   the minimal-rate feasible `⟨r, d⟩` pair;
//! * [`aggregate`] — rate planning for macroflow joins and leaves under
//!   class-based service (§4.3), paired with the contingency-bandwidth
//!   rules of [`crate::contingency`].
//!
//! [`plan`] holds the typed output of the decide phase: every algorithm
//! above feeds an [`plan::AdmissionPlan`] that the broker's commit phase
//! applies (or aborts) against the MIBs.

pub mod aggregate;
pub mod mixed;
pub mod plan;
pub mod rate_based;
