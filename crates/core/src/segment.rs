//! The domain-agnostic **segment layer**: two-phase admission over a
//! chain of segments, each satisfied by any [`SegmentAdmitter`].
//!
//! The paper's §4 hierarchy decides per-segment inside one domain; its
//! future-work direction — and this module's reason to exist — is the
//! inter-domain version, where end-to-end admission composes per-domain
//! ⟨r, d⟩ segments across independent brokers. The decide-all-then-commit
//! flow that [`crate::hierarchy`] originally hard-wired to in-process
//! child [`Broker`]s is extracted here into a trait layer:
//!
//! * a [`SegmentAdmitter`] answers the three questions any domain must —
//!   *what does your segment cost* (an O(1) [`SegmentSummary`]),
//!   *would you admit this exact pair* (a read-only decide), and
//!   *book it / free it* (commit / release);
//! * a [`SegmentPlan`] is the decide phase's output: the per-domain
//!   segment list of epoch-stamped plans plus the end-to-end pair, held
//!   by the coordinator between the phases;
//! * a [`SegmentChain`] drives the two-phase protocol: **decide
//!   everywhere, commit only if every segment said yes**, and release
//!   back through the chain — in reverse order — if a commit refuses
//!   after a prefix has booked, so no abort path leaves a booking
//!   behind.
//!
//! In-process hierarchy levels implement the trait via [`LocalSegment`]
//! (a child broker plus the path it owns). Remote peer domains speak the
//! same phases over COPS (PEER-DEC / PEER-COMMIT / PEER-RELEASE, see
//! [`crate::cops`]); the server's federation layer drives those
//! asynchronously off its event loops, but the message grammar *is* this
//! trait's grammar, one frame per method.

use netsim::topology::{LinkId, Topology};
use qos_units::{Nanos, Rate, Time};
use vtrs::delay::min_rate_rate_based;
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

use crate::admission::plan::AdmissionPlan;
use crate::broker::{Broker, BrokerConfig, UnknownFlow};
use crate::mib::PathId;
use crate::signaling::{Reject, Reservation};

/// The O(1) per-segment state a coordinator works from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Hops in the segment.
    pub h: u64,
    /// `Σ (Ψ + π)` over the segment.
    pub d_tot: Nanos,
    /// Residual bandwidth of the segment's path.
    pub c_res: Rate,
}

/// Counters for a segment-chain control plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Coordinator → segment round-trips. A decide and the commit that
    /// follows it count as one prepare/commit exchange per segment
    /// contacted; a release (teardown or rollback) is its own exchange.
    pub child_messages: u64,
    /// Admissions.
    pub admitted: u64,
    /// Rejections.
    pub rejected: u64,
    /// Aborts: a segment refused a stale-summary rate at decide or
    /// commit time; any prefix already booked was released back through
    /// the chain.
    pub aborts: u64,
}

/// One domain's share of a two-phase end-to-end admission.
///
/// The three methods are the segment-side halves of the chain protocol;
/// over the wire they map one-to-one onto the broker-to-broker COPS ops
/// (PEER-DEC carries decide, PEER-COMMIT carries commit, PEER-RELEASE
/// carries release).
pub trait SegmentAdmitter {
    /// Current O(1) summary — what the coordinator caches and refreshes
    /// in a deployment, so it may be stale by decide time.
    fn summary(&self) -> SegmentSummary;

    /// Phase 1 — would this segment admit the exact ⟨rate, delay⟩ pair
    /// for `flow`? Read-only: a refusal here aborts the end-to-end
    /// admission with nothing booked anywhere.
    fn decide(
        &self,
        flow: FlowId,
        profile: &TrafficProfile,
        rate: Rate,
        delay: Nanos,
    ) -> AdmissionPlan;

    /// Phase 2 — book a plan this segment produced at decide time.
    ///
    /// # Errors
    ///
    /// The [`Reject`] cause if the segment's state moved against the
    /// plan between the phases (the coordinator then releases any
    /// already-committed prefix back through the chain).
    fn commit(&mut self, now: Time, plan: &AdmissionPlan) -> Result<Reservation, Reject>;

    /// Free `flow`'s booking — teardown and abort-rollback share this.
    ///
    /// # Errors
    ///
    /// [`UnknownFlow`] if this segment holds no booking for the id.
    fn release(&mut self, now: Time, flow: FlowId) -> Result<(), UnknownFlow>;
}

impl<T: SegmentAdmitter + ?Sized> SegmentAdmitter for Box<T> {
    fn summary(&self) -> SegmentSummary {
        (**self).summary()
    }

    fn decide(
        &self,
        flow: FlowId,
        profile: &TrafficProfile,
        rate: Rate,
        delay: Nanos,
    ) -> AdmissionPlan {
        (**self).decide(flow, profile, rate, delay)
    }

    fn commit(&mut self, now: Time, plan: &AdmissionPlan) -> Result<Reservation, Reject> {
        (**self).commit(now, plan)
    }

    fn release(&mut self, now: Time, flow: FlowId) -> Result<(), UnknownFlow> {
        (**self).release(now, flow)
    }
}

/// An in-process segment: a child [`Broker`] plus the path it owns.
#[derive(Debug)]
pub struct LocalSegment {
    broker: Broker,
    path: PathId,
}

impl LocalSegment {
    /// Builds the segment's child broker over its `(topology, route)`.
    /// Rate-based-only in this prototype, as in the original hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the segment contains delay-based hops (unsupported
    /// here) or an empty route.
    #[must_use]
    pub fn new(topo: Topology, route: &[LinkId]) -> Self {
        assert!(!route.is_empty(), "empty segment route");
        let mut broker = Broker::new(topo, BrokerConfig::default());
        let path = broker.register_route(route);
        assert!(
            !broker.paths().path(path).spec.has_delay_hops(),
            "hierarchical prototype supports rate-based segments only"
        );
        LocalSegment { broker, path }
    }

    /// The child broker (the segment's full QoS state).
    #[must_use]
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// Mutable access to the child broker — for experiments that
    /// manufacture concurrent control activity between summary
    /// refreshes.
    pub fn broker_mut(&mut self) -> &mut Broker {
        &mut self.broker
    }

    /// The path this segment owns within its child broker.
    #[must_use]
    pub fn path(&self) -> PathId {
        self.path
    }
}

impl SegmentAdmitter for LocalSegment {
    fn summary(&self) -> SegmentSummary {
        let p = self.broker.paths().path(self.path);
        SegmentSummary {
            h: p.spec.h(),
            d_tot: p.spec.d_tot(),
            c_res: p.residual(self.broker.nodes()),
        }
    }

    fn decide(
        &self,
        flow: FlowId,
        profile: &TrafficProfile,
        rate: Rate,
        delay: Nanos,
    ) -> AdmissionPlan {
        self.broker
            .decide_exact(flow, profile, rate, delay, self.path)
    }

    fn commit(&mut self, now: Time, plan: &AdmissionPlan) -> Result<Reservation, Reject> {
        self.broker.commit(now, plan)
    }

    fn release(&mut self, now: Time, flow: FlowId) -> Result<(), UnknownFlow> {
        self.broker.release(now, flow).map(|_| ())
    }
}

/// The decide phase's output for a whole chain: the per-domain segment
/// list of epoch-stamped plans, plus the end-to-end pair they grant.
///
/// Held by the coordinator between the phases; [`SegmentChain::commit`]
/// consumes it. Dropping it unconsumed costs nothing — decide is
/// read-only, so an abandoned plan leaves no booking anywhere.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    /// The flow the chain decided.
    pub flow: FlowId,
    /// End-to-end reserved rate (every segment books the same rate).
    pub rate: Rate,
    /// Delay parameter of the pair (zero on rate-based chains).
    pub delay: Nanos,
    /// One decided plan per segment, in chain order.
    plans: Vec<AdmissionPlan>,
}

impl SegmentPlan {
    /// Number of per-domain segments the plan spans.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.plans.len()
    }
}

/// The §3.1 end-to-end minimal rate over concatenated segment totals:
/// `Σh` hops and `ΣD^tot` static delay against the requirement `D^req`.
///
/// This is the formula both coordinators share — the in-process
/// [`SegmentChain`] applies it to its cached summaries, and the terminal
/// domain of a federated chain applies it to the accumulated totals a
/// PEER-DEC query carries.
///
/// # Errors
///
/// [`Reject::DelayInfeasible`] when no rate ≤ `P` meets the requirement.
pub fn end_to_end_rate(
    profile: &TrafficProfile,
    h: u64,
    d_tot: Nanos,
    d_req: Nanos,
) -> Result<Rate, Reject> {
    let r_min = min_rate_rate_based(profile, h, d_tot, d_req).ok_or(Reject::DelayInfeasible)?;
    if r_min > profile.peak {
        return Err(Reject::DelayInfeasible);
    }
    Ok(r_min.max(profile.rho))
}

/// A chain of segments under one coordinator, driving the two-phase
/// decide-all-then-commit protocol end to end.
#[derive(Debug)]
pub struct SegmentChain<A> {
    segments: Vec<A>,
    stats: ChainStats,
}

impl<A: SegmentAdmitter> SegmentChain<A> {
    /// Builds the chain, in path order.
    #[must_use]
    pub fn new(segments: Vec<A>) -> Self {
        SegmentChain {
            segments,
            stats: ChainStats::default(),
        }
    }

    /// Number of segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in chain order.
    #[must_use]
    pub fn segments(&self) -> &[A] {
        &self.segments
    }

    /// Mutable access to one segment.
    pub fn segment_mut(&mut self, i: usize) -> &mut A {
        &mut self.segments[i]
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &ChainStats {
        &self.stats
    }

    /// Current per-segment summaries (what a deployment would cache and
    /// refresh rather than recompute per request).
    #[must_use]
    pub fn summaries(&self) -> Vec<SegmentSummary> {
        self.segments.iter().map(SegmentAdmitter::summary).collect()
    }

    /// Phase 1 across the chain: concatenate the summaries, compute the
    /// §3.1 end-to-end rate, and ask every segment to decide the exact
    /// pair. Read-only — a refusal aborts with zero bookings and
    /// nothing to roll back.
    ///
    /// # Errors
    ///
    /// * [`Reject::DelayInfeasible`] — infeasible at any rate ≤ `P`;
    /// * [`Reject::Bandwidth`] — a summary or a segment refused for
    ///   capacity (stale summaries surface here, at decide time).
    pub fn decide(
        &mut self,
        flow: FlowId,
        profile: &TrafficProfile,
        d_req: Nanos,
        summaries: &[SegmentSummary],
    ) -> Result<SegmentPlan, Reject> {
        let h: u64 = summaries.iter().map(|s| s.h).sum();
        let d_tot: Nanos = summaries.iter().map(|s| s.d_tot).sum();
        let c_res = summaries.iter().map(|s| s.c_res).min().unwrap_or(Rate::MAX);

        let rate = end_to_end_rate(profile, h, d_tot, d_req).inspect_err(|_| {
            self.stats.rejected += 1;
        })?;
        if rate > c_res {
            self.stats.rejected += 1;
            return Err(Reject::Bandwidth);
        }

        let mut plans = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            self.stats.child_messages += 1;
            let plan = seg.decide(flow, profile, rate, Nanos::ZERO);
            if !plan.is_admit() {
                self.stats.aborts += 1;
                self.stats.rejected += 1;
                return Err(Reject::Bandwidth);
            }
            plans.push(plan);
        }
        Ok(SegmentPlan {
            flow,
            rate,
            delay: Nanos::ZERO,
            plans,
        })
    }

    /// Phase 2 across the chain: commit every segment's plan. If a
    /// segment refuses at commit (its state moved between the phases),
    /// the already-committed prefix is released back through the chain
    /// in reverse order before the cause is returned — no abort path
    /// leaves a booking behind.
    ///
    /// # Errors
    ///
    /// The refusing segment's [`Reject`] cause, after rollback.
    pub fn commit(&mut self, now: Time, plan: &SegmentPlan) -> Result<Rate, Reject> {
        assert_eq!(
            plan.plans.len(),
            self.segments.len(),
            "plan spans a different chain"
        );
        // Commit rides the decide exchange (one prepare/commit
        // round-trip per segment), so only rollback releases add
        // message cost here.
        for (i, (seg, p)) in self.segments.iter_mut().zip(&plan.plans).enumerate() {
            if let Err(cause) = seg.commit(now, p) {
                // Release flows back through the chain: free the booked
                // prefix in reverse order, nearest segment last.
                for seg in self.segments[..i].iter_mut().rev() {
                    self.stats.child_messages += 1;
                    seg.release(now, plan.flow)
                        .expect("committed prefix must hold the booking being rolled back");
                }
                self.stats.aborts += 1;
                self.stats.rejected += 1;
                return Err(cause);
            }
        }
        self.stats.admitted += 1;
        Ok(plan.rate)
    }

    /// Both phases with fresh summaries: decide everywhere, commit only
    /// if every segment said yes.
    ///
    /// # Errors
    ///
    /// As [`SegmentChain::decide`] / [`SegmentChain::commit`].
    pub fn admit(
        &mut self,
        now: Time,
        flow: FlowId,
        profile: &TrafficProfile,
        d_req: Nanos,
    ) -> Result<Rate, Reject> {
        let summaries = self.summaries();
        let plan = self.decide(flow, profile, d_req, &summaries)?;
        self.commit(now, &plan)
    }

    /// Releases a flow on every segment (teardown).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownFlow`] if no segment knows the id.
    pub fn release(&mut self, now: Time, flow: FlowId) -> Result<(), UnknownFlow> {
        let mut found = false;
        for seg in &mut self.segments {
            self.stats.child_messages += 1;
            if seg.release(now, flow).is_ok() {
                found = true;
            }
        }
        if found {
            Ok(())
        } else {
            Err(UnknownFlow(flow))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::{SchedulerSpec, TopologyBuilder};
    use qos_units::Bits;

    fn type0() -> TrafficProfile {
        TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap()
    }

    fn segment(hops: usize) -> LocalSegment {
        let mut b = TopologyBuilder::new();
        let nodes: Vec<_> = (0..=hops).map(|i| b.node(format!("n{i}"))).collect();
        let route: Vec<_> = (0..hops)
            .map(|i| {
                b.link(
                    nodes[i],
                    nodes[i + 1],
                    Rate::from_bps(1_500_000),
                    Nanos::ZERO,
                    SchedulerSpec::CsVc,
                    Bits::from_bytes(1500),
                )
            })
            .collect();
        LocalSegment::new(b.build(), &route)
    }

    #[test]
    fn decide_is_free_to_abandon() {
        let mut chain = SegmentChain::new(vec![segment(3), segment(2)]);
        let summaries = chain.summaries();
        let plan = chain
            .decide(FlowId(1), &type0(), Nanos::from_millis(2_440), &summaries)
            .unwrap();
        assert_eq!(plan.segment_count(), 2);
        drop(plan);
        // Nothing booked: the full residual is still there.
        for s in chain.summaries() {
            assert_eq!(s.c_res, Rate::from_bps(1_500_000));
        }
    }

    #[test]
    fn commit_refusal_releases_the_booked_prefix() {
        let mut chain = SegmentChain::new(vec![segment(3), segment(2)]);
        let summaries = chain.summaries();
        let plan = chain
            .decide(FlowId(1), &type0(), Nanos::from_millis(2_440), &summaries)
            .unwrap();
        // Between decide and commit, a competing booking exhausts
        // segment 1: its commit re-decides under the fresh epoch and
        // refuses, so segment 0's booking must be rolled back.
        let path = chain.segment_mut(1).path();
        chain
            .segment_mut(1)
            .broker_mut()
            .reserve_exact(
                Time::ZERO,
                FlowId(999),
                &type0(),
                Rate::from_bps(1_480_000),
                Nanos::ZERO,
                path,
            )
            .unwrap();
        let err = chain.commit(Time::ZERO, &plan).unwrap_err();
        assert_eq!(err, Reject::Bandwidth);
        assert_eq!(chain.stats().aborts, 1);
        assert_eq!(
            chain.segments()[0].summary().c_res,
            Rate::from_bps(1_500_000),
            "rollback leaked bandwidth on segment 0"
        );
        assert_eq!(chain.segments()[0].broker().flows().len(), 0);
    }

    #[test]
    fn boxed_admitters_drive_the_same_chain() {
        let segs: Vec<Box<dyn SegmentAdmitter>> = vec![Box::new(segment(3)), Box::new(segment(2))];
        let mut chain = SegmentChain::new(segs);
        let rate = chain
            .admit(Time::ZERO, FlowId(1), &type0(), Nanos::from_millis(2_440))
            .unwrap();
        assert_eq!(rate, Rate::from_bps(50_000));
        chain.release(Time::ZERO, FlowId(1)).unwrap();
        assert!(chain.release(Time::ZERO, FlowId(1)).is_err());
    }

    #[test]
    fn end_to_end_rate_matches_the_table_columns() {
        // 5 hops, 40 ms static delay — the Figure-8 S1→D1 path.
        let d_tot = Nanos::from_millis(40);
        assert_eq!(
            end_to_end_rate(&type0(), 5, d_tot, Nanos::from_millis(2_440)),
            Ok(Rate::from_bps(50_000))
        );
        assert_eq!(
            end_to_end_rate(&type0(), 5, d_tot, Nanos::from_millis(2_190)),
            Ok(Rate::from_bps(54_020))
        );
        assert_eq!(
            end_to_end_rate(&type0(), 5, d_tot, Nanos::from_millis(30)),
            Err(Reject::DelayInfeasible)
        );
    }
}
