//! The broker's QoS state information bases (§2.2).
//!
//! Three bases, exactly as the paper lays them out:
//!
//! * the **flow information base** ([`FlowMib`]) — per-flow traffic
//!   profile, service requirement and granted reservation;
//! * the **node QoS state information base** ([`NodeMib`]) — per-link
//!   capacity, scheduler kind and error term, current reservations, and
//!   (for delay-based links) the per-delay-class aggregates needed to
//!   evaluate the EDF schedulability condition without enumerating flows;
//! * the **path QoS state information base** ([`PathMib`]) — per-path hop
//!   counts, `D_tot = Σ(Ψ+π)`, maximum permissible packet size, and the
//!   residual-bandwidth / residual-service views the path-oriented
//!   admission algorithms consume.
//!
//! Everything here is plain bookkeeping on exact integer arithmetic — no
//! router is consulted, which is the architectural point.
//!
//! State is stored **densely** (see [`crate::store`]): path rows and
//! epochs live in contiguous vectors indexed by the sequentially
//! assigned [`PathId`], flow records live in a slab arena reached
//! through the wire-id interner, and the link → paths inverse index is
//! a compact CSR adjacency. The only hash in this module is the flow
//! interner probe at the MIB boundary.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qos_units::{Bits, Nanos, Rate, NANOS_PER_SEC};
use serde::{Deserialize, Serialize};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;
use vtrs::reference::{HopKind, HopSpec, PathSpec};

use crate::store::{FlowIdx, FlowTag, Interner, MacroIdx, PathIdx, Slab};

/// Identifies a path registered in the [`PathMib`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PathId(pub u64);

/// Identifies a link (router output port) in the broker's view of the
/// domain. Mirrors `netsim::LinkId` numerically when the broker is built
/// from a simulator topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkRef(pub usize);

/// Aggregated reservation state of one delay class on a delay-based link.
///
/// The broker never stores per-flow entries at links — only these
/// per-delay-value sums, which are sufficient to evaluate the EDF
/// schedulability condition and the residual service exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdfClass {
    /// Σ r over flows of this delay value.
    pub rate: Rate,
    /// Σ r·d in bps·ns (u128 to avoid overflow), for prefix-sum use.
    pub rate_delay: u128,
    /// Σ L scaled by 10⁹ (same fixed-point unit as residual service).
    pub lmax_scaled: u128,
    /// Number of reservations in the class.
    pub count: u64,
}

/// Per-link QoS state held by the broker.
#[derive(Debug, Clone)]
pub struct LinkQos {
    /// Link capacity `C`.
    pub capacity: Rate,
    /// Scheduler classification (rate- or delay-based).
    pub kind: HopKind,
    /// Scheduler error term `Ψ`.
    pub psi: Nanos,
    /// Propagation delay `π` to the next node.
    pub prop_delay: Nanos,
    /// Largest packet admitted on the link.
    pub max_packet: Bits,
    /// Total reserved bandwidth (all flows, plus active contingency).
    reserved: Rate,
    /// Delay-class aggregates (delay-based links only; empty otherwise).
    edf: BTreeMap<Nanos, EdfClass>,
    /// Administratively/operationally down. A down link admits nothing
    /// (its residual reads zero) but keeps its bookkeeping: existing
    /// reservations ride out the outage and release normally. Transient
    /// — not part of the persisted image; a recovered broker starts
    /// with every link up.
    down: bool,
}

impl LinkQos {
    /// Creates link state from static parameters.
    #[must_use]
    pub fn new(
        capacity: Rate,
        kind: HopKind,
        psi: Nanos,
        prop_delay: Nanos,
        max_packet: Bits,
    ) -> Self {
        LinkQos {
            capacity,
            kind,
            psi,
            prop_delay,
            max_packet,
            reserved: Rate::ZERO,
            edf: BTreeMap::new(),
            down: false,
        }
    }

    /// Marks the link down (true) or up (false). See the field note:
    /// down blocks new admissions only.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
    }

    /// Whether the link is currently down.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// This link's contribution to a path characterization.
    #[must_use]
    pub fn hop_spec(&self) -> HopSpec {
        HopSpec {
            kind: self.kind,
            psi: self.psi,
            prop_delay: self.prop_delay,
        }
    }

    /// Currently reserved bandwidth.
    #[must_use]
    pub fn reserved(&self) -> Rate {
        self.reserved
    }

    /// Residual bandwidth `C_res = C − Σr` (zero if oversubscribed, which
    /// bookkeeping never allows). A down link has no residual: every
    /// admissibility test — rate-based and EDF alike — funnels through
    /// this, so marking a link down rejects all new work on it.
    #[must_use]
    pub fn residual(&self) -> Rate {
        if self.down {
            return Rate::ZERO;
        }
        self.capacity.saturating_sub(self.reserved)
    }

    /// Reserves `r` on the link (bandwidth dimension only).
    ///
    /// # Panics
    ///
    /// Panics if the reservation would exceed capacity — callers must
    /// admission-test first; violating that is a broker bug.
    pub fn reserve(&mut self, r: Rate) {
        let new_total = self.reserved.saturating_add(r);
        assert!(
            new_total <= self.capacity,
            "link over-reserved: {} + {} > {}",
            self.reserved,
            r,
            self.capacity
        );
        self.reserved = new_total;
    }

    /// Releases `r` previously reserved.
    ///
    /// # Panics
    ///
    /// Panics if more is released than reserved (double-release bug).
    pub fn release(&mut self, r: Rate) {
        self.reserved = self
            .reserved
            .checked_sub(r)
            .expect("link reservation released twice");
    }

    /// Adds an EDF reservation `⟨r, d⟩` with packet bound `l_max` to the
    /// link's delay-class aggregates (delay-based links).
    pub fn add_edf(&mut self, r: Rate, d: Nanos, l_max: Bits) {
        let class = self.edf.entry(d).or_default();
        class.rate += r;
        class.rate_delay += u128::from(r.as_bps()) * u128::from(d.as_nanos());
        class.lmax_scaled += u128::from(l_max.as_bits()) * u128::from(NANOS_PER_SEC);
        class.count += 1;
    }

    /// Removes an EDF reservation previously added with identical
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if no matching class entry exists (release/accounting bug).
    pub fn remove_edf(&mut self, r: Rate, d: Nanos, l_max: Bits) {
        let class = self
            .edf
            .get_mut(&d)
            .expect("EDF class released but never reserved");
        class.rate -= r;
        class.rate_delay -= u128::from(r.as_bps()) * u128::from(d.as_nanos());
        class.lmax_scaled -= u128::from(l_max.as_bits()) * u128::from(NANOS_PER_SEC);
        class.count -= 1;
        if class.count == 0 {
            self.edf.remove(&d);
        }
    }

    /// Adjusts an existing EDF reservation's rate in place (macroflow
    /// re-rating keeps the class delay fixed, §4.2.2).
    ///
    /// # Panics
    ///
    /// Panics if the class does not exist.
    pub fn adjust_edf_rate(&mut self, d: Nanos, old_r: Rate, new_r: Rate) {
        let class = self
            .edf
            .get_mut(&d)
            .expect("EDF class adjusted but never reserved");
        class.rate = class.rate - old_r + new_r;
        class.rate_delay = class.rate_delay - u128::from(old_r.as_bps()) * u128::from(d.as_nanos())
            + u128::from(new_r.as_bps()) * u128::from(d.as_nanos());
    }

    /// Distinct delay values currently reserved on the link.
    pub fn edf_delays(&self) -> impl Iterator<Item = Nanos> + '_ {
        self.edf.keys().copied()
    }

    /// The link's delay-class aggregates in ascending delay order —
    /// the dynamic state a MIB snapshot captures alongside
    /// [`LinkQos::reserved`].
    pub fn edf_classes(&self) -> impl Iterator<Item = (Nanos, EdfClass)> + '_ {
        self.edf.iter().map(|(d, c)| (*d, *c))
    }

    /// Overwrites the link's dynamic reservation state from a snapshot
    /// image: the reserved total and the full delay-class table. Static
    /// parameters (capacity, scheduler kind, Ψ, π, packet bound) are
    /// untouched — they come from the topology the broker was rebuilt
    /// with.
    ///
    /// # Panics
    ///
    /// Panics if the restored total exceeds capacity (image from a
    /// different topology).
    pub fn restore_dynamic(
        &mut self,
        reserved: Rate,
        edf: impl IntoIterator<Item = (Nanos, EdfClass)>,
    ) {
        assert!(
            reserved <= self.capacity,
            "snapshot restores {reserved} onto a link of capacity {}",
            self.capacity
        );
        self.reserved = reserved;
        self.edf = edf.into_iter().collect();
    }

    /// Number of distinct delay classes (the `M` of the Figure-4
    /// complexity bound).
    #[must_use]
    pub fn edf_class_count(&self) -> usize {
        self.edf.len()
    }

    /// Total EDF-reserved rate of classes with delay ≤ `t` — the
    /// complement of the residual-service slope at horizon `t`.
    #[must_use]
    pub fn edf_active_rate(&self, t: Nanos) -> Rate {
        self.edf
            .range(..=t)
            .fold(Rate::ZERO, |acc, (_, c)| acc.saturating_add(c.rate))
    }

    /// The smallest reserved delay value strictly greater than `t`, if
    /// any (interval walking in the minimum-delay search).
    #[must_use]
    pub fn next_edf_delay_after(&self, t: Nanos) -> Option<Nanos> {
        self.edf
            .range((std::ops::Bound::Excluded(t), std::ops::Bound::Unbounded))
            .next()
            .map(|(d, _)| *d)
    }

    /// Exact per-link admissibility test for a candidate EDF reservation
    /// `⟨r, d⟩` with packet bound `l_max` (the per-hop constraint set of
    /// eq. 8, evaluated directly):
    ///
    /// * slope: `r` must fit in the link's residual bandwidth;
    /// * the candidate's own breakpoint: `S(d) ≥ L`;
    /// * every existing breakpoint `d_b ≥ d`: `r·(d_b − d) + L ≤ S(d_b)`.
    ///
    /// Used by the hop-by-hop IntServ baseline as its local test, and by
    /// the path-oriented algorithm as the exact final verification of a
    /// candidate pair.
    #[must_use]
    pub fn edf_admissible(&self, r: Rate, d: Nanos, l_max: Bits) -> bool {
        if r > self.residual() {
            return false;
        }
        let l9 = i128::from(l_max.as_bits()) * i128::from(NANOS_PER_SEC);
        // One sorted horizon list — the candidate's own deadline plus all
        // breakpoints at or above it — evaluated in a single sweep.
        let mut horizons = vec![d];
        horizons.extend(self.edf.range(d..).map(|(db, _)| *db));
        let profile = self.residual_service_profile(&horizons);
        if profile[0] < l9 {
            return false;
        }
        for (db, s) in horizons[1..].iter().zip(&profile[1..]) {
            let need = i128::from(r.as_bps()) * i128::from((*db - d).as_nanos()) + l9;
            if *s < need {
                return false;
            }
        }
        true
    }

    /// Residual service at every horizon of a **sorted** list, in one
    /// prefix-sum sweep over the class aggregates — O(classes +
    /// horizons), versus O(classes × horizons) for repeated point
    /// queries. This is the bulk evaluation behind the path MIB's `S^k`
    /// vector (the quantities the Figure-4 scan consumes).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `horizons` is sorted ascending.
    #[must_use]
    pub fn residual_service_profile(&self, horizons: &[Nanos]) -> Vec<i128> {
        debug_assert!(horizons.windows(2).all(|w| w[0] <= w[1]));
        let mut out = Vec::with_capacity(horizons.len());
        let mut classes = self.edf.iter().peekable();
        // Running prefix sums over classes with delay ≤ horizon.
        let mut sum_rate: i128 = 0; // Σ r_j (bps)
        let mut sum_rate_delay: i128 = 0; // Σ r_j·d_j (bps·ns)
        let mut sum_l9: i128 = 0; // Σ L_j · 10⁹
        for t in horizons {
            while let Some((d, c)) = classes.peek() {
                if **d > *t {
                    break;
                }
                sum_rate += i128::from(c.rate.as_bps());
                sum_rate_delay += i128::try_from(c.rate_delay).expect("fits i128");
                sum_l9 += i128::try_from(c.lmax_scaled).expect("fits i128");
                classes.next();
            }
            let ct = i128::from(self.capacity.as_bps()) * i128::from(t.as_nanos());
            out.push(ct - (sum_rate * i128::from(t.as_nanos()) - sum_rate_delay + sum_l9));
        }
        out
    }

    /// Residual service `S(t)` of the link at horizon `t`, in scaled bits
    /// (`× 10⁹`): `C·t − Σ_{d_j ≤ t} [ r_j (t − d_j) + L_j ]`.
    ///
    /// Exact prefix-sum evaluation over the class aggregates; negative
    /// means the current reservation set would be unschedulable at `t`
    /// (never true after successful bookkeeping).
    #[must_use]
    pub fn residual_service(&self, t: Nanos) -> i128 {
        let mut s = i128::from(self.capacity.as_bps()) * i128::from(t.as_nanos());
        for (d, class) in self.edf.range(..=t) {
            // r_j (t − d_j) summed over the class: rate·t − rate·d.
            s -= i128::from(class.rate.as_bps()) * i128::from(t.as_nanos());
            s += i128::try_from(class.rate_delay).expect("rate_delay fits i128");
            s -= i128::try_from(class.lmax_scaled).expect("lmax fits i128");
            debug_assert!(*d <= t);
        }
        s
    }
}

/// The node QoS state information base: one [`LinkQos`] per link of the
/// domain.
#[derive(Debug, Clone, Default)]
pub struct NodeMib {
    links: Vec<LinkQos>,
}

impl NodeMib {
    /// Creates an empty base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a link, returning its reference.
    pub fn add_link(&mut self, link: LinkQos) -> LinkRef {
        let id = LinkRef(self.links.len());
        self.links.push(link);
        id
    }

    /// Immutable access to a link's state.
    ///
    /// # Panics
    ///
    /// Panics on an unknown reference.
    #[must_use]
    pub fn link(&self, l: LinkRef) -> &LinkQos {
        &self.links[l.0]
    }

    /// Mutable access to a link's state.
    ///
    /// # Panics
    ///
    /// Panics on an unknown reference.
    pub fn link_mut(&mut self, l: LinkRef) -> &mut LinkQos {
        &mut self.links[l.0]
    }

    /// Number of links registered.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Minimal residual bandwidth over a set of links — the §3.1
    /// admissibility scan's inner loop, as a chunked walk over the
    /// dense link rows. Processing four independent rows per iteration
    /// breaks the serial `min` dependency chain so the loads pipeline
    /// (and auto-vectorize), instead of pointer-chasing one row at a
    /// time. Returns [`Rate::MAX`] for an empty set.
    #[must_use]
    pub fn residual_min(&self, links: &[LinkRef]) -> Rate {
        let mut chunks = links.chunks_exact(4);
        let mut m0 = Rate::MAX;
        let mut m1 = Rate::MAX;
        let mut m2 = Rate::MAX;
        let mut m3 = Rate::MAX;
        for c in &mut chunks {
            m0 = m0.min(self.links[c[0].0].residual());
            m1 = m1.min(self.links[c[1].0].residual());
            m2 = m2.min(self.links[c[2].0].residual());
            m3 = m3.min(self.links[c[3].0].residual());
        }
        let mut min = m0.min(m1).min(m2.min(m3));
        for l in chunks.remainder() {
            min = min.min(self.links[l.0].residual());
        }
        min
    }
}

/// A path's static QoS characterization plus its member links.
#[derive(Debug, Clone)]
pub struct PathQos {
    /// Ordered links of the path.
    pub links: Vec<LinkRef>,
    /// Cached hop characterization (kinds, error terms, propagation).
    pub spec: PathSpec,
    /// `L^{P,max}`: the largest packet permissible along the path (§4.1).
    pub l_pmax: Bits,
}

impl PathQos {
    /// Minimal residual bandwidth along the path, `C_res^P` — one
    /// chunked sweep over the path's dense link rows
    /// ([`NodeMib::residual_min`]).
    #[must_use]
    pub fn residual(&self, nodes: &NodeMib) -> Rate {
        nodes.residual_min(&self.links)
    }

    /// The delay-based links of the path.
    #[must_use]
    pub fn delay_links<'a>(&'a self, nodes: &'a NodeMib) -> Vec<(&'a LinkQos, LinkRef)> {
        self.links
            .iter()
            .filter(|l| nodes.link(**l).kind == HopKind::DelayBased)
            .map(|l| (nodes.link(*l), *l))
            .collect()
    }

    /// Union of distinct delay values reserved across the path's
    /// delay-based links — the breakpoints `d¹ < d² < … < d^M` the
    /// Figure-4 scan walks.
    #[must_use]
    pub fn distinct_delays(&self, nodes: &NodeMib) -> Vec<Nanos> {
        let mut ds: Vec<Nanos> = self
            .delay_links(nodes)
            .iter()
            .flat_map(|(link, _)| link.edf_delays().collect::<Vec<_>>())
            .collect();
        ds.sort_unstable();
        ds.dedup();
        ds
    }

    /// Path-level residual service `S̄(t) = min_i S_i(t)` over the
    /// delay-based links (scaled bits). Returns `None` when the path has
    /// no delay-based links.
    #[must_use]
    pub fn min_residual_service(&self, nodes: &NodeMib, t: Nanos) -> Option<i128> {
        self.delay_links(nodes)
            .iter()
            .map(|(link, _)| link.residual_service(t))
            .min()
    }

    /// Computes the path's cached QoS summary from the node base — one
    /// full walk over the path's link rows, whose result the decide
    /// phase then reuses for every admission until the path's epoch
    /// moves (see [`PathMib::epoch`]).
    #[must_use]
    pub fn summarize(&self, nodes: &NodeMib, epoch: u64) -> PathSummary {
        let c_res = self.residual(nodes);
        let delay = self.spec.has_delay_hops().then(|| {
            let links = self.delay_links(nodes);
            let breakpoints = self.distinct_delays(nodes);
            let mut s_bar = vec![i128::MAX; breakpoints.len()];
            for (link, _) in &links {
                for (s, v) in s_bar
                    .iter_mut()
                    .zip(link.residual_service_profile(&breakpoints))
                {
                    *s = (*s).min(v);
                }
            }
            let min_capacity = links
                .iter()
                .map(|(link, _)| link.capacity)
                .min()
                .unwrap_or(Rate::MAX);
            DelaySummary {
                breakpoints,
                s_bar,
                min_capacity,
            }
        });
        PathSummary {
            epoch,
            c_res,
            delay,
        }
    }
}

/// Delay-dimension part of a [`PathSummary`] (delay-based paths only):
/// everything the Figure-4 minimum-delay scan reads from link rows,
/// precomputed path-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelaySummary {
    /// Union of distinct reserved delay values across the path's
    /// delay-based links, ascending (`d¹ < … < d^M`).
    pub breakpoints: Vec<Nanos>,
    /// Path residual service `S̄(d^k) = min_i S_i(d^k)` at every
    /// breakpoint, scaled bits (`× 10⁹`).
    pub s_bar: Vec<i128>,
    /// Smallest capacity among the delay-based links — fixes the
    /// transmission-time floor `d_min⁰` for any packet bound.
    pub min_capacity: Rate,
}

/// Per-path cached QoS summary consumed by the read-only decide phase:
/// the path-level quantities of §3.1/§3.2 (residual bandwidth; for
/// delay paths the residual-service vector), stamped with the epoch of
/// the MIB state they were computed from. A summary whose epoch equals
/// the path's current epoch is exact — using it touches no link rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSummary {
    /// Path epoch at computation time ([`PathMib::epoch`]).
    pub epoch: u64,
    /// Minimal residual bandwidth along the path, `C_res^P`.
    pub c_res: Rate,
    /// Delay-dimension summary; `None` for purely rate-based paths.
    pub delay: Option<DelaySummary>,
}

/// Compact link → paths inverse index in CSR form: one offset span per
/// link, all member rows in one contiguous vector — no per-link `Vec`
/// allocations, one cache-friendly slice walk per touched link.
///
/// Registration only marks the index stale; the first
/// [`PathMib::touch`] after a registration burst rebuilds it in one
/// O(links + memberships) pass. Setup registers paths in bursts and
/// the hot path only touches, so rebuilds are effectively free.
#[derive(Debug, Clone, Default)]
struct LinkAdjacency {
    /// `offsets[l]..offsets[l+1]` spans the rows of link `l` in
    /// `members`.
    offsets: Vec<u32>,
    /// Path rows, grouped by link.
    members: Vec<u32>,
    /// A registration happened since the last rebuild.
    stale: bool,
}

impl LinkAdjacency {
    fn rebuild(&mut self, rows: &[PathQos]) {
        let link_count = rows
            .iter()
            .flat_map(|p| &p.links)
            .map(|l| l.0 + 1)
            .max()
            .unwrap_or(0);
        let mut counts = vec![0u32; link_count];
        for p in rows {
            for l in &p.links {
                counts[l.0] += 1;
            }
        }
        self.offsets.clear();
        self.offsets.reserve(link_count + 1);
        let mut running = 0u32;
        self.offsets.push(0);
        for c in &counts {
            running += c;
            self.offsets.push(running);
        }
        self.members.clear();
        self.members.resize(running as usize, 0);
        let mut cursor: Vec<u32> = self.offsets[..link_count].to_vec();
        for (row, p) in rows.iter().enumerate() {
            for l in &p.links {
                #[allow(clippy::cast_possible_truncation)]
                {
                    self.members[cursor[l.0] as usize] = row as u32;
                }
                cursor[l.0] += 1;
            }
        }
        self.stale = false;
    }

    /// The rows of paths traversing `link` (empty for unknown links).
    fn members(&self, link: LinkRef) -> &[u32] {
        match (self.offsets.get(link.0), self.offsets.get(link.0 + 1)) {
            (Some(&a), Some(&b)) => &self.members[a as usize..b as usize],
            _ => &[],
        }
    }
}

/// The path QoS state information base.
///
/// Rows are dense: [`PathMib::register`] assigns [`PathId`]s
/// sequentially, so the wire-visible id *is* the row index and every
/// lookup is a bounds-checked array read — no hashing. Alongside the
/// rows runs an inline **epoch lane** of `AtomicU64`s, bumped (via
/// [`PathMib::touch`]) whenever broker bookkeeping changes any state a
/// path's admission verdicts depend on; the read-only decide phase
/// validates summary stamps with one relaxed load per decision. The
/// link → paths inverse index that makes a bump reach every path
/// sharing a touched link is a CSR adjacency (`LinkAdjacency`).
/// Cached [`PathSummary`]s are valid exactly as long as their recorded
/// epoch matches [`PathMib::epoch`].
#[derive(Debug, Default)]
pub struct PathMib {
    rows: Vec<PathQos>,
    /// Inline epoch lane, one counter per row, shared via `Arc` with
    /// the lock-free decide handles (see [`crate::shard`]).
    epochs: Arc<EpochLane>,
    /// Inverse index: which rows traverse each link.
    adjacency: LinkAdjacency,
}

impl Clone for PathMib {
    fn clone(&self) -> Self {
        PathMib {
            rows: self.rows.clone(),
            // Deep copy: a cloned MIB must own an independent lane, not
            // alias the source's bookkeeping.
            epochs: Arc::new((*self.epochs).clone()),
            adjacency: self.adjacency.clone(),
        }
    }
}

/// The path epoch lane: one `AtomicU64` per dense path row, bumped by
/// broker bookkeeping and read by the decide phase to validate summary
/// stamps. Atomics so `&self` readers (concurrent decides — under a
/// shard read lock *or* through a lock-free
/// [`crate::shard::FastDecideHandle`]) can load while `&mut self`
/// bookkeeping stores; all accesses are relaxed. For locked decides the
/// shard lock orders the state the epoch protects; for lock-free
/// decides the commit phase revalidates the stamp under the write lock,
/// so a racy load can only cause a plan retry, never a wrong booking.
///
/// Shared via `Arc` between the owning [`PathMib`] and any decide
/// handles built from it. Registration grows the lane through
/// `Arc::make_mut`: if handles exist at registration time the live lane
/// is copied and the handles keep a frozen snapshot — their rows stop
/// advancing, every fast probe goes stale, and they degrade safely to
/// the locked path. Servers build handles after setup registration,
/// so in practice the lane is never cloned.
#[derive(Debug, Default)]
pub struct EpochLane {
    lanes: Vec<AtomicU64>,
}

impl Clone for EpochLane {
    fn clone(&self) -> Self {
        EpochLane {
            lanes: self
                .lanes
                .iter()
                .map(|e| AtomicU64::new(e.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl EpochLane {
    /// Number of rows the lane covers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the lane covers no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Relaxed load of a row's epoch; `None` for rows past the lane's
    /// end (paths registered after this lane view was taken).
    #[must_use]
    pub fn load(&self, row: usize) -> Option<u64> {
        self.lanes.get(row).map(|e| e.load(Ordering::Relaxed))
    }

    fn bump(&self, row: usize) {
        self.lanes[row].fetch_add(1, Ordering::Relaxed);
    }
}

impl PathMib {
    /// Creates an empty base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a path over the given links, computing its cached
    /// characterization from the node base. Ids are assigned densely:
    /// the `n`-th registration returns `PathId(n)`.
    pub fn register(&mut self, nodes: &NodeMib, links: Vec<LinkRef>) -> PathId {
        let spec = PathSpec::new(links.iter().map(|l| nodes.link(*l).hop_spec()).collect());
        let l_pmax = links
            .iter()
            .map(|l| nodes.link(*l).max_packet)
            .max()
            .unwrap_or(Bits::ZERO);
        let id = PathId(self.rows.len() as u64);
        self.rows.push(PathQos {
            links,
            spec,
            l_pmax,
        });
        Arc::make_mut(&mut self.epochs)
            .lanes
            .push(AtomicU64::new(0));
        self.adjacency.stale = true;
        id
    }

    /// Shared view of the epoch lane for lock-free decide handles.
    #[must_use]
    pub fn epoch_lane(&self) -> Arc<EpochLane> {
        Arc::clone(&self.epochs)
    }

    /// Row index of a registered id, `None` otherwise.
    fn row_of(&self, id: PathId) -> Option<usize> {
        let i = usize::try_from(id.0).ok()?;
        (i < self.rows.len()).then_some(i)
    }

    /// Interns a wire-level path id to its dense handle, `None` when
    /// the id was never registered. Paths are never deregistered, so
    /// the handle generation is always zero.
    #[must_use]
    pub fn resolve(&self, id: PathId) -> Option<PathIdx> {
        #[allow(clippy::cast_possible_truncation)]
        self.row_of(id).map(|i| PathIdx::new(i as u32, 0))
    }

    /// Direct row access by dense handle.
    ///
    /// # Panics
    ///
    /// Panics when the handle was not minted by [`PathMib::resolve`].
    #[must_use]
    pub fn row(&self, idx: PathIdx) -> &PathQos {
        &self.rows[idx.index()]
    }

    /// Path lookup by wire id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn path(&self, id: PathId) -> &PathQos {
        self.row_of(id)
            .map(|i| &self.rows[i])
            .expect("unknown path id")
    }

    /// The path's current state epoch (0 for ids never registered).
    #[must_use]
    pub fn epoch(&self, id: PathId) -> u64 {
        self.row_of(id)
            .and_then(|i| self.epochs.load(i))
            .unwrap_or(0)
    }

    /// Epoch of a row named by dense handle — the decide phase's stamp
    /// validation, one relaxed load with no map lookup.
    ///
    /// # Panics
    ///
    /// Panics when the handle was not minted by [`PathMib::resolve`].
    #[must_use]
    pub fn epoch_at(&self, idx: PathIdx) -> u64 {
        self.epochs.load(idx.index()).expect("unknown path handle")
    }

    /// Declares that state this path's admission verdicts depend on has
    /// changed: bumps the epoch of the path **and of every registered
    /// path sharing a link with it**, invalidating their cached
    /// summaries. Called by the broker after every mutating operation —
    /// including ones that change no link row (e.g. a class-member
    /// leave's macroflow re-rating), since those still move plan-visible
    /// state. Each bump is a relaxed RMW on the epoch lane.
    pub fn touch(&mut self, id: PathId) {
        let Some(row) = self.row_of(id) else {
            return;
        };
        if self.adjacency.stale {
            self.adjacency.rebuild(&self.rows);
        }
        self.epochs.bump(row);
        // A path can share several links with a neighbour; bumping its
        // epoch once per shared link (and itself once per own link) is
        // harmless — epochs are compared for equality, never distance.
        for l in &self.rows[row].links {
            for &member in self.adjacency.members(*l) {
                self.epochs.bump(member as usize);
            }
        }
    }

    /// Declares that one link's state changed out-of-band (an up/down
    /// flip): bumps the epoch of every registered path crossing that
    /// link, invalidating their cached summaries — [`PathMib::touch`]
    /// restricted to a single link instead of a path's link set.
    pub fn touch_link(&mut self, link: LinkRef) {
        if self.adjacency.stale {
            self.adjacency.rebuild(&self.rows);
        }
        for &member in self.adjacency.members(link) {
            self.epochs.bump(member as usize);
        }
    }

    /// Number of registered paths.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the base is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// How a flow is being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowService {
    /// Dedicated per-flow reservation `⟨r, d⟩`.
    PerFlow {
        /// Reserved rate.
        rate: Rate,
        /// Delay parameter at delay-based hops.
        delay: Nanos,
    },
    /// Member of a class-based macroflow.
    ClassMember {
        /// Dense handle of the macroflow (class × path) the microflow
        /// was aggregated into — release and feedback reach the
        /// macroflow arena directly, no wire-id hash. The macroflow's
        /// wire id lives in its [`crate::broker::MacroState`].
        macroflow: MacroIdx,
    },
}

/// A flow record in the flow information base.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Declared traffic profile.
    pub profile: TrafficProfile,
    /// End-to-end delay requirement `D^req`.
    pub d_req: Nanos,
    /// Path the flow was routed over.
    pub path: PathId,
    /// Granted service.
    pub service: FlowService,
}

/// The flow information base: records in a dense slab arena
/// ([`crate::store::Slab`]), reached through the wire-id interner.
/// Each wire-keyed operation performs exactly one interner probe — the
/// sanctioned boundary translation — and every inboard consumer holding
/// a [`FlowIdx`] addresses the record without hashing at all.
#[derive(Debug, Clone, Default)]
pub struct FlowMib {
    arena: Slab<FlowTag, (FlowId, FlowRecord)>,
    interner: Interner<FlowIdx>,
}

impl FlowMib {
    /// Creates an empty base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a record, returning its dense handle.
    ///
    /// # Panics
    ///
    /// Panics on duplicate flow ids (broker bookkeeping bug).
    pub fn insert(&mut self, id: FlowId, record: FlowRecord) -> FlowIdx {
        let idx = self.arena.insert((id, record));
        let prev = self.interner.bind(id.0, idx);
        assert!(prev.is_none(), "flow {id} already in the flow MIB");
        idx
    }

    /// Removes and returns a record by wire id (one interner probe).
    #[must_use]
    pub fn remove(&mut self, id: FlowId) -> Option<FlowRecord> {
        let idx = self.interner.unbind(id.0)?;
        self.arena.remove(idx).map(|(_, record)| record)
    }

    /// Record lookup by wire id (one interner probe).
    #[must_use]
    pub fn get(&self, id: FlowId) -> Option<&FlowRecord> {
        self.record(self.interner.resolve(id.0)?)
    }

    /// Interns a wire id to its dense handle without reading the
    /// record.
    #[must_use]
    pub fn lookup(&self, id: FlowId) -> Option<FlowIdx> {
        self.interner.resolve(id.0)
    }

    /// Record access by dense handle — no hashing.
    #[must_use]
    pub fn record(&self, idx: FlowIdx) -> Option<&FlowRecord> {
        self.arena.get(idx).map(|(_, record)| record)
    }

    /// Number of flows tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the base is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Total arena slots (live + recyclable) — the base's footprint,
    /// surfaced as a telemetry occupancy gauge.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.arena.slot_count()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = (&FlowId, &FlowRecord)> {
        self.arena.iter().map(|(_, entry)| (&entry.0, &entry.1))
    }

    /// Exports the arena's raw layout (slots with generations, free
    /// list) for a MIB snapshot. The interner is not exported: every
    /// occupied slot carries its wire id, so [`FlowMib::from_raw`]
    /// rebuilds the translation table losslessly.
    #[must_use]
    pub fn export_raw(&self) -> (Vec<crate::store::RawSlot<(FlowId, FlowRecord)>>, Vec<u32>) {
        self.arena.export_raw()
    }

    /// Rebuilds the base from an [`FlowMib::export_raw`] image,
    /// re-interning every occupied slot's wire id to its original
    /// dense handle (generations intact).
    #[must_use]
    pub fn from_raw(
        slots: Vec<crate::store::RawSlot<(FlowId, FlowRecord)>>,
        free: Vec<u32>,
    ) -> Self {
        let arena = Slab::from_raw(slots, free);
        let interner = Interner::from_entries(arena.iter().map(|(idx, (id, _))| (id.0, idx)));
        FlowMib { arena, interner }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay_link() -> LinkQos {
        LinkQos::new(
            Rate::from_bps(1_500_000),
            HopKind::DelayBased,
            Nanos::from_millis(8),
            Nanos::ZERO,
            Bits::from_bytes(1500),
        )
    }

    #[test]
    fn bandwidth_bookkeeping() {
        let mut l = delay_link();
        assert_eq!(l.residual(), Rate::from_bps(1_500_000));
        l.reserve(Rate::from_bps(1_000_000));
        assert_eq!(l.residual(), Rate::from_bps(500_000));
        l.release(Rate::from_bps(400_000));
        assert_eq!(l.reserved(), Rate::from_bps(600_000));
    }

    #[test]
    fn down_link_has_no_residual_but_keeps_its_books() {
        let mut l = delay_link();
        l.reserve(Rate::from_bps(600_000));
        l.set_down(true);
        assert!(l.is_down());
        assert_eq!(l.residual(), Rate::ZERO);
        // EDF admissibility funnels through residual(): nothing fits.
        assert!(!l.edf_admissible(
            Rate::from_bps(1),
            Nanos::from_millis(500),
            Bits::from_bytes(125)
        ));
        // Bookkeeping continues through the outage: releases (and even
        // reserves driven by pre-decided plans) still apply.
        l.release(Rate::from_bps(100_000));
        assert_eq!(l.reserved(), Rate::from_bps(500_000));
        l.set_down(false);
        assert_eq!(l.residual(), Rate::from_bps(1_000_000));
    }

    #[test]
    #[should_panic(expected = "over-reserved")]
    fn over_reservation_is_a_bug() {
        let mut l = delay_link();
        l.reserve(Rate::from_bps(1_500_001));
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_is_a_bug() {
        let mut l = delay_link();
        l.reserve(Rate::from_bps(10));
        l.release(Rate::from_bps(11));
    }

    #[test]
    fn edf_aggregates_match_flow_list_semantics() {
        // Aggregated arithmetic must equal sched::schedulability's
        // per-flow computation on the same set.
        let mut l = delay_link();
        let flows = [
            (50_000u64, 240u64),
            (30_000, 240),
            (20_000, 100),
            (10_000, 500),
        ];
        let mut list = Vec::new();
        for (r, d) in flows {
            l.add_edf(
                Rate::from_bps(r),
                Nanos::from_millis(d),
                Bits::from_bytes(1500),
            );
            list.push(sched::schedulability::EdfFlow {
                rate: Rate::from_bps(r),
                delay: Nanos::from_millis(d),
                l_max: Bits::from_bytes(1500),
            });
        }
        assert_eq!(l.edf_class_count(), 3);
        for t_ms in [50u64, 100, 240, 400, 500, 1000] {
            let t = Nanos::from_millis(t_ms);
            assert_eq!(
                l.residual_service(t),
                sched::schedulability::residual_service(&list, l.capacity, t),
                "mismatch at t = {t}"
            );
        }
        // Removal restores the empty state exactly.
        for (r, d) in flows {
            l.remove_edf(
                Rate::from_bps(r),
                Nanos::from_millis(d),
                Bits::from_bytes(1500),
            );
        }
        assert_eq!(l.edf_class_count(), 0);
        assert_eq!(
            l.residual_service(Nanos::from_secs(1)),
            i128::from(1_500_000u64) * 1_000_000_000
        );
    }

    #[test]
    fn edf_rate_adjustment_in_place() {
        let mut l = delay_link();
        let d = Nanos::from_millis(240);
        l.add_edf(Rate::from_bps(100_000), d, Bits::from_bytes(1500));
        l.adjust_edf_rate(d, Rate::from_bps(100_000), Rate::from_bps(150_000));
        let s_before = l.residual_service(Nanos::from_millis(480));
        let mut l2 = delay_link();
        l2.add_edf(Rate::from_bps(150_000), d, Bits::from_bytes(1500));
        assert_eq!(s_before, l2.residual_service(Nanos::from_millis(480)));
    }

    #[test]
    fn path_mib_caches_spec_and_residuals() {
        let mut nodes = NodeMib::new();
        let rate_link = LinkQos::new(
            Rate::from_bps(1_500_000),
            HopKind::RateBased,
            Nanos::from_millis(8),
            Nanos::ZERO,
            Bits::from_bytes(1500),
        );
        let l0 = nodes.add_link(rate_link.clone());
        let l1 = nodes.add_link(delay_link());
        let l2 = nodes.add_link(rate_link);
        let mut paths = PathMib::new();
        let pid = paths.register(&nodes, vec![l0, l1, l2]);
        let p = paths.path(pid);
        assert_eq!(p.spec.h(), 3);
        assert_eq!(p.spec.q(), 2);
        assert_eq!(p.l_pmax, Bits::from_bytes(1500));
        assert_eq!(p.residual(&nodes), Rate::from_bps(1_500_000));

        nodes.link_mut(l1).reserve(Rate::from_bps(600_000));
        nodes.link_mut(l1).add_edf(
            Rate::from_bps(600_000),
            Nanos::from_millis(100),
            Bits::from_bytes(1500),
        );
        let p = paths.path(pid);
        assert_eq!(p.residual(&nodes), Rate::from_bps(900_000));
        assert_eq!(p.distinct_delays(&nodes), vec![Nanos::from_millis(100)]);
        assert!(
            p.min_residual_service(&nodes, Nanos::from_millis(100))
                .unwrap()
                > 0
        );
    }

    #[test]
    fn touch_bumps_exactly_the_link_sharing_paths() {
        let mut nodes = NodeMib::new();
        let mk = || {
            LinkQos::new(
                Rate::from_bps(1_500_000),
                HopKind::RateBased,
                Nanos::from_millis(8),
                Nanos::ZERO,
                Bits::from_bytes(1500),
            )
        };
        let shared = nodes.add_link(mk());
        let a = nodes.add_link(mk());
        let b = nodes.add_link(mk());
        let c = nodes.add_link(mk());
        let mut paths = PathMib::new();
        let p0 = paths.register(&nodes, vec![shared, a]);
        let p1 = paths.register(&nodes, vec![shared, b]);
        let p2 = paths.register(&nodes, vec![c]);
        assert_eq!(
            (paths.epoch(p0), paths.epoch(p1), paths.epoch(p2)),
            (0, 0, 0)
        );

        paths.touch(p0);
        // p0 and p1 share `shared`, so both move; the disjoint p2 keeps
        // its epoch (and thus any cached summary) intact.
        assert_ne!(paths.epoch(p0), 0);
        assert_ne!(paths.epoch(p1), 0);
        assert_eq!(paths.epoch(p2), 0);

        let before = paths.epoch(p0);
        paths.touch(p2);
        assert_eq!(paths.epoch(p0), before, "disjoint touch must not reach p0");
    }

    #[test]
    fn path_summary_matches_direct_link_reads() {
        let mut nodes = NodeMib::new();
        let rate_link = LinkQos::new(
            Rate::from_bps(1_500_000),
            HopKind::RateBased,
            Nanos::from_millis(8),
            Nanos::ZERO,
            Bits::from_bytes(1500),
        );
        let l0 = nodes.add_link(rate_link);
        let l1 = nodes.add_link(delay_link());
        let mut paths = PathMib::new();
        let pid = paths.register(&nodes, vec![l0, l1]);
        nodes.link_mut(l1).reserve(Rate::from_bps(600_000));
        nodes.link_mut(l1).add_edf(
            Rate::from_bps(600_000),
            Nanos::from_millis(100),
            Bits::from_bytes(1500),
        );

        let p = paths.path(pid);
        let summary = p.summarize(&nodes, paths.epoch(pid));
        assert_eq!(summary.c_res, p.residual(&nodes));
        let delay = summary.delay.expect("path has a delay hop");
        assert_eq!(delay.breakpoints, p.distinct_delays(&nodes));
        assert_eq!(delay.min_capacity, Rate::from_bps(1_500_000));
        assert_eq!(
            delay.s_bar,
            vec![p
                .min_residual_service(&nodes, Nanos::from_millis(100))
                .unwrap()]
        );
    }

    #[test]
    fn flow_mib_roundtrip() {
        let mut fm = FlowMib::new();
        let profile = TrafficProfile::new(
            Bits::from_bits(60_000),
            Rate::from_bps(50_000),
            Rate::from_bps(100_000),
            Bits::from_bytes(1500),
        )
        .unwrap();
        fm.insert(
            FlowId(1),
            FlowRecord {
                profile,
                d_req: Nanos::from_millis(2_440),
                path: PathId(0),
                service: FlowService::PerFlow {
                    rate: Rate::from_bps(50_000),
                    delay: Nanos::ZERO,
                },
            },
        );
        assert_eq!(fm.len(), 1);
        assert!(fm.get(FlowId(1)).is_some());
        assert!(fm.remove(FlowId(1)).is_some());
        assert!(fm.is_empty());
    }
}
// (bulk-profile equivalence test appended)

#[cfg(test)]
mod profile_sweep_tests {
    use super::*;

    #[test]
    fn bulk_profile_matches_point_queries() {
        let mut l = LinkQos::new(
            Rate::from_bps(2_000_000),
            HopKind::DelayBased,
            Nanos::from_millis(6),
            Nanos::ZERO,
            Bits::from_bytes(1500),
        );
        for (r, d_ms) in [
            (50_000u64, 20u64),
            (30_000, 50),
            (20_000, 50),
            (10_000, 200),
        ] {
            l.add_edf(
                Rate::from_bps(r),
                Nanos::from_millis(d_ms),
                Bits::from_bytes(1500),
            );
        }
        let horizons: Vec<Nanos> = [5u64, 20, 35, 50, 120, 200, 500]
            .into_iter()
            .map(Nanos::from_millis)
            .collect();
        let bulk = l.residual_service_profile(&horizons);
        for (t, s) in horizons.iter().zip(&bulk) {
            assert_eq!(*s, l.residual_service(*t), "mismatch at {t}");
        }
    }
}
