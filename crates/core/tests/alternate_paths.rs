//! Network-wide optimization: alternate-path admission (§1's promise).
//!
//! Because every path's QoS state lives at the broker, a rejected
//! shortest path is not the end of the story — the broker can place the
//! flow on a parallel route with headroom. A hop-by-hop control plane
//! signaling along the routing-protocol path cannot do this.

use bb_core::{Broker, BrokerConfig, FlowRequest, Reject, ServiceKind};
use netsim::topology::{NodeId, SchedulerSpec, Topology, TopologyBuilder};
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

/// A diamond: I → {A | B} → E, plus a direct 1-hop shortcut I → E.
/// Shortest path is the shortcut; the two 2-hop branches are alternates.
fn diamond() -> (Topology, NodeId, NodeId) {
    let mut b = TopologyBuilder::new();
    let i = b.node("I");
    let a = b.node("A");
    let bb = b.node("B");
    let e = b.node("E");
    let cap = Rate::from_bps(1_500_000);
    let lmax = Bits::from_bytes(1500);
    b.link(i, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax); // shortcut
    b.link(i, a, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(a, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(i, bb, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    b.link(bb, e, cap, Nanos::ZERO, SchedulerSpec::CsVc, lmax);
    (b.build(), i, e)
}

fn request(flow: u64) -> FlowRequest {
    FlowRequest {
        flow: FlowId(flow),
        profile: type0(),
        d_req: Nanos::from_secs(5),
        service: ServiceKind::PerFlow,
        path: bb_core::mib::PathId(0), // replaced per candidate
    }
}

#[test]
fn k_paths_enumerates_the_diamond() {
    let (topo, i, e) = diamond();
    let paths = topo.k_paths(i, e, 4);
    assert_eq!(paths.len(), 2, "shortcut + one single-deviation alternate");
    assert_eq!(paths[0].len(), 1);
    assert_eq!(paths[1].len(), 2);
}

#[test]
fn alternates_carry_flows_the_shortest_path_cannot() {
    let (topo, i, e) = diamond();

    // Fixed shortest-path admission: capacity for 30 mean-rate flows.
    let mut fixed = Broker::new(topo.clone(), BrokerConfig::default());
    let pid = fixed.path_between(i, e).unwrap();
    let mut n_fixed = 0u64;
    loop {
        let mut req = request(n_fixed);
        req.path = pid;
        if fixed.request(Time::ZERO, &req).is_err() {
            break;
        }
        n_fixed += 1;
    }
    assert_eq!(n_fixed, 30);

    // Alternate-path admission: the deviation route doubles the yield.
    let mut alt = Broker::new(topo, BrokerConfig::default());
    let mut n_alt = 0u64;
    let mut used_alternate = false;
    loop {
        match alt.request_with_alternates(Time::ZERO, &request(1_000 + n_alt), i, e, 4) {
            Ok((_, chosen)) => {
                n_alt += 1;
                if alt.paths().path(chosen).spec.h() == 2 {
                    used_alternate = true;
                }
                assert!(n_alt <= 100, "runaway admission");
            }
            Err(Reject::Bandwidth) => break,
            Err(e) => panic!("unexpected rejection {e}"),
        }
    }
    assert!(used_alternate, "the 2-hop branch should have been used");
    assert_eq!(n_alt, 60, "two disjoint 1.5 Mb/s routes carry 60 flows");
}

#[test]
fn selection_prefers_headroom() {
    // Pre-load the shortcut; the next flow must land on the alternate
    // even though the shortcut still has room.
    let (topo, i, e) = diamond();
    let mut broker = Broker::new(topo, BrokerConfig::default());
    let candidates = broker.paths_between(i, e, 4);
    let shortcut = candidates[0];
    for f in 0..10u64 {
        let mut req = request(f);
        req.path = shortcut;
        broker.request(Time::ZERO, &req).unwrap();
    }
    let (_, chosen) = broker
        .request_with_alternates(Time::ZERO, &request(99), i, e, 4)
        .unwrap();
    assert_ne!(
        chosen, shortcut,
        "flow should be steered to the idle branch"
    );
}

#[test]
fn rejection_reports_the_best_candidate_cause() {
    let (topo, i, e) = diamond();
    let mut broker = Broker::new(topo, BrokerConfig::default());
    // An impossible delay requirement fails everywhere with
    // DelayInfeasible (not Bandwidth).
    let req = FlowRequest {
        d_req: Nanos::from_millis(1),
        ..request(0)
    };
    assert_eq!(
        broker.request_with_alternates(Time::ZERO, &req, i, e, 4),
        Err(Reject::DelayInfeasible)
    );
}
