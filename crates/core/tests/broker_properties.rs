//! Property tests for the broker's bookkeeping under arbitrary operation
//! sequences.
//!
//! Invariant: after *any* interleaving of per-flow requests, class joins,
//! releases, contingency expiries and edge feedback, every link's
//! reserved bandwidth equals exactly the sum of the per-flow reservations
//! and macroflow allocations that cross it — and once everything is
//! released and every contingency has lapsed, the domain is pristine.

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::mib::{FlowService, LinkRef};
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

#[derive(Debug, Clone)]
enum Op {
    RequestPerFlow { d_ms: u64 },
    RequestClass { class: u32 },
    Release { victim: usize },
    Tick { dt_ms: u64 },
    Feedback,
}

fn gen_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (2_000u64..6_000).prop_map(|d_ms| Op::RequestPerFlow { d_ms }),
            (0u32..2).prop_map(|class| Op::RequestClass { class }),
            (0usize..64).prop_map(|victim| Op::Release { victim }),
            (1u64..20_000).prop_map(|dt_ms| Op::Tick { dt_ms }),
            Just(Op::Feedback),
        ],
        1..60,
    )
}

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn make_broker(policy: ContingencyPolicy) -> (Broker, bb_core::mib::PathId, Vec<LinkRef>) {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..6).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<LinkId> = (0..5)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                if i == 2 || i == 3 {
                    SchedulerSpec::VtEdf
                } else {
                    SchedulerSpec::CsVc
                },
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let mut broker = Broker::new(
        topo,
        BrokerConfig {
            contingency: policy,
            classes: vec![
                ClassSpec {
                    id: 0,
                    d_req: Nanos::from_millis(2_440),
                    cd: Nanos::from_millis(240),
                },
                ClassSpec {
                    id: 1,
                    d_req: Nanos::from_millis(3_000),
                    cd: Nanos::from_millis(100),
                },
            ],
            ..BrokerConfig::default()
        },
    );
    let pid = broker.register_route(&route);
    let refs: Vec<LinkRef> = (0..5).map(LinkRef).collect();
    (broker, pid, refs)
}

/// Recomputes each link's expected reservation from the flow MIB and the
/// macroflow registry, and compares with the node MIB.
fn check_accounting(broker: &Broker, pid: bb_core::mib::PathId, links: &[LinkRef]) {
    let path_links = &broker.paths().path(pid).links;
    let mut expected = vec![Rate::ZERO; links.len()];
    for (_, rec) in broker.flows().iter() {
        if let FlowService::PerFlow { rate, .. } = rec.service {
            for l in path_links {
                expected[l.0] = expected[l.0].saturating_add(rate);
            }
        }
    }
    for m in broker.macroflows() {
        for l in &broker.paths().path(m.path).links {
            expected[l.0] = expected[l.0].saturating_add(m.allocated());
        }
    }
    for l in links {
        assert_eq!(
            broker.nodes().link(*l).reserved(),
            expected[l.0],
            "link {l:?} accounting drift"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accounting_never_drifts(ops in gen_ops(), bounding in any::<bool>()) {
        let policy = if bounding {
            ContingencyPolicy::Bounding
        } else {
            ContingencyPolicy::Feedback
        };
        let (mut broker, pid, links) = make_broker(policy);
        let mut now = Time::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::RequestPerFlow { d_ms } => {
                    let flow = FlowId(next_id);
                    next_id += 1;
                    if broker
                        .request(now, &FlowRequest {
                            flow,
                            profile: type0(),
                            d_req: Nanos::from_millis(d_ms),
                            service: ServiceKind::PerFlow,
                            path: pid,
                        })
                        .is_ok()
                    {
                        live.push(flow);
                    }
                }
                Op::RequestClass { class } => {
                    let flow = FlowId(next_id);
                    next_id += 1;
                    if broker
                        .request(now, &FlowRequest {
                            flow,
                            profile: type0(),
                            d_req: Nanos::ZERO,
                            service: ServiceKind::Class(class),
                            path: pid,
                        })
                        .is_ok()
                    {
                        live.push(flow);
                    }
                }
                Op::Release { victim } => {
                    if !live.is_empty() {
                        let flow = live.remove(victim % live.len());
                        broker.release(now, flow).expect("live flow");
                    }
                }
                Op::Tick { dt_ms } => {
                    now += Nanos::from_millis(dt_ms);
                    broker.tick(now);
                }
                Op::Feedback => {
                    let ids: Vec<FlowId> =
                        broker.macroflows().map(|m| m.id).collect();
                    for id in ids {
                        broker.edge_buffer_empty(now, id);
                    }
                }
            }
            check_accounting(&broker, pid, &links);
        }

        // Drain: release everything, flush all contingency, and expect a
        // pristine domain.
        for flow in live {
            broker.release(now, flow).expect("live flow");
        }
        let ids: Vec<FlowId> = broker.macroflows().map(|m| m.id).collect();
        for id in ids {
            broker.edge_buffer_empty(now, id);
        }
        now += Nanos::from_secs(100_000);
        broker.tick(now);
        check_accounting(&broker, pid, &links);
        prop_assert!(broker.flows().is_empty());
        prop_assert_eq!(broker.macroflows().count(), 0);
        for l in &links {
            prop_assert_eq!(broker.nodes().link(*l).reserved(), Rate::ZERO);
            prop_assert_eq!(broker.nodes().link(*l).edf_class_count(), 0);
        }
    }
}
