//! Property tests for the §4.2.1 early-reset rule under the
//! [`ContingencyPolicy::Feedback`] policy.
//!
//! When the edge conditioner of a macroflow reports an empty buffer,
//! *all* of that macroflow's contingency bandwidth can be reclaimed at
//! once: an empty buffer proves the transient that motivated every
//! outstanding grant has drained. Under arbitrary join / leave /
//! buffer-empty sequences the broker must therefore maintain:
//!
//! * **exactly-once release** — bandwidth granted as contingency is
//!   released exactly once; a second empty report (or a timer tick) on
//!   an already-reset macroflow releases nothing;
//! * **total reset** — after any empty report the reporting macroflow's
//!   outstanding contingency is zero, whatever mixture of join and
//!   leave grants it held;
//! * **conservation** — at every step, cumulative granted bandwidth
//!   equals cumulative released plus currently outstanding, and each
//!   link's reserved bandwidth equals exactly the sum of live macroflow
//!   allocations crossing it (no under- or overflow ever).

use bb_core::admission::aggregate::ClassSpec;
use bb_core::contingency::ContingencyPolicy;
use bb_core::mib::LinkRef;
use bb_core::{Broker, BrokerConfig, FlowRequest, ServiceKind};
use netsim::topology::{LinkId, SchedulerSpec, TopologyBuilder};
use proptest::prelude::*;
use qos_units::{Bits, Nanos, Rate, Time};
use vtrs::packet::FlowId;
use vtrs::profile::TrafficProfile;

#[derive(Debug, Clone)]
enum Op {
    Join { class: u32 },
    Leave { victim: usize },
    BufferEmpty { which: usize },
}

fn gen_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u32..2).prop_map(|class| Op::Join { class }),
            (0u32..2).prop_map(|class| Op::Join { class }),
            (0usize..64).prop_map(|victim| Op::Leave { victim }),
            (0usize..64).prop_map(|which| Op::BufferEmpty { which }),
        ],
        1..80,
    )
}

fn type0() -> TrafficProfile {
    TrafficProfile::new(
        Bits::from_bits(60_000),
        Rate::from_bps(50_000),
        Rate::from_bps(100_000),
        Bits::from_bytes(1500),
    )
    .unwrap()
}

fn make_broker() -> (Broker, bb_core::mib::PathId, Vec<LinkRef>) {
    let mut b = TopologyBuilder::new();
    let nodes: Vec<_> = (0..5).map(|i| b.node(format!("n{i}"))).collect();
    let route: Vec<LinkId> = (0..4)
        .map(|i| {
            b.link(
                nodes[i],
                nodes[i + 1],
                Rate::from_bps(1_500_000),
                Nanos::ZERO,
                if i == 1 {
                    SchedulerSpec::VtEdf
                } else {
                    SchedulerSpec::CsVc
                },
                Bits::from_bytes(1500),
            )
        })
        .collect();
    let topo = b.build();
    let mut broker = Broker::new(
        topo,
        BrokerConfig {
            contingency: ContingencyPolicy::Feedback,
            classes: vec![
                ClassSpec {
                    id: 0,
                    d_req: Nanos::from_millis(2_440),
                    cd: Nanos::from_millis(240),
                },
                ClassSpec {
                    id: 1,
                    d_req: Nanos::from_millis(3_000),
                    cd: Nanos::from_millis(100),
                },
            ],
            ..BrokerConfig::default()
        },
    );
    let pid = broker.register_route(&route);
    let refs: Vec<LinkRef> = (0..4).map(LinkRef).collect();
    (broker, pid, refs)
}

/// Total outstanding contingency bandwidth across all macroflows.
fn outstanding(broker: &Broker) -> u64 {
    broker
        .macroflows()
        .map(|m| m.contingency.total().as_bps())
        .sum()
}

/// Every link's reserved bandwidth equals exactly the macroflow
/// allocations crossing it (all service here is class-based).
fn check_links(broker: &Broker, links: &[LinkRef]) {
    let mut expected = vec![0u64; links.len()];
    for m in broker.macroflows() {
        for l in &broker.paths().path(m.path).links {
            expected[l.0] += m.allocated().as_bps();
        }
    }
    for l in links {
        assert_eq!(
            broker.nodes().link(*l).reserved().as_bps(),
            expected[l.0],
            "link {l:?} reservation drift"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn feedback_resets_release_every_grant_exactly_once(ops in gen_ops()) {
        let (mut broker, pid, links) = make_broker();
        let mut now = Time::ZERO;
        let mut live: Vec<FlowId> = Vec::new();
        let mut next_id = 0u64;
        // Conservation ledger, in bps: grants observed entering the
        // registry vs. bandwidth handed back by empty reports.
        let mut granted = 0u64;
        let mut released = 0u64;

        for op in ops {
            now += Nanos::from_millis(7);
            let before = outstanding(&broker);
            match op {
                Op::Join { class } => {
                    let flow = FlowId(next_id);
                    next_id += 1;
                    if broker
                        .request(now, &FlowRequest {
                            flow,
                            profile: type0(),
                            d_req: Nanos::ZERO,
                            service: ServiceKind::Class(class),
                            path: pid,
                        })
                        .is_ok()
                    {
                        live.push(flow);
                    }
                    // Joins and leaves only ever add grants.
                    prop_assert!(outstanding(&broker) >= before);
                    granted += outstanding(&broker) - before;
                }
                Op::Leave { victim } => {
                    if !live.is_empty() {
                        let flow = live.remove(victim % live.len());
                        broker.release(now, flow).expect("live flow");
                    }
                    prop_assert!(outstanding(&broker) >= before);
                    granted += outstanding(&broker) - before;
                }
                Op::BufferEmpty { which } => {
                    let ids: Vec<FlowId> = broker.macroflows().map(|m| m.id).collect();
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[which % ids.len()];
                    let got = broker.edge_buffer_empty(now, id).as_bps();
                    released += got;
                    // §4.2.1: one empty report resets the *whole* set —
                    // if the macroflow survives the report (it may have
                    // been torn down when dissolving), nothing remains.
                    if let Some(m) = broker.macroflows().find(|m| m.id == id) {
                        prop_assert_eq!(m.contingency.total(), Rate::ZERO);
                    }
                    // Exactly-once: an immediate second report finds
                    // nothing left to release.
                    prop_assert_eq!(broker.edge_buffer_empty(now, id), Rate::ZERO);
                }
            }
            // Under the feedback policy no grant carries a timer, so a
            // tick — however late — must never double-release.
            prop_assert!(broker.tick(now + Nanos::from_secs(3_600)).is_empty());
            prop_assert_eq!(granted, released + outstanding(&broker), "grant ledger drift");
            check_links(&broker, &links);
        }

        // Drain everything; the ledger must balance to zero outstanding
        // and the links must be pristine again.
        let before_drain = outstanding(&broker);
        for flow in live {
            broker.release(now, flow).expect("live flow");
        }
        granted += outstanding(&broker) - before_drain;
        let ids: Vec<FlowId> = broker.macroflows().map(|m| m.id).collect();
        for id in ids {
            released += broker.edge_buffer_empty(now, id).as_bps();
        }
        prop_assert_eq!(granted, released, "drained domain must balance the ledger");
        prop_assert_eq!(outstanding(&broker), 0);
        prop_assert_eq!(broker.macroflows().count(), 0, "all macroflows dissolved");
        for l in &links {
            prop_assert_eq!(broker.nodes().link(*l).reserved(), Rate::ZERO);
        }
    }
}
